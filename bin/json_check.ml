(* Minimal JSON validator for CI: parses each file argument with the
   strict Mt_obs.Json parser and optionally asserts a few schema
   invariants.

   Usage:  json_check [--bench|--trace] FILE...

   --bench  additionally requires a top-level object with an integer
            "schema_version" field.
   --trace  additionally requires a "traceEvents" array where every
            element has "ph", "ts" and "pid" fields (the Chrome
            trace-event contract Perfetto relies on). *)

module Json = Mt_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_bench path j =
  match Json.member "schema_version" j with
  | Some (Json.Int _) -> ()
  | _ -> fail "%s: missing integer schema_version" path

let check_trace path j =
  match Json.member "traceEvents" j with
  | Some (Json.List evs) ->
      List.iteri
        (fun i ev ->
          List.iter
            (fun field ->
              if Json.member field ev = None then
                fail "%s: traceEvents[%d] lacks %S" path i field)
            [ "ph"; "pid" ];
          (* Metadata records ("M") carry no timestamp; everything else
             must. *)
          match (Json.member "ph" ev, Json.member "ts" ev) with
          | Some (Json.String "M"), _ -> ()
          | _, Some _ -> ()
          | _, None -> fail "%s: traceEvents[%d] lacks \"ts\"" path i)
        evs
  | _ -> fail "%s: missing traceEvents array" path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let mode, files =
    match args with
    | "--bench" :: rest -> (`Bench, rest)
    | "--trace" :: rest -> (`Trace, rest)
    | rest -> (`Any, rest)
  in
  if files = [] then fail "usage: json_check [--bench|--trace] FILE...";
  List.iter
    (fun path ->
      let j =
        try Json.of_string (read_file path) with
        | Json.Parse_error msg -> fail "%s: invalid JSON: %s" path msg
        | Sys_error e -> fail "%s" e
      in
      (match mode with
      | `Bench -> check_bench path j
      | `Trace -> check_trace path j
      | `Any -> ());
      Printf.printf "%s: OK\n" path)
    files
