(* Minimal JSON validator for CI: parses each file argument with the
   strict Mt_obs.Json parser and optionally asserts a few schema
   invariants.

   Usage:  json_check [--bench|--trace] FILE...

   --bench  additionally requires a top-level object with an integer
            "schema_version" field of at least 5 — older emitters must be
            regenerated, not re-validated. Every store point (any object
            carrying both "backend" and "mix") must carry integer mix
            percentages summing to 100, a "result" object and a "store"
            counters object (txn commit/abort, per-cause retry split,
            scan validation, per-shard routing); every time-series window
            a "store" and a "cm" panel; and every contention point (any
            object carrying both "policy" and "theta") a "result" object
            plus a "cm" object with non-negative integer waits and
            wait_cycles.
            Inherited from schema_version >= 2: every
            benchmark point (any object carrying both "impl" and "ops")
            must also carry a fully self-describing "spec" object
            (key_range, init_fill, insert_pct, delete_pct, threads,
            warmup_cycles, measure_cycles, seed), and every service point
            (any object carrying both "backend" and "goodput_per_kcycle")
            a "serve" configuration object. For schema_version >= 3 the
            document must contain no bare nulls (a skipped measurement is
            an explicit {"skipped": true, "reason": ...}), every headline
            row (any object carrying "comparison") must carry either a
            numeric "measured_peak_speedup" or that skip marker, and
            every time-series object (any object carrying "windows")
            must be a full Series export (window geometry, marks, the
            per-window panels, a latency summary).
   --trace  additionally requires a "traceEvents" array where every
            element has "ph", "ts" and "pid" fields (the Chrome
            trace-event contract Perfetto relies on). *)

module Json = Mt_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Every field a point's "spec" object must carry to be replayable. *)
let spec_fields =
  [
    "key_range"; "init_fill"; "insert_pct"; "delete_pct"; "threads";
    "warmup_cycles"; "measure_cycles"; "seed";
  ]

let serve_fields =
  [
    "workers"; "batch"; "queue_capacity"; "queues"; "admission"; "arrival";
    "offered_per_kcycle"; "horizon_cycles"; "seed";
  ]

let series_fields =
  [ "window_cycles"; "n_windows"; "marks"; "windows"; "latency_summary" ]

let window_fields =
  [
    "t0"; "t1"; "ops"; "aborts"; "tags"; "mem"; "heat"; "serve"; "store";
    "cm"; "latency";
  ]

(* The counters object every sharded-store point must carry at v4. *)
let store_stat_fields =
  [
    "point_ops"; "txn_commits"; "txn_aborts"; "txn_sub_ops"; "txn_retries";
    "txn_retries_locked"; "txn_retries_version"; "scans"; "scan_collects";
    "scan_tag_fallbacks"; "scan_shard_retries"; "shard_ops"; "imbalance";
  ]

(* Walk the whole document: any object that looks like a benchmark point
   (has both "impl" and "ops") must be self-describing, likewise any
   service point (has both "backend" and "goodput_per_kcycle"). At
   schema v3, additionally: no bare nulls anywhere, headline rows carry
   a measurement or an explicit skip, and Series exports are complete. *)
let rec check_points ?(v3 = false) ?(v4 = false) ?(v5 = false) path j =
  (if v3 then match j with
   | Json.Null -> fail "%s: bare null (schema v3 wants explicit skips)" path
   | _ -> ());
  match j with
  | Json.Obj fields ->
      if v4 then begin
        match (Json.member "backend" j, Json.member "mix" j) with
        | Some (Json.String _), Some (Json.String _) ->
            (match
               ( Json.member "point_pct" j,
                 Json.member "txn_pct" j,
                 Json.member "scan_pct" j )
             with
            | Some (Json.Int p), Some (Json.Int t), Some (Json.Int s)
              when p + t + s = 100 ->
                ()
            | _ ->
                fail
                  "%s: store point mix percentages must be integers summing \
                   to 100"
                  path);
            (match Json.member "result" j with
            | Some (Json.Obj _) -> ()
            | _ -> fail "%s: store point lacks a \"result\" object" path);
            (match Json.member "store" j with
            | Some (Json.Obj _ as st) ->
                List.iter
                  (fun f ->
                    if Json.member f st = None then
                      fail "%s: store point counters lack %S" path f)
                  store_stat_fields
            | _ -> fail "%s: store point lacks a \"store\" counters object" path)
        | _ -> ()
      end;
      if v5 then begin
        match (Json.member "policy" j, Json.member "theta" j) with
        | Some (Json.String _), Some (Json.Float _ | Json.Int _) ->
            (match Json.member "result" j with
            | Some (Json.Obj _) -> ()
            | _ -> fail "%s: contention point lacks a \"result\" object" path);
            (match Json.member "cm" j with
            | Some (Json.Obj _ as cm) ->
                List.iter
                  (fun f ->
                    match Json.member f cm with
                    | Some (Json.Int n) when n >= 0 -> ()
                    | _ ->
                        fail
                          "%s: contention point cm.%s must be a non-negative \
                           integer"
                          path f)
                  [ "waits"; "wait_cycles" ]
            | _ -> fail "%s: contention point lacks a \"cm\" object" path)
        | _ -> ()
      end;
      if v3 then begin
        if Json.member "comparison" j <> None then begin
          match (Json.member "measured_peak_speedup" j, Json.member "skipped" j)
          with
          | Some (Json.Float _ | Json.Int _), _ -> ()
          | _, Some (Json.Bool true) ->
              if
                match Json.member "reason" j with
                | Some (Json.String _) -> true
                | _ -> false
              then ()
              else fail "%s: skipped headline row lacks a \"reason\"" path
          | _ ->
              fail
                "%s: headline row needs a numeric measured_peak_speedup or \
                 skipped:true"
                path
        end;
        match Json.member "windows" j with
        | Some (Json.List ws) ->
            List.iter
              (fun f ->
                if Json.member f j = None then
                  fail "%s: time-series object lacks %S" path f)
              series_fields;
            (match Json.member "window_cycles" j with
            | Some (Json.Int w) when w > 0 -> ()
            | _ -> fail "%s: window_cycles must be a positive integer" path);
            List.iteri
              (fun i w ->
                List.iter
                  (fun f ->
                    if Json.member f w = None then
                      fail "%s: windows[%d] lacks %S" path i f)
                  window_fields)
              ws
        | Some _ -> fail "%s: \"windows\" must be a list" path
        | None -> ()
      end;
      if Json.member "impl" j <> None && Json.member "ops" j <> None then begin
        match Json.member "spec" j with
        | Some (Json.Obj _ as spec) ->
            List.iter
              (fun f ->
                if Json.member f spec = None then
                  fail "%s: benchmark point spec lacks %S" path f)
              spec_fields
        | _ -> fail "%s: benchmark point lacks a \"spec\" object" path
      end;
      if
        Json.member "backend" j <> None
        && Json.member "goodput_per_kcycle" j <> None
      then begin
        match Json.member "serve" j with
        | Some (Json.Obj _ as serve) ->
            List.iter
              (fun f ->
                if Json.member f serve = None then
                  fail "%s: service point serve config lacks %S" path f)
              serve_fields
        | _ -> fail "%s: service point lacks a \"serve\" object" path
      end;
      List.iter (fun (_, v) -> check_points ~v3 ~v4 ~v5 path v) fields
  | Json.List l -> List.iter (check_points ~v3 ~v4 ~v5 path) l
  | _ -> ()

let check_bench path j =
  match Json.member "schema_version" j with
  | Some (Json.Int v) ->
      if v < 5 then
        fail
          "%s: schema_version %d rejected (v5 required — regenerate with a \
           current bench)"
          path v
      else check_points ~v3:true ~v4:true ~v5:true path j
  | _ -> fail "%s: missing integer schema_version" path

let check_trace path j =
  match Json.member "traceEvents" j with
  | Some (Json.List evs) ->
      List.iteri
        (fun i ev ->
          List.iter
            (fun field ->
              if Json.member field ev = None then
                fail "%s: traceEvents[%d] lacks %S" path i field)
            [ "ph"; "pid" ];
          (* Metadata records ("M") carry no timestamp; everything else
             must. *)
          match (Json.member "ph" ev, Json.member "ts" ev) with
          | Some (Json.String "M"), _ -> ()
          | _, Some _ -> ()
          | _, None -> fail "%s: traceEvents[%d] lacks \"ts\"" path i)
        evs
  | _ -> fail "%s: missing traceEvents array" path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let mode, files =
    match args with
    | "--bench" :: rest -> (`Bench, rest)
    | "--trace" :: rest -> (`Trace, rest)
    | rest -> (`Any, rest)
  in
  if files = [] then fail "usage: json_check [--bench|--trace] FILE...";
  List.iter
    (fun path ->
      let j =
        try Json.of_string (read_file path) with
        | Json.Parse_error msg -> fail "%s: invalid JSON: %s" path msg
        | Sys_error e -> fail "%s" e
      in
      (match mode with
      | `Bench -> check_bench path j
      | `Trace -> check_trace path j
      | `Any -> ());
      Printf.printf "%s: OK\n" path)
    files
