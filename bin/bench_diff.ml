(* Regression sentinel CLI: compare a committed BENCH JSON baseline
   against a freshly generated document.

   Usage:  bench_diff [--tol METRIC=REL]... BASELINE CURRENT

   Exit status: 0 when every watched metric is inside its tolerance band
   (improvements included), 1 when at least one metric regressed, 2 on
   structural mismatch (missing keys, changed identity fields, changed
   list lengths) or usage/parse errors. The engine and the default bands
   live in Mt_workload.Bench_compare. *)

module Json = Mt_obs.Json
module BC = Mt_workload.Bench_compare

let usage = "usage: bench_diff [--tol METRIC=REL]... BASELINE CURRENT"

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_json path =
  let ic = try open_in_bin path with Sys_error e -> fail "%s" e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  try Json.of_string s
  with Json.Parse_error msg -> fail "%s: invalid JSON: %s" path msg

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split bands files = function
    | "--tol" :: kv :: rest -> (
        match String.index_opt kv '=' with
        | Some i -> (
            let metric = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            match float_of_string_opt v with
            | Some rel when rel >= 0.0 ->
                let band =
                  match List.assoc_opt metric BC.default_bands with
                  | Some b -> { b with BC.rel }
                  | None -> { BC.dir = BC.Higher_better; rel; abs = 0.0 }
                in
                split ((metric, band) :: bands) files rest
            | _ -> fail "bench_diff: bad --tol value %S" kv)
        | None -> fail "bench_diff: --tol wants METRIC=REL, got %S" kv)
    | "--tol" :: [] -> fail "%s" usage
    | a :: rest -> split bands (a :: files) rest
    | [] -> (bands, List.rev files)
  in
  let overrides, files = split [] [] args in
  let base_file, cur_file =
    match files with [ b; c ] -> (b, c) | _ -> fail "%s" usage
  in
  (* Later --tol wins; unmentioned metrics keep their default band. *)
  let bands =
    overrides
    @ List.filter
        (fun (m, _) -> not (List.mem_assoc m overrides))
        BC.default_bands
  in
  let baseline = read_json base_file and current = read_json cur_file in
  let r = BC.compare_docs ~bands ~baseline ~current () in
  List.iter (Printf.printf "STRUCTURAL %s\n") r.BC.structural;
  List.iter
    (fun (f : BC.finding) ->
      Printf.printf "REGRESSED  %s: %g -> %g (allowed %g)\n" f.BC.path
        f.BC.base f.BC.cur f.BC.allowed)
    r.BC.regressed;
  List.iter
    (fun (f : BC.finding) ->
      Printf.printf "improved   %s: %g -> %g\n" f.BC.path f.BC.base f.BC.cur)
    r.BC.improved;
  Printf.printf
    "bench_diff: %d metrics compared, %d regressed, %d improved, %d \
     structural\n"
    r.BC.compared
    (List.length r.BC.regressed)
    (List.length r.BC.improved)
    (List.length r.BC.structural);
  if r.BC.structural <> [] then exit 2
  else if r.BC.regressed <> [] then exit 1
