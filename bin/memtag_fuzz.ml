(* Schedule-exploration fuzzer: sweep seeds x thread counts x structures,
   linearizability-checking every recorded history. Reports the first
   failing seed with its minimized (per-key) history window, replays it to
   prove determinism, and exits nonzero on violation. *)

open Cmdliner

module Abtree_params = struct
  let a = 2
  let b = 4
end

module Abtree_hoh = Mt_abtree.Abtree_hoh.Make (Abtree_params)
module Abtree_llx = Mt_abtree.Abtree_llx.Make (Abtree_params)

let impls : (string * (module Mt_list.Set_intf.SET)) list =
  [
    ("harris_list", (module Mt_list.Harris_list));
    ("vas_list", (module Mt_list.Vas_list));
    ("hoh_list", (module Mt_list.Hoh_list));
    ("elided_list", (module Mt_list.Elided_list));
    ("abtree_hoh", (module Abtree_hoh));
    ("abtree_llx", (module Abtree_llx));
    ("buggy_list", (module Mt_check.Buggy_list));
  ]

let resolve name =
  match List.assoc_opt name impls with
  | Some m -> m
  | None ->
      Printf.eprintf "unknown structure %S (known: %s)\n" name
        (String.concat ", " (List.map fst impls));
      exit 2

let report_failure name threads (o : Mt_check.Explore.outcome) params =
  let violation =
    match o.verdict with Error v -> v | Ok () -> assert false
  in
  Format.printf "@.FAIL %s threads=%d seed=%d (%d events)@." name threads
    o.seed
    (Array.length o.history);
  Format.printf "%a@." Mt_check.Linearize.pp_violation violation;
  (* Determinism check: replaying the seed must reproduce the history
     byte for byte. *)
  let replay = Mt_check.Explore.run (resolve name) ~params ~seed:o.seed in
  let identical =
    Mt_check.History.to_string replay.history
    = Mt_check.History.to_string o.history
  in
  Format.printf "replay of seed %d byte-identical: %b@." o.seed identical;
  if not identical then
    Format.printf "WARNING: determinism broken — fix the scheduler first@."

let run structures all seeds threads_list ops range prefill max_delay verbose =
  let chosen =
    if all then List.filter (fun (n, _) -> n <> "buggy_list") impls
    else List.map (fun n -> (n, resolve n)) structures
  in
  let failed = ref false in
  List.iter
    (fun (name, m) ->
      List.iter
        (fun threads ->
          let params =
            {
              Mt_check.Explore.threads;
              ops;
              range;
              prefill;
              max_delay;
            }
          in
          let clean, failure = Mt_check.Explore.sweep m ~params ~seeds in
          (match failure with
          | None ->
              Format.printf
                "OK   %-12s threads=%d seeds=%d ops=%dx%d range=%d: 0 violations@."
                name threads seeds threads ops range
          | Some o ->
              failed := true;
              report_failure name threads o params);
          if verbose && failure = None then
            Format.printf "     (last clean seed %d)@." (clean - 1))
        threads_list)
    chosen;
  if !failed then exit 1

let () =
  let structure =
    Arg.(
      value
      & opt_all string [ "vas_list" ]
      & info [ "s"; "structure" ]
          ~doc:
            "Structure to fuzz (harris_list|vas_list|hoh_list|elided_list|abtree_hoh|abtree_llx|buggy_list); repeatable.")
  in
  let all =
    Arg.(value & flag & info [ "a"; "all" ] ~doc:"Fuzz every (correct) structure.")
  in
  let seeds =
    Arg.(value & opt int 50 & info [ "seeds" ] ~doc:"Number of schedule seeds to explore.")
  in
  let threads =
    Arg.(value & opt_all int [ 4 ] & info [ "t"; "threads" ] ~doc:"Thread count; repeatable.")
  in
  let ops =
    Arg.(value & opt int 50 & info [ "ops" ] ~doc:"Operations per thread.")
  in
  let range =
    Arg.(value & opt int 12 & info [ "r"; "range" ] ~doc:"Key range (keys drawn from [0, range)).")
  in
  let prefill =
    Arg.(value & opt int 4 & info [ "prefill" ] ~doc:"Random inserts before the measured run.")
  in
  let max_delay =
    Arg.(
      value & opt int 64
      & info [ "max-delay" ]
          ~doc:"Scheduler yield-injection bound in cycles (0 disables).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chatty output.") in
  let cmd =
    Cmd.v
      (Cmd.info "memtag_fuzz"
         ~doc:
           "Explore many deterministic schedules of a concurrent-set workload and linearizability-check each recorded history")
      Term.(
        const run $ structure $ all $ seeds $ threads $ ops $ range $ prefill
        $ max_delay $ verbose)
  in
  exit (Cmd.eval cmd)
