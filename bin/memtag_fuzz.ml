(* Schedule-exploration fuzzer: sweep seeds x thread counts x structures,
   linearizability-checking every recorded history. Reports the first
   failing seed with its minimized (per-key) history window, replays it to
   prove determinism, and exits nonzero on violation.

   --adversary arms the fault-injection engine (lib/adversary): each seed
   additionally gets a seed-derived fault plan — mid-run Max_Tags squeeze
   pulses, straggler cores, Zipfian / flash-crowd key skew, shrunken cache
   geometry — with load-adaptive injection probabilities. --shrink
   delta-debugs any failure down to a minimal, still-failing, replayable
   configuration. --seed-start makes long sweeps resumable / shardable. *)

open Cmdliner

module Abtree_params = struct
  let a = 2
  let b = 4
end

module Abtree_hoh = Mt_abtree.Abtree_hoh.Make (Abtree_params)
module Abtree_llx = Mt_abtree.Abtree_llx.Make (Abtree_params)

let canaries = [ "buggy_list"; "buggy_abtree" ]

let impls : (string * (module Mt_list.Set_intf.SET)) list =
  [
    ("harris_list", (module Mt_list.Harris_list));
    ("vas_list", (module Mt_list.Vas_list));
    ("hoh_list", (module Mt_list.Hoh_list));
    ("elided_list", (module Mt_list.Elided_list));
    ("abtree_hoh", (module Abtree_hoh));
    ("abtree_llx", (module Abtree_llx));
    ("buggy_list", (module Mt_check.Buggy_list));
    ("buggy_abtree", (module Mt_check.Buggy_abtree));
  ]

let resolve name =
  match List.assoc_opt name impls with
  | Some m -> m
  | None ->
      Printf.eprintf "unknown structure %S (known: %s)\n" name
        (String.concat ", " (List.map fst impls));
      exit 2

let replay_command name threads (params : Mt_check.Explore.params) ~seed ~spec =
  Printf.sprintf
    "memtag_fuzz -s %s -t %d --seed-start %d --seeds 1 --ops %d -r %d \
     --prefill %d --max-delay %d%s"
    name threads seed params.Mt_check.Explore.ops params.range params.prefill
    params.max_delay
    (if Mt_adversary.Inject.is_none spec then ""
     else Printf.sprintf " --spec '%s'" (Mt_adversary.Inject.to_string spec))

(* On violation, dump everything a debugging session needs into
   fuzz-failure-<seed>/: the Perfetto event trace of a traced replay, the
   full recorded history, and the minimized per-key window the checker
   rejected. The traced replay doubles as the determinism check — neither
   tracing nor fault injection may perturb the schedule, so its history
   must match byte for byte. *)
let dump_failure name threads (o : Mt_check.Explore.outcome) params ~spec
    (violation : Mt_check.Linearize.violation) =
  let dir = Printf.sprintf "fuzz-failure-%d" o.seed in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write file s =
    let oc = open_out (Filename.concat dir file) in
    output_string oc s;
    close_out oc
  in
  let obs = Mt_obs.Obs.create ~num_cores:threads () in
  let replay =
    Mt_adversary.Scenario.run ~obs (resolve name) ~params ~spec ~seed:o.seed
  in
  let identical =
    Mt_check.History.to_string replay.history
    = Mt_check.History.to_string o.history
  in
  Mt_obs.Trace.write_file ~num_cores:threads obs (Filename.concat dir "trace.json");
  write "history.txt" (Mt_check.History.to_string o.history);
  write "minimized.txt"
    (Format.asprintf "%a@.@.%s@."
       Mt_check.Linearize.pp_violation violation
       (Mt_check.History.to_string (Array.of_list violation.window)));
  write "repro.txt"
    (Printf.sprintf
       "structure=%s threads=%d seed=%d ops=%d range=%d prefill=%d max-delay=%d \
        spec=%s\n\
        replay: %s\n"
       name threads o.seed params.Mt_check.Explore.ops params.range
       params.prefill params.max_delay
       (Mt_adversary.Inject.to_string spec)
       (replay_command name threads params ~seed:o.seed ~spec));
  Format.printf "wrote %s/{trace.json,history.txt,minimized.txt,repro.txt}@." dir;
  (dir, identical)

(* Delta-debug the failure to a minimal repro and drop it (config, history,
   traced replay) alongside the original artifacts. The minimal config is
   re-replayed with tracing on to prove it still fails byte-identically. *)
let dump_shrunk name (module S : Mt_list.Set_intf.SET) dir
    (shrunk : Mt_adversary.Shrink.result) =
  let write file s =
    let oc = open_out (Filename.concat dir file) in
    output_string oc s;
    close_out oc
  in
  let c = shrunk.config in
  let threads = c.params.Mt_check.Explore.threads in
  let obs = Mt_obs.Obs.create ~num_cores:threads () in
  let replay =
    Mt_adversary.Scenario.run ~obs (module S) ~params:c.params ~spec:c.spec
      ~seed:c.seed
  in
  let identical =
    Mt_check.History.to_string replay.history
    = Mt_check.History.to_string shrunk.outcome.history
    && (match replay.verdict with Error _ -> true | Ok () -> false)
  in
  Mt_obs.Trace.write_file ~num_cores:threads obs
    (Filename.concat dir "minimal-trace.json");
  write "minimal-history.txt"
    (Mt_check.History.to_string shrunk.outcome.history);
  let violation =
    match shrunk.outcome.verdict with Error v -> v | Ok () -> assert false
  in
  write "minimal.txt"
    (Format.asprintf
       "minimal failing configuration (%d candidate runs):@.  %a@.@.\
        started from:@.  %a@.@.replay: %s@.@.%a@."
       shrunk.runs Mt_adversary.Shrink.pp_config c
       Mt_adversary.Shrink.pp_config shrunk.initial
       (replay_command name threads c.params ~seed:c.seed ~spec:c.spec)
       Mt_check.Linearize.pp_violation violation);
  Format.printf
    "shrunk to %a (%d events, %d candidate runs)@.wrote \
     %s/{minimal.txt,minimal-history.txt,minimal-trace.json}@.minimal repro \
     replays byte-identically: %b@."
    Mt_adversary.Shrink.pp_config c
    (Array.length shrunk.outcome.history)
    shrunk.runs dir identical;
  identical

let report_failure name threads (o : Mt_check.Explore.outcome) params ~spec
    ~spec_of ~shrink =
  let violation =
    match o.verdict with Error v -> v | Ok () -> assert false
  in
  Format.printf "@.FAIL %s threads=%d seed=%d (%d events)@." name threads
    o.seed
    (Array.length o.history);
  Format.printf "%a@." Mt_check.Linearize.pp_violation violation;
  (* Determinism check: replaying the seed (here with tracing on) must
     reproduce the history byte for byte. *)
  let dir, identical = dump_failure name threads o params ~spec violation in
  Format.printf "replay of seed %d byte-identical: %b@." o.seed identical;
  let identical =
    if not shrink then identical
    else begin
      let initial =
        { Mt_adversary.Shrink.params; spec = spec_of o.seed; seed = o.seed }
      in
      let shrunk = Mt_adversary.Shrink.shrink (resolve name) initial in
      identical && dump_shrunk name (resolve name) dir shrunk
    end
  in
  if not identical then
    Format.printf "WARNING: determinism broken — fix the scheduler first@."

let run structures all seeds seed_start threads_list ops range prefill
    max_delay jobs adversary spec_str shrink verbose =
  let jobs = if jobs > 0 then jobs else Mt_par.Pool.default_jobs () in
  let pinned_spec =
    match spec_str with
    | None -> None
    | Some s -> (
        match Mt_adversary.Inject.of_string s with
        | Ok spec -> Some spec
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            exit 2)
  in
  let spec_of seed =
    match pinned_spec with
    | Some spec -> spec
    | None ->
        if adversary then Mt_adversary.Inject.of_seed ~seed
        else Mt_adversary.Inject.none
  in
  let chosen =
    if all then List.filter (fun (n, _) -> not (List.mem n canaries)) impls
    else List.map (fun n -> (n, resolve n)) structures
  in
  let failed = ref false in
  List.iter
    (fun (name, m) ->
      List.iter
        (fun threads ->
          let params =
            {
              Mt_check.Explore.threads;
              ops;
              range;
              prefill;
              max_delay;
            }
          in
          let t0 = Unix.gettimeofday () in
          let clean, failure =
            Mt_adversary.Scenario.sweep ~jobs ~start:seed_start m ~params
              ~spec_of ~seeds
          in
          let dt = Unix.gettimeofday () -. t0 in
          let swept = match failure with None -> seeds | Some o -> o.seed - seed_start + 1 in
          (* Wall-clock throughput goes to stderr so stdout stays
             byte-identical across machines and --jobs values. *)
          Printf.eprintf "     %-12s threads=%d: %d seeds in %.2fs (%.0f seeds/s)\n%!"
            name threads swept dt
            (if dt > 0.0 then float_of_int swept /. dt else 0.0);
          (match failure with
          | None ->
              Format.printf
                "OK   %-12s threads=%d seeds=%d..%d ops=%dx%d range=%d%s: 0 violations@."
                name threads seed_start (seed_start + seeds - 1) threads ops range
                (if adversary || pinned_spec <> None then " [adversary]" else "")
          | Some o ->
              failed := true;
              report_failure name threads o params ~spec:(spec_of o.seed)
                ~spec_of ~shrink);
          if verbose && failure = None then
            Format.printf "     (last clean seed %d)@." (seed_start + clean - 1))
        threads_list)
    chosen;
  if !failed then exit 1

let () =
  let structure =
    Arg.(
      value
      & opt_all string [ "vas_list" ]
      & info [ "s"; "structure" ]
          ~doc:
            "Structure to fuzz (harris_list|vas_list|hoh_list|elided_list|abtree_hoh|abtree_llx|buggy_list|buggy_abtree); repeatable.")
  in
  let all =
    Arg.(value & flag & info [ "a"; "all" ] ~doc:"Fuzz every (correct) structure.")
  in
  let seeds =
    Arg.(value & opt int 50 & info [ "seeds" ] ~doc:"Number of schedule seeds to explore.")
  in
  let seed_start =
    Arg.(
      value & opt int 0
      & info [ "seed-start" ]
          ~doc:
            "First seed of the sweep (seeds $(docv) .. $(docv)+seeds-1): \
             resume an interrupted sweep or shard a long one across CI jobs.")
  in
  let threads =
    Arg.(value & opt_all int [ 4 ] & info [ "t"; "threads" ] ~doc:"Thread count; repeatable.")
  in
  let ops =
    Arg.(value & opt int 50 & info [ "ops" ] ~doc:"Operations per thread.")
  in
  let range =
    Arg.(value & opt int 12 & info [ "r"; "range" ] ~doc:"Key range (keys drawn from [0, range)).")
  in
  let prefill =
    Arg.(value & opt int 4 & info [ "prefill" ] ~doc:"Random inserts before the measured run.")
  in
  let max_delay =
    Arg.(
      value & opt int 64
      & info [ "max-delay" ]
          ~doc:"Scheduler yield-injection bound in cycles (0 disables).")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ]
          ~doc:
            "Scan the seed space with $(docv) OCaml domains (each seed is an \
             independent simulation; the reported first failing seed is \
             identical to a sequential sweep). 0 (the default) uses \
             Domain.recommended_domain_count; 1 disables parallelism.")
  in
  let adversary =
    Arg.(
      value & flag
      & info [ "adversary" ]
          ~doc:
            "Adversarial mode: each seed additionally runs under a \
             seed-derived fault plan (mid-run Max_Tags squeeze pulses, \
             straggler cores, Zipfian / flash-crowd key skew, shrunken \
             cache geometry) with load-adaptive injection probabilities. \
             Verdicts stay deterministic and --jobs-invariant.")
  in
  let spec =
    Arg.(
      value & opt (some string) None
      & info [ "spec" ]
          ~doc:
            "Pin one fault plan for every seed instead of deriving it per \
             seed, e.g. 'squeeze=832,8,3000;straggler=0.05,2000;dist=zipf,1.1;adaptive' \
             or 'plain'. This is how shrunk repros are replayed.")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "On violation, delta-debug the failure (threads, ops, range, \
             prefill, yield bound, each injected fault, seed) to a minimal \
             still-failing configuration and write it to the failure \
             directory as minimal.txt / minimal-history.txt / \
             minimal-trace.json.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chatty output.") in
  let cmd =
    Cmd.v
      (Cmd.info "memtag_fuzz"
         ~doc:
           "Explore many deterministic schedules of a concurrent-set workload and linearizability-check each recorded history")
      Term.(
        const run $ structure $ all $ seeds $ seed_start $ threads $ ops
        $ range $ prefill $ max_delay $ jobs $ adversary $ spec $ shrink
        $ verbose)
  in
  exit (Cmd.eval cmd)
