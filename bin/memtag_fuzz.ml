(* Schedule-exploration fuzzer: sweep seeds x thread counts x structures,
   linearizability-checking every recorded history. Reports the first
   failing seed with its minimized (per-key) history window, replays it to
   prove determinism, and exits nonzero on violation. *)

open Cmdliner

module Abtree_params = struct
  let a = 2
  let b = 4
end

module Abtree_hoh = Mt_abtree.Abtree_hoh.Make (Abtree_params)
module Abtree_llx = Mt_abtree.Abtree_llx.Make (Abtree_params)

let impls : (string * (module Mt_list.Set_intf.SET)) list =
  [
    ("harris_list", (module Mt_list.Harris_list));
    ("vas_list", (module Mt_list.Vas_list));
    ("hoh_list", (module Mt_list.Hoh_list));
    ("elided_list", (module Mt_list.Elided_list));
    ("abtree_hoh", (module Abtree_hoh));
    ("abtree_llx", (module Abtree_llx));
    ("buggy_list", (module Mt_check.Buggy_list));
  ]

let resolve name =
  match List.assoc_opt name impls with
  | Some m -> m
  | None ->
      Printf.eprintf "unknown structure %S (known: %s)\n" name
        (String.concat ", " (List.map fst impls));
      exit 2

(* On violation, dump everything a debugging session needs into
   fuzz-failure-<seed>/: the Perfetto event trace of a traced replay, the
   full recorded history, and the minimized per-key window the checker
   rejected. The traced replay doubles as the determinism check — tracing
   never perturbs the schedule, so its history must match byte for byte. *)
let dump_failure name threads (o : Mt_check.Explore.outcome) params
    (violation : Mt_check.Linearize.violation) =
  let dir = Printf.sprintf "fuzz-failure-%d" o.seed in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write file s =
    let oc = open_out (Filename.concat dir file) in
    output_string oc s;
    close_out oc
  in
  let obs = Mt_obs.Obs.create ~num_cores:threads () in
  let replay = Mt_check.Explore.run ~obs (resolve name) ~params ~seed:o.seed in
  let identical =
    Mt_check.History.to_string replay.history
    = Mt_check.History.to_string o.history
  in
  Mt_obs.Trace.write_file ~num_cores:threads obs (Filename.concat dir "trace.json");
  write "history.txt" (Mt_check.History.to_string o.history);
  write "minimized.txt"
    (Format.asprintf "%a@.@.%s@."
       Mt_check.Linearize.pp_violation violation
       (Mt_check.History.to_string (Array.of_list violation.window)));
  write "repro.txt"
    (Printf.sprintf
       "structure=%s threads=%d seed=%d ops=%d range=%d prefill=%d max-delay=%d\n\
        replay: memtag_fuzz -s %s -t %d --seeds %d --ops %d -r %d --prefill %d \
        --max-delay %d\n"
       name threads o.seed params.Mt_check.Explore.ops params.range
       params.prefill params.max_delay name threads (o.seed + 1) params.ops
       params.range params.prefill params.max_delay);
  Format.printf "wrote %s/{trace.json,history.txt,minimized.txt,repro.txt}@." dir;
  identical

let report_failure name threads (o : Mt_check.Explore.outcome) params =
  let violation =
    match o.verdict with Error v -> v | Ok () -> assert false
  in
  Format.printf "@.FAIL %s threads=%d seed=%d (%d events)@." name threads
    o.seed
    (Array.length o.history);
  Format.printf "%a@." Mt_check.Linearize.pp_violation violation;
  (* Determinism check: replaying the seed (here with tracing on) must
     reproduce the history byte for byte. *)
  let identical = dump_failure name threads o params violation in
  Format.printf "replay of seed %d byte-identical: %b@." o.seed identical;
  if not identical then
    Format.printf "WARNING: determinism broken — fix the scheduler first@."

let run structures all seeds threads_list ops range prefill max_delay jobs
    verbose =
  let jobs = if jobs > 0 then jobs else Mt_par.Pool.default_jobs () in
  let chosen =
    if all then List.filter (fun (n, _) -> n <> "buggy_list") impls
    else List.map (fun n -> (n, resolve n)) structures
  in
  let failed = ref false in
  List.iter
    (fun (name, m) ->
      List.iter
        (fun threads ->
          let params =
            {
              Mt_check.Explore.threads;
              ops;
              range;
              prefill;
              max_delay;
            }
          in
          let clean, failure = Mt_check.Explore.sweep ~jobs m ~params ~seeds in
          (match failure with
          | None ->
              Format.printf
                "OK   %-12s threads=%d seeds=%d ops=%dx%d range=%d: 0 violations@."
                name threads seeds threads ops range
          | Some o ->
              failed := true;
              report_failure name threads o params);
          if verbose && failure = None then
            Format.printf "     (last clean seed %d)@." (clean - 1))
        threads_list)
    chosen;
  if !failed then exit 1

let () =
  let structure =
    Arg.(
      value
      & opt_all string [ "vas_list" ]
      & info [ "s"; "structure" ]
          ~doc:
            "Structure to fuzz (harris_list|vas_list|hoh_list|elided_list|abtree_hoh|abtree_llx|buggy_list); repeatable.")
  in
  let all =
    Arg.(value & flag & info [ "a"; "all" ] ~doc:"Fuzz every (correct) structure.")
  in
  let seeds =
    Arg.(value & opt int 50 & info [ "seeds" ] ~doc:"Number of schedule seeds to explore.")
  in
  let threads =
    Arg.(value & opt_all int [ 4 ] & info [ "t"; "threads" ] ~doc:"Thread count; repeatable.")
  in
  let ops =
    Arg.(value & opt int 50 & info [ "ops" ] ~doc:"Operations per thread.")
  in
  let range =
    Arg.(value & opt int 12 & info [ "r"; "range" ] ~doc:"Key range (keys drawn from [0, range)).")
  in
  let prefill =
    Arg.(value & opt int 4 & info [ "prefill" ] ~doc:"Random inserts before the measured run.")
  in
  let max_delay =
    Arg.(
      value & opt int 64
      & info [ "max-delay" ]
          ~doc:"Scheduler yield-injection bound in cycles (0 disables).")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ]
          ~doc:
            "Scan the seed space with $(docv) OCaml domains (each seed is an \
             independent simulation; the reported first failing seed is \
             identical to a sequential sweep). 0 (the default) uses \
             Domain.recommended_domain_count; 1 disables parallelism.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chatty output.") in
  let cmd =
    Cmd.v
      (Cmd.info "memtag_fuzz"
         ~doc:
           "Explore many deterministic schedules of a concurrent-set workload and linearizability-check each recorded history")
      Term.(
        const run $ structure $ all $ seeds $ threads $ ops $ range $ prefill
        $ max_delay $ jobs $ verbose)
  in
  exit (Cmd.eval cmd)
