(* CLI front-end: run a single set benchmark with explicit parameters.
   The full figure-reproduction harness lives in bench/main.ml; this binary
   is for ad-hoc exploration (one data point, one implementation). *)

open Cmdliner

module Abtree_params = struct
  let a = 4
  let b = 8
end

module Abtree_hoh = Mt_abtree.Abtree_hoh.Make (Abtree_params)
module Abtree_llx = Mt_abtree.Abtree_llx.Make (Abtree_params)

let impls : (string * (module Mt_list.Set_intf.SET)) list =
  [
    ("harris", (module Mt_list.Harris_list));
    ("vas", (module Mt_list.Vas_list));
    ("hoh", (module Mt_list.Hoh_list));
    ("abtree-llx", (module Abtree_llx));
    ("abtree-hoh", (module Abtree_hoh));
  ]

module Obs = Mt_obs.Obs
module Trace = Mt_obs.Trace
module Json = Mt_obs.Json
module Serve = Mt_serve.Server
module Arrival = Mt_serve.Arrival

(* "trace.json" -> "trace.hoh.json" when several impls each get a file. *)
let trace_file_for ~multi file name =
  if not multi then file
  else
    match Filename.chop_suffix_opt ~suffix:".json" file with
    | Some stem -> Printf.sprintf "%s.%s.json" stem name
    | None -> Printf.sprintf "%s.%s" file name

(* Open-loop service mode (--rate): impls x offered rates, each point an
   independent Serve.run_set simulation. Shares --range/--insert/--delete/
   --seed with the closed-loop mode; --cycles becomes the arrival horizon. *)
let serve chosen rates ~key_range ~insert_pct ~delete_pct ~horizon ~seed
    ~workers ~batch ~qcap ~queue_kind ~arrival ~retries ~jobs ~json_file
    ~trace_file ~hot =
  let queues =
    match queue_kind with
    | "shared" -> Serve.Shared
    | "percore" -> Serve.Per_worker { steal = false }
    | "steal" -> Serve.Per_worker { steal = true }
    | s ->
        Printf.eprintf "unknown queue discipline %S (shared|percore|steal)\n" s;
        exit 2
  in
  let process =
    match Arrival.process_of_string arrival with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown arrival process %S (fixed|poisson|bursty)\n"
          arrival;
        exit 2
  in
  let admission =
    if retries <= 0 then Serve.Drop
    else Serve.Retry { max_retries = retries; backoff_base = 64; backoff_cap = 4096 }
  in
  let tracing = trace_file <> None || hot > 0 in
  let points =
    List.concat_map (fun rate -> List.map (fun im -> (im, rate)) chosen) rates
  in
  let results =
    Mt_par.Pool.map ~jobs
      (fun ((name, m), rate) ->
        let obs =
          if tracing then Obs.create ~num_cores:(workers + 1) () else Obs.null
        in
        let config =
          Serve.config ~batch ~queue_capacity:qcap ~queues ~admission ~process
            ~horizon ~seed ~workers ~rate_per_kcycle:rate ()
        in
        let r = Serve.run_set ~obs ~insert_pct ~delete_pct m ~key_range config in
        (name, rate, r, obs))
      points
  in
  let multi = List.length results > 1 in
  List.iter
    (fun (name, rate, r, obs) ->
      Format.printf "%a@." Serve.pp_result r;
      Option.iter
        (fun file ->
          let file =
            trace_file_for ~multi file (Printf.sprintf "%s-r%g" name rate)
          in
          Trace.write_file obs file;
          Printf.printf "Wrote event trace (%d events, %d dropped) to %s\n"
            (List.length (Obs.events obs))
            (Obs.dropped obs) file)
        trace_file;
      if hot > 0 then begin
        if multi then Format.printf "hot lines [%s r=%g]:@." name rate;
        Format.printf "%a@." (Trace.pp_hot_lines ~top:hot) obs
      end)
    results;
  Option.iter
    (fun file ->
      let doc =
        Json.Obj
          [
            ("schema_version", Json.Int 5);
            ("generator", Json.String "memory-tagging-sim bin/memtag_bench.exe");
            ("serve_results",
             Json.List
               (List.map
                  (fun (_, _, r, obs) ->
                    Json.Obj
                      [
                        ("events_dropped", Json.Int (Obs.dropped obs));
                        ("result", Serve.result_to_json r);
                      ])
                  results));
          ]
      in
      Json.to_file file doc;
      Printf.printf "Wrote benchmark JSON to %s\n" file)
    json_file

let run impl_names threads key_range insert_pct delete_pct measure seed all verbose
    json_file trace_file hot jobs rates workers batch qcap queue_kind arrival
    retries =
  let jobs = if jobs > 0 then jobs else Mt_par.Pool.default_jobs () in
  let chosen =
    if all then impls
    else
      List.map
        (fun n ->
          match List.assoc_opt n impls with
          | Some m -> (n, m)
          | None ->
              Printf.eprintf "unknown implementation %S\n" n;
              exit 2)
        impl_names
  in
  if rates <> [] then
    serve chosen rates ~key_range ~insert_pct ~delete_pct ~horizon:measure ~seed
      ~workers ~batch ~qcap ~queue_kind ~arrival ~retries ~jobs ~json_file
      ~trace_file ~hot
  else begin
  let spec =
    Mt_workload.Spec.make ~key_range ~insert_pct ~delete_pct ~threads
      ~measure_cycles:measure ~seed ()
  in
  (* One recording sink per benchmark point: points are independent
     simulations (possibly on different domains), so tracing stays
     per-run. Off (Null) unless requested. *)
  let tracing = trace_file <> None || hot > 0 in
  let results =
    Mt_par.Pool.map ~jobs
      (fun (name, m) ->
        let obs =
          if tracing then Obs.create ~num_cores:threads () else Obs.null
        in
        let r = Mt_workload.Driver.run_set ~obs m spec in
        (name, r, obs))
      chosen
  in
  let multi = List.length results > 1 in
  List.iter
    (fun (name, r, obs) ->
      Format.printf "%a@." Mt_workload.Driver.pp_result r;
      if verbose then
        Format.printf "  %a@." Mt_sim.Stats.pp r.Mt_workload.Driver.stats;
      Option.iter
        (fun file ->
          let file = trace_file_for ~multi file name in
          Trace.write_file obs file;
          Printf.printf "Wrote event trace (%d events, %d dropped) to %s\n"
            (List.length (Obs.events obs))
            (Obs.dropped obs) file)
        trace_file;
      if hot > 0 then begin
        if multi then Format.printf "hot lines [%s]:@." name;
        Format.printf "%a@." (Trace.pp_hot_lines ~top:hot) obs
      end)
    results;
  Option.iter
    (fun file ->
      let doc =
        Json.Obj
          [
            ("schema_version", Json.Int 5);
            ("generator", Json.String "memory-tagging-sim bin/memtag_bench.exe");
            ("results",
             Json.List
               (List.map
                  (fun (_, r, obs) ->
                    Json.Obj
                      [
                        ("events_dropped", Json.Int (Obs.dropped obs));
                        ("result", Mt_workload.Driver.result_to_json r);
                      ])
                  results));
          ]
      in
      Json.to_file file doc;
      Printf.printf "Wrote benchmark JSON to %s\n" file)
    json_file
  end

let () =
  let impl =
    Arg.(value & opt_all string [ "hoh" ]
         & info [ "i"; "impl" ]
             ~doc:"Implementation (harris|vas|hoh|abtree-llx|abtree-hoh); repeatable.")
  in
  let all = Arg.(value & flag & info [ "a"; "all" ] ~doc:"Run every implementation.") in
  let threads = Arg.(value & opt int 8 & info [ "t"; "threads" ] ~doc:"Thread count.") in
  let range = Arg.(value & opt int 1024 & info [ "r"; "range" ] ~doc:"Key range.") in
  let ins = Arg.(value & opt int 35 & info [ "insert" ] ~doc:"Insert percentage.") in
  let del = Arg.(value & opt int 35 & info [ "delete" ] ~doc:"Delete percentage.") in
  let measure =
    Arg.(value & opt int 150_000 & info [ "cycles" ] ~doc:"Measured simulated cycles.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print full counters.") in
  let json_file =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the results as machine-readable JSON to $(docv).")
  in
  let trace_file =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record all simulator events and write a Chrome/Perfetto \
                   trace-event JSON file to $(docv). Each implementation is \
                   traced into its own sink; with several implementations \
                   the files are suffixed with the implementation name \
                   (trace.json -> trace.hoh.json).")
  in
  let hot =
    Arg.(value & opt int 0
         & info [ "hot" ] ~docv:"N"
             ~doc:"Record events and print the $(docv) most contended cache \
                   lines (invalidation/downgrade counts with owning structure).")
  in
  let jobs =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ]
             ~doc:"Run the chosen implementations on $(docv) OCaml domains \
                   (each point is an independent simulation; results and \
                   JSON are byte-identical to a sequential run). 0 (the \
                   default) uses Domain.recommended_domain_count; 1 \
                   disables parallelism.")
  in
  let rates =
    Arg.(value & opt_all float []
         & info [ "rate" ] ~docv:"R"
             ~doc:"Offered load in requests per 1000 simulated cycles; \
                   repeatable. Any $(docv) switches to the open-loop service \
                   mode: a seeded arrival process offers requests to the \
                   structure through bounded queues and admission control, \
                   reporting goodput, drop rate and end-to-end latency tails \
                   instead of closed-loop throughput. $(b,--cycles) is the \
                   arrival horizon; $(b,--threads) is ignored in favour of \
                   $(b,--workers).")
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "workers" ] ~doc:"Service mode: worker fibers.")
  in
  let batch =
    Arg.(value & opt int 1
         & info [ "batch" ]
             ~doc:"Service mode: max requests dequeued per dispatch.")
  in
  let qcap =
    Arg.(value & opt int 64
         & info [ "qcap" ] ~doc:"Service mode: per-queue capacity.")
  in
  let queue_kind =
    Arg.(value & opt string "shared"
         & info [ "queue" ] ~docv:"KIND"
             ~doc:"Service mode: queue discipline \
                   (shared|percore|steal).")
  in
  let arrival =
    Arg.(value & opt string "poisson"
         & info [ "arrival" ] ~docv:"PROC"
             ~doc:"Service mode: arrival process (fixed|poisson|bursty).")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Service mode: retry a bounced request up to $(docv) times \
                   with capped exponential backoff instead of dropping it.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "memtag_bench" ~doc:"Run one MemTags set benchmark data point")
      Term.(const run $ impl $ threads $ range $ ins $ del $ measure $ seed $ all
            $ verbose $ json_file $ trace_file $ hot $ jobs $ rates $ workers
            $ batch $ qcap $ queue_kind $ arrival $ retries)
  in
  exit (Cmd.eval cmd)
