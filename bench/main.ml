(* Regenerates every measured figure of the paper (Figures 2, 4, 5, 6, 7
   and 8), the spurious-invalidation observation of Section 6, and the
   design-choice ablations called out in DESIGN.md, plus bechamel
   micro-benchmarks of the primitive operations.

   Usage:  dune exec bench/main.exe [-- fig2 fig5 fig6 fig7 fig8 spurious
                                        ablation micro latency store
                                        contention timeline speed summary
                                        quick --jobs N --json FILE --note k=v]

   "latency" has no paper counterpart: it drives the open-loop service
   layer (lib/serve) over list/tree/STM backends, sweeping offered load
   across each backend's saturation knee and reporting goodput, drop rate
   and end-to-end tail latency (p50/p99/p99.9).
   "store" drives the sharded multi-structure store (lib/store) through
   the same open-loop serve layer under point/txn/scan request-kind
   mixes, one saturation curve per backend x mix.
   "contention" sweeps the restart contention-management policy
   (immediate/backoff/politeness/adaptive, lib/cm) against thread count
   and Zipfian key skew over four restart-loop shapes (HoH list, HoH
   (a,b)-tree, tagged NOrec, store transactions), reporting throughput
   relative to the immediate baseline plus the policy wait counters.
   "speed" times the latency panel's phase-1 calibration against the
   host's wall clock and reports simulated ops per wall-second (the
   simulator's own speed; host-dependent, exported only under "notes").
   "timeline" runs a closed-loop and an open-loop scenario under an
   injected mid-run Max_Tags squeeze pulse with windowed telemetry
   (lib/obs Series) attached, exporting the per-window series as the
   "timeseries" JSON panel — the abort storm, queue backup and recovery
   as dynamics rather than end-of-run aggregates.
   With no arguments everything runs (the paper's full sweep). "quick"
   restricts the thread sweep for a fast smoke run. --jobs N fans the
   independent simulation points out over N OCaml domains (0 = auto, 1 =
   sequential); output and JSON are byte-identical for any value. --note
   records a key=value pair under "notes" in the JSON export (e.g. host
   wall-clock stamps that must not perturb the deterministic fields). *)

open Mt_sim
module Spec = Mt_workload.Spec
module Driver = Mt_workload.Driver
module Report = Mt_workload.Report
module Pool = Mt_par.Pool
module Serve = Mt_serve.Server
module Hist = Mt_obs.Hist
module Series = Mt_obs.Series
module Obs = Mt_obs.Obs

(* ------------------------------------------------------------------ *)
(* Configuration. *)

let quick = ref false
let threads_sweep () = if !quick then [ 1; 4; 16; 64 ] else [ 1; 2; 4; 8; 16; 32; 64 ]

(* Domain-parallelism over independent simulation points (--jobs N;
   0 = auto). Each point builds its own machine/runtime/PRNGs and results
   merge in input order, so output is byte-identical whatever the value. *)
let jobs = ref 0
let pjobs () = if !jobs > 0 then !jobs else Pool.default_jobs ()

(* Free-form --note k=v pairs recorded into the JSON export (used to stamp
   committed artifacts with wall-clock measurements without making the
   deterministic part of the document depend on the host). *)
let notes : (string * string) list ref = ref []

let list_range = 256
let tree_range = 8192
let vacation_relations = 16384

module Abtree_params = struct
  let a = 4
  let b = 8
end

module Abtree_hoh = Mt_abtree.Abtree_hoh.Make (Abtree_params)
module Abtree_llx = Mt_abtree.Abtree_llx.Make (Abtree_params)

let list_impls : (module Mt_list.Set_intf.SET) list =
  [ (module Mt_list.Harris_list); (module Mt_list.Vas_list); (module Mt_list.Hoh_list) ]

let tree_impls : (module Mt_list.Set_intf.SET) list =
  [ (module Abtree_llx); (module Abtree_hoh) ]

(* ------------------------------------------------------------------ *)
(* Generic figure runner for set structures. *)

type series = { impl : string; points : (int * Driver.result) list }

let impl_name (module S : Mt_list.Set_intf.SET) = S.name

(* The whole impl × threads grid is a list of independent points; fan it
   out across domains and stitch the results back per implementation.
   Progress lines print after the parallel phase, in input order, so
   stdout is deterministic for any --jobs value. *)
let run_series impls ~range ~insert_pct ~delete_pct ~measure_cycles =
  let points =
    List.concat_map
      (fun m -> List.map (fun threads -> (m, threads)) (threads_sweep ()))
      impls
  in
  let results =
    Pool.map ~jobs:(pjobs ())
      (fun (m, threads) ->
        let spec =
          Spec.make ~key_range:range ~insert_pct ~delete_pct ~threads
            ~measure_cycles ()
        in
        Driver.run_set m spec)
      points
  in
  let tagged = List.map2 (fun (m, t) r -> (impl_name m, t, r)) points results in
  List.map
    (fun m ->
      let name = impl_name m in
      let points =
        List.filter_map
          (fun (n, t, r) -> if n = name then Some (t, r) else None)
          tagged
      in
      List.iter
        (fun (t, r) -> Printf.printf "  [%s t=%d] %d ops\n%!" name t r.Driver.ops)
        points;
      { impl = name; points })
    impls

let print_throughput_table ~title series =
  let threads = List.map fst (List.hd series).points in
  Report.table ~title
    ~columns:("threads" :: List.map (fun s -> s.impl) series)
    (List.map
       (fun t ->
         string_of_int t
         :: List.map
              (fun s -> Report.f2 (List.assoc t s.points).Driver.throughput)
              series)
       threads)

let print_metric_tables ~prefix series =
  print_throughput_table ~title:(prefix ^ " — throughput (ops / 1000 cycles)") series;
  let threads = List.map fst (List.hd series).points in
  Report.table
    ~title:(prefix ^ " — L1 miss rate")
    ~columns:("threads" :: List.map (fun s -> s.impl) series)
    (List.map
       (fun t ->
         string_of_int t
         :: List.map
              (fun s -> Report.pct (List.assoc t s.points).Driver.l1_miss_rate)
              series)
       threads);
  Report.table
    ~title:(prefix ^ " — energy per operation (model units)")
    ~columns:("threads" :: List.map (fun s -> s.impl) series)
    (List.map
       (fun t ->
         string_of_int t
         :: List.map
              (fun s -> Report.f2 (List.assoc t s.points).Driver.energy_per_op)
              series)
       threads)

let best_gain base_series other_series =
  List.fold_left
    (fun acc (t, r) ->
      let b = (List.assoc t base_series.points).Driver.throughput in
      if b > 0.0 then max acc (r.Driver.throughput /. b) else acc)
    0.0 other_series.points

(* Collected results for the summary block and the --json export. *)
let collected : (string * series list) list ref = ref []
let spurious_rows : (string * Driver.result) list ref = ref []
let headline_rows : (string * string * float option) list ref = ref []

(* ------------------------------------------------------------------ *)
(* Figures 2 / 4: lists at 35% insert, 35% delete, 30% contains. *)

let fig2_fig4 () =
  print_endline "\n=== Figures 2 & 4: linked lists, 35i/35d/30c ===";
  let series =
    run_series list_impls ~range:list_range ~insert_pct:35 ~delete_pct:35
      ~measure_cycles:150_000
  in
  collected := ("fig2", series) :: !collected;
  print_throughput_table ~title:"Figure 2 — list throughput vs threads (35/35/30)" series;
  print_metric_tables ~prefix:"Figure 4 — lists (35/35/30)" series

(* Figure 5: lists at 15% insert, 15% delete, 70% contains. *)
let fig5 () =
  print_endline "\n=== Figure 5: linked lists, 15i/15d/70c ===";
  let series =
    run_series list_impls ~range:list_range ~insert_pct:15 ~delete_pct:15
      ~measure_cycles:150_000
  in
  collected := ("fig5", series) :: !collected;
  print_metric_tables ~prefix:"Figure 5 — lists (15/15/70)" series

(* Figures 6 / 7: (a,b)-trees, LLX/SCX baseline vs HoH tagging. *)
let fig6 () =
  print_endline "\n=== Figure 6: (a,b)-trees, 35i/35d/30c ===";
  let series =
    run_series tree_impls ~range:tree_range ~insert_pct:35 ~delete_pct:35
      ~measure_cycles:150_000
  in
  collected := ("fig6", series) :: !collected;
  print_metric_tables ~prefix:"Figure 6 — (a,b)-trees (35/35/30)" series

let fig7 () =
  print_endline "\n=== Figure 7: (a,b)-trees, 15i/15d/70c ===";
  let series =
    run_series tree_impls ~range:tree_range ~insert_pct:15 ~delete_pct:15
      ~measure_cycles:150_000
  in
  collected := ("fig7", series) :: !collected;
  print_metric_tables ~prefix:"Figure 7 — (a,b)-trees (15/15/70)" series

(* ------------------------------------------------------------------ *)
(* Figure 8: STAMP vacation on NOrec vs tagged NOrec,
   -n4 -q60 -u90 -r16384 (-t is replaced by a fixed simulated window). *)

let vacation_point (module S : Mt_stm.Stm_intf.S) threads relations =
  let module V = Mt_stamp.Vacation.Make (S) in
  let params = { V.relations; queries = 4; query_pct = 60; user_pct = 90 } in
  (* STM read sets are much larger than a search-structure window; the
     Fig. 8 configuration provisions 256 tags (see DESIGN.md). *)
  let cfg = { (Config.default ~num_cores:threads ()) with Config.max_tags = 256 } in
  let spec =
    Spec.make ~key_range:relations ~insert_pct:0 ~delete_pct:0 ~threads
      ~warmup_cycles:50_000 ~measure_cycles:400_000 ()
  in
  let stm_box = ref None in
  let r =
    Driver.run_custom ~cfg ~name:S.name
      ~setup:(fun ctx ->
        let stm = S.create ctx in
        stm_box := Some stm;
        (stm, V.setup ctx stm params))
      ~op:(fun ctx (stm, mgr) -> V.client_op ctx stm mgr params)
      spec
  in
  let stm = Option.get !stm_box in
  (r, S.aborts stm, S.vbv_passes stm)

let stm_name (module S : Mt_stm.Stm_intf.S) = S.name

let fig8 () =
  print_endline "\n=== Figure 8: STAMP vacation on NOrec (-n4 -q60 -u90 -r16384) ===";
  let relations = if !quick then 4096 else vacation_relations in
  let impls : (module Mt_stm.Stm_intf.S) list =
    [ (module Mt_stm.Norec); (module Mt_stm.Norec_tagged) ]
  in
  let points =
    List.concat_map
      (fun m -> List.map (fun t -> (m, t)) (threads_sweep ()))
      impls
  in
  let results =
    Pool.map ~jobs:(pjobs ())
      (fun (m, t) -> vacation_point m t relations)
      points
  in
  let tagged =
    List.map2
      (fun (m, t) (r, aborts, vbv) -> (stm_name m, t, r, aborts, vbv))
      points results
  in
  List.iter
    (fun (name, t, (r : Driver.result), aborts, vbv) ->
      Printf.printf "  [%s t=%d] %d txs, %d aborts, %d vbv passes\n%!" name t
        r.Driver.ops aborts vbv)
    tagged;
  let series =
    List.map
      (fun m ->
        let name = stm_name m in
        {
          impl = name;
          points =
            List.filter_map
              (fun (n, t, r, _, _) -> if n = name then Some (t, r) else None)
              tagged;
        })
      impls
  in
  collected := ("fig8", series) :: !collected;
  print_metric_tables ~prefix:"Figure 8 — vacation" series

(* ------------------------------------------------------------------ *)
(* Section 6 observation: spurious invalidations are negligible. *)

let spurious () =
  print_endline "\n=== Section 6: spurious validation failures ===";
  let spec range =
    Spec.make ~key_range:range ~insert_pct:35 ~delete_pct:35 ~threads:16
      ~measure_cycles:150_000 ()
  in
  (* Three independent points; run them domain-parallel, report in order. *)
  let jobs_list : (string * (unit -> Driver.result)) list =
    [
      ("hoh-list r512",
       fun () -> Driver.run_set (module Mt_list.Hoh_list) (spec list_range));
      ("hoh-abtree r8192",
       fun () -> Driver.run_set (module Abtree_hoh) (spec tree_range));
      (* A deliberately oversized structure shows capacity evictions rising. *)
      ("hoh-abtree r65536",
       fun () ->
         Driver.run_set (module Abtree_hoh)
           (Spec.make ~key_range:65536 ~insert_pct:35 ~delete_pct:35 ~threads:16
              ~measure_cycles:150_000 ()));
    ]
  in
  let results =
    Pool.map ~jobs:(pjobs ()) (fun (name, f) -> (name, f ())) jobs_list
  in
  let rows =
    List.map
      (fun (name, (r : Driver.result)) ->
        let frac =
          if r.validates = 0 then 0.0
          else
            float_of_int r.validate_failures_spurious /. float_of_int r.validates
        in
        spurious_rows := !spurious_rows @ [ (name, r) ];
        [
          name;
          string_of_int r.validates;
          string_of_int r.validate_failures;
          string_of_int r.validate_failures_spurious;
          Report.pct frac;
        ])
      results
  in
  Report.table ~title:"Spurious (capacity/overflow) validation failures"
    ~columns:[ "workload"; "validates"; "failures"; "spurious"; "spurious/validate" ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md): explicit tag-op costs, conservative IAS,
   Max_Tags sensitivity for the STM. *)

let ablation () =
  print_endline "\n=== Ablations ===";
  (* Rows within a table are independent simulations; run each table's rows
     through the pool and print once they are all back, in row order. *)
  let rows thunks = Pool.map ~jobs:(pjobs ()) (fun f -> f ()) thunks in
  let base_spec =
    Spec.make ~key_range:list_range ~insert_pct:35 ~delete_pct:35 ~threads:16
      ~measure_cycles:150_000 ()
  in
  let with_cfg name cfg () =
    let r = Driver.run_set ~cfg (module Mt_list.Hoh_list) base_spec in
    [ name; Report.f2 r.Driver.throughput; Report.pct r.Driver.l1_miss_rate ]
  in
  let cfg0 = Config.default ~num_cores:16 () in
  Report.table ~title:"Ablation: explicit tag-instruction costs (HoH list, t16)"
    ~columns:[ "config"; "thr/kcyc"; "L1 miss" ]
    (rows
       [
         with_cfg "tag=0 validate=0 (default)" cfg0;
         with_cfg "tag=1 validate=1"
           { cfg0 with Config.lat_tag_op = 1; lat_validate = 1 };
         with_cfg "tag=2 validate=4"
           { cfg0 with Config.lat_tag_op = 2; lat_validate = 4 };
       ]);
  let tree_spec =
    Spec.make ~key_range:tree_range ~insert_pct:35 ~delete_pct:35 ~threads:16
      ~measure_cycles:150_000 ()
  in
  let tree_cfg name cfg () =
    let r = Driver.run_set ~cfg (module Abtree_hoh) tree_spec in
    [ name; Report.f2 r.Driver.throughput; Report.pct r.Driver.l1_miss_rate ]
  in
  Report.table ~title:"Ablation: IAS invalidation scope (HoH abtree, t16)"
    ~columns:[ "config"; "thr/kcyc"; "L1 miss" ]
    (rows
       [
         tree_cfg "tag-targeted IAS (default)" cfg0;
         tree_cfg "IAS elevates all sharers"
           { cfg0 with Config.ias_tag_targeted = false };
       ]);
  let vac_row max_tags =
    let module S = Mt_stm.Norec_tagged in
    let module V = Mt_stamp.Vacation.Make (S) in
    let params = { V.relations = 4096; queries = 4; query_pct = 60; user_pct = 90 } in
    let cfg = { (Config.default ~num_cores:16 ()) with Config.max_tags } in
    let spec =
      Spec.make ~key_range:4096 ~insert_pct:0 ~delete_pct:0 ~threads:16
        ~measure_cycles:300_000 ()
    in
    let r =
      Driver.run_custom ~cfg ~name:"vacation"
        ~setup:(fun ctx ->
          let stm = S.create ctx in
          (stm, V.setup ctx stm params))
        ~op:(fun ctx (stm, mgr) -> V.client_op ctx stm mgr params)
        spec
    in
    [ string_of_int max_tags; Report.f2 r.Driver.throughput ]
  in
  Report.table ~title:"Ablation: Max_Tags for tagged NOrec (vacation r4096, t16)"
    ~columns:[ "Max_Tags"; "thr/kcyc" ]
    (Pool.map ~jobs:(pjobs ()) vac_row [ 32; 64; 128; 256 ])

(* ------------------------------------------------------------------ *)
(* Offered-load sweep: the open-loop service layer (lib/serve) over one
   list, one tree and one STM backend. Closed-loop figures cannot see
   queueing delay; here load is offered at a configured rate whether or
   not the backend keeps up. Each backend is first calibrated by offering
   far more load than it can serve (goodput then measures saturation
   capacity), and the grid offers multiples of that capacity so the knee
   is always in frame: goodput plateaus at 1.0x while the end-to-end tail
   explodes. No paper counterpart (the paper measures closed-loop only). *)

let serve_workers = 4

type serve_backend = {
  sb_name : string;
  sb_run : rate:float -> horizon:int -> Serve.result;
}

let serve_set_backend (module S : Mt_list.Set_intf.SET) ~range =
  {
    sb_name = S.name;
    sb_run =
      (fun ~rate ~horizon ->
        Serve.run_set
          (module S)
          ~key_range:range
          (Serve.config ~workers:serve_workers ~batch:4 ~queue_capacity:128
             ~rate_per_kcycle:rate ~horizon ()));
  }

(* The STM backend serves transactional map operations (35% insert, 35%
   delete, 30% lookup) on tagged NOrec, with the Fig. 8 tag provisioning. *)
let serve_stm_backend ~range =
  let module S = Mt_stm.Norec_tagged in
  let module TM = Mt_stamp.Tx_map.Make (S) in
  {
    sb_name = "norec-tagged-map";
    sb_run =
      (fun ~rate ~horizon ->
        let cfg =
          { (Config.default ~num_cores:(serve_workers + 1) ()) with
            Config.max_tags = 256 }
        in
        let c =
          Serve.config ~workers:serve_workers ~batch:4 ~queue_capacity:128
            ~rate_per_kcycle:rate ~horizon ()
        in
        Serve.run ~cfg ~name:"norec-tagged-map"
          ~setup:(fun ctx ->
            let stm = S.create ctx in
            let map = TM.create ctx in
            let g = Prng.create ~seed:(c.Serve.seed + 1) in
            for k = 0 to range - 1 do
              if Prng.float g < 0.5 then
                S.atomically ctx stm (fun tx -> ignore (TM.insert tx map k k))
            done;
            (stm, map))
          ~op:(fun ctx (stm, map) payload ->
            let k = (payload lsr 20) mod range in
            let r = payload mod 100 in
            S.atomically ctx stm (fun tx ->
                if r < 35 then ignore (TM.insert tx map k k)
                else if r < 70 then ignore (TM.remove tx map k)
                else ignore (TM.find tx map k)))
          c);
  }

let serve_backends () =
  [
    serve_set_backend (module Mt_list.Hoh_list) ~range:list_range;
    serve_set_backend (module Abtree_hoh) ~range:tree_range;
    (* 512 keys: the transactional BST stays cache-resident, keeping the
       STM backend in the same capacity class as the structures (a 4096
       key map is memory-bound at ~25x the service time). *)
    serve_stm_backend ~range:512;
  ]

let latency_rows : (string * float * Serve.result) list ref = ref []

let latency () =
  print_endline
    "\n=== Offered-load sweep: open-loop service layer (goodput vs tail latency) ===";
  let horizon = if !quick then 60_000 else 120_000 in
  let backends = serve_backends () in
  (* Phase 1: saturation capacity — offer far more than any backend can
     serve; goodput is then the service capacity of workers + batching. *)
  let cal_rate = 200.0 in
  let calibrated =
    Pool.map ~jobs:(pjobs ())
      (fun b -> (b, b.sb_run ~rate:cal_rate ~horizon))
      backends
  in
  List.iter
    (fun (b, (r : Serve.result)) ->
      Printf.printf "  [%s] capacity %.3f req/kcyc (offered %.0f, drop %.1f%%)\n%!"
        b.sb_name r.Serve.goodput cal_rate (100.0 *. r.Serve.drop_rate))
    calibrated;
  (* Phase 2: the grid — multiples of each backend's measured capacity. *)
  let mults =
    if !quick then [ 0.5; 0.9; 1.1; 1.5 ]
    else [ 0.25; 0.5; 0.7; 0.85; 1.0; 1.2; 1.5; 2.0 ]
  in
  let points =
    List.concat_map
      (fun (b, (cal : Serve.result)) ->
        List.map (fun m -> (b, m, m *. cal.Serve.goodput)) mults)
      calibrated
  in
  let results =
    Pool.map ~jobs:(pjobs ())
      (fun (b, _, rate) -> b.sb_run ~rate ~horizon)
      points
  in
  let tagged = List.map2 (fun (b, m, _) r -> (b.sb_name, m, r)) points results in
  latency_rows :=
    List.map (fun (b, (r : Serve.result)) -> (b.sb_name, 0.0, r)) calibrated
    @ tagged;
  List.iter
    (fun b ->
      let rows =
        List.filter_map
          (fun (n, m, (r : Serve.result)) ->
            if n <> b.sb_name then None
            else
              Some
                [
                  Printf.sprintf "%.2fx" m;
                  Report.f2 r.Serve.offered;
                  Report.f2 r.Serve.goodput;
                  Report.pct r.Serve.drop_rate;
                  string_of_int (Hist.percentile r.Serve.queue_wait 50.0);
                  string_of_int (Hist.percentile r.Serve.e2e 50.0);
                  string_of_int (Hist.percentile r.Serve.e2e 99.0);
                  string_of_int (Hist.percentile r.Serve.e2e 99.9);
                ])
          tagged
      in
      Report.table
        ~title:
          (Printf.sprintf
             "Open-loop service — %s (poisson arrivals, %d workers, batch 4)"
             b.sb_name serve_workers)
        ~columns:
          [ "load"; "offered/kcyc"; "goodput/kcyc"; "drop"; "wait p50";
            "e2e p50"; "e2e p99"; "e2e p99.9" ]
        rows)
    backends

(* ------------------------------------------------------------------ *)
(* Sharded store: saturation curves per request-kind mix per backend.
   The serve layer drives the sharded multi-structure store (lib/store)
   with a point/txn/scan request mix; each backend × mix combination is
   calibrated like the latency panel and then offered multiples of its
   measured capacity. Store counters (txn commit/abort, scan validation
   fallbacks, per-shard routing imbalance) ride along with each point.
   No paper counterpart (the paper has no multi-shard evaluation). *)

module Store = Mt_store.Store
module Store_serve = Mt_store.Store_serve
module Store_backend = Mt_store.Backend

let store_shards = 4

let store_mixes =
  [
    Store_serve.mix ~point_pct:90 ~txn_pct:5;
    Store_serve.mix ~point_pct:60 ~txn_pct:30;
    Store_serve.mix ~point_pct:50 ~txn_pct:20;
  ]

let store_backend_names = [ "hoh-list"; "hoh-abtree"; "norec-tagged" ]

let store_rows :
    (string * Store_serve.mix * float * Serve.result * Store.stats) list ref =
  ref []

let store () =
  print_endline
    "\n=== Sharded store: saturation curves per mix per backend ===";
  let horizon = if !quick then 60_000 else 120_000 in
  let specs =
    List.concat_map
      (fun name ->
        let backend =
          match Store_backend.by_name name with
          | Some b -> b
          | None -> failwith ("bench store: unknown backend " ^ name)
        in
        List.map
          (fun mix -> Store_serve.spec ~shards:store_shards ~backend ~mix ())
          store_mixes)
      store_backend_names
  in
  let run_point spec rate =
    Store_serve.run spec
      (Serve.config ~workers:serve_workers ~batch:4 ~queue_capacity:128
         ~rate_per_kcycle:rate ~horizon ())
  in
  (* Phase 1: saturate each backend × mix combination to measure its
     service capacity (same protocol as the latency panel). *)
  let cal_rate = 200.0 in
  let calibrated =
    Pool.map ~jobs:(pjobs ()) (fun spec -> (spec, run_point spec cal_rate)) specs
  in
  List.iter
    (fun ((spec : Store_serve.spec), ((r : Serve.result), _)) ->
      Printf.printf "  [%s %s] capacity %.3f req/kcyc (offered %.0f)\n%!"
        (Store_backend.name spec.backend)
        (Store_serve.mix_name spec.mix)
        r.Serve.goodput cal_rate)
    calibrated;
  (* Phase 2: the saturation curve — multiples of measured capacity. *)
  let mults =
    if !quick then [ 0.5; 1.0; 1.5 ]
    else [ 0.25; 0.5; 0.85; 1.0; 1.2; 1.5; 2.0 ]
  in
  let points =
    List.concat_map
      (fun (spec, ((cal : Serve.result), _)) ->
        List.map (fun m -> (spec, m, m *. cal.Serve.goodput)) mults)
      calibrated
  in
  let results =
    Pool.map ~jobs:(pjobs ()) (fun (spec, _, rate) -> run_point spec rate) points
  in
  let tagged =
    List.map2
      (fun ((spec : Store_serve.spec), m, _) (r, st) ->
        (Store_backend.name spec.backend, spec.mix, m, r, st))
      points results
  in
  store_rows :=
    List.map
      (fun ((spec : Store_serve.spec), (r, st)) ->
        (Store_backend.name spec.backend, spec.mix, 0.0, r, st))
      calibrated
    @ tagged;
  List.iter
    (fun ((spec : Store_serve.spec), _) ->
      let bname = Store_backend.name spec.backend in
      let rows =
        List.filter_map
          (fun (n, mix, m, (r : Serve.result), (st : Store.stats)) ->
            if n <> bname || mix <> spec.mix then None
            else
              let txns = st.txn_commits + st.txn_aborts in
              Some
                [
                  Printf.sprintf "%.2fx" m;
                  Report.f2 r.Serve.offered;
                  Report.f2 r.Serve.goodput;
                  Report.pct r.Serve.drop_rate;
                  string_of_int (Hist.percentile r.Serve.e2e 99.0);
                  Report.pct
                    (if txns = 0 then 0.0
                     else float_of_int st.txn_aborts /. float_of_int txns);
                  string_of_int st.scan_tag_fallbacks;
                  Printf.sprintf "%.2f" (Store.imbalance st);
                ])
          tagged
      in
      Report.table
        ~title:
          (Printf.sprintf
             "Sharded store — %s, mix %s (%d shards, %d workers)"
             bname
             (Store_serve.mix_name spec.mix)
             store_shards serve_workers)
        ~columns:
          [ "load"; "offered/kcyc"; "goodput/kcyc"; "drop"; "e2e p99";
            "txn abort"; "scan fallback"; "imbalance" ]
        rows)
    calibrated

(* ------------------------------------------------------------------ *)
(* Contention panel: restart-management policy x thread count x Zipfian
   skew, over four backends chosen for their different restart loops —
   the HoH list (VAS/IAS storms on a short hot list), the HoH (a,b)-tree
   (locate/commit restarts over a wider structure), tagged NOrec (STM
   abort/retry on the global seqlock) and the sharded store's transaction
   path (kCAS + shard-lock acquisition retries). Every point reuses the
   same per-core PRNG streams regardless of policy (jitter draws come
   from a separate split stream), so the offered operation sequence is
   identical across policies and throughput differences are pure
   contention-management effect. *)

module Cm = Mt_cm.Cm
module Zipf = Mt_adversary.Zipf
module Ctx = Mt_core.Ctx

let contention_policies =
  [ Cm.immediate; Cm.backoff (); Cm.politeness (); Cm.adaptive () ]

let contention_backends = [ "hoh-list"; "hoh-abtree"; "norec-tagged"; "store-txn" ]

let contention_spec ~range ~insert_pct ~delete_pct ~threads =
  Spec.make ~key_range:range ~insert_pct ~delete_pct ~threads
    ~warmup_cycles:(if !quick then 10_000 else 30_000)
    ~measure_cycles:(if !quick then 60_000 else 150_000)
    ()

(* Write-heavy Zipf-keyed set workload (45i/45d/10c). The hot rank maps
   to the LARGEST key, so for ordered structures the contended nodes sit
   at the end of the longest traversal path — a restart throws away the
   whole hand-over-hand walk, which is exactly the storm contention
   management exists to calm. *)
let contention_set_point ?cfg (module S : Mt_list.Set_intf.SET) ~range ~theta
    ~cm ~threads =
  let z = Zipf.create ~n:range ~theta in
  let spec = contention_spec ~range ~insert_pct:45 ~delete_pct:45 ~threads in
  Driver.run_custom ?cfg ~cm ~name:S.name
    ~setup:(fun ctx ->
      let s = S.create ctx in
      let g = Prng.create ~seed:(spec.Spec.seed + 1) in
      for k = 0 to range - 1 do
        if Prng.float g < spec.Spec.init_fill then ignore (S.insert ctx s k)
      done;
      s)
    ~op:(fun ctx s ->
      let g = Ctx.prng ctx in
      let k = range - 1 - Zipf.sample z g in
      let r = Prng.int g 100 in
      if r < 45 then ignore (S.insert ctx s k)
      else if r < 90 then ignore (S.delete ctx s k)
      else ignore (S.contains ctx s k))
    spec

(* Zipf-keyed transfer transactions over a word array on tagged NOrec:
   every transaction reads and writes two skew-chosen cells, so the hot
   ranks produce genuine read/write conflicts, not just seqlock churn. *)
let contention_stm_point ~range ~theta ~cm ~threads =
  let module S = Mt_stm.Norec_tagged in
  let z = Zipf.create ~n:range ~theta in
  let spec = contention_spec ~range ~insert_pct:0 ~delete_pct:0 ~threads in
  Driver.run_custom ~cm ~name:"norec-tagged"
    ~setup:(fun ctx ->
      let stm = S.create ctx in
      let base = Ctx.alloc ~label:"cm-bank" ctx ~words:range in
      for i = 0 to range - 1 do
        Ctx.write ctx (base + i) 0
      done;
      (stm, base))
    ~op:(fun ctx (stm, base) ->
      let g = Ctx.prng ctx in
      let a = base + Zipf.sample z g in
      let b = base + Zipf.sample z g in
      S.atomically ctx stm (fun tx ->
          let va = S.read tx a and vb = S.read tx b in
          S.write tx a (va + 1);
          S.write tx b (vb - 1)))
    spec

(* Zipf-keyed 3-key transactions against the sharded store (hoh-list
   shards): hot ranks all route to the same shard, so its version word
   becomes the contended site for the shard-lock retry loop. *)
let contention_store_point ~theta ~cm ~threads =
  let key_space = 8192 and shards = 8 and txn_keys = 3 in
  let z = Zipf.create ~n:key_space ~theta in
  let backend =
    match Store_backend.by_name "hoh-list" with
    | Some b -> b
    | None -> failwith "bench contention: unknown store backend"
  in
  let spec =
    contention_spec ~range:key_space ~insert_pct:0 ~delete_pct:0 ~threads
  in
  Driver.run_custom ~cm ~name:"store-txn"
    ~setup:(fun ctx ->
      let st = Store.create backend ctx ~shards ~key_space in
      let g = Prng.create ~seed:(spec.Spec.seed + 1) in
      for _ = 1 to 1024 do
        ignore (Store.insert ctx st (Prng.int g key_space))
      done;
      Store.reset_stats st;
      st)
    ~op:(fun ctx st ->
      let g = Ctx.prng ctx in
      let rec build i acc =
        if i = 0 then acc
        else
          let k = Zipf.sample z g in
          let o =
            match Prng.int g 3 with
            | 0 -> Store.Insert
            | 1 -> Store.Delete
            | _ -> Store.Get
          in
          build (i - 1) ((k, o) :: acc)
      in
      ignore (Store.txn ctx st (build txn_keys [])))
    spec

let contention_rows :
    (string * string * int * float * Driver.result) list ref = ref []

let contention () =
  print_endline
    "\n=== Contention management: policy x threads x Zipf skew ===";
  let threads_list = if !quick then [ 8; 64 ] else [ 4; 16; 64 ] in
  let thetas = if !quick then [ 0.99; 2.0 ] else [ 0.6; 0.99; 2.0 ] in
  let points =
    List.concat_map
      (fun backend ->
        List.concat_map
          (fun pol ->
            List.concat_map
              (fun threads ->
                List.map (fun theta -> (backend, pol, threads, theta)) thetas)
              threads_list)
          contention_policies)
      contention_backends
  in
  let results =
    Pool.map ~jobs:(pjobs ())
      (fun (backend, pol, threads, theta) ->
        (* The set-structure points run the conservative IAS variant
           (paper §3's sketch; the same knob as the ablation panel):
           every successful delete elevates the whole tag set to M, so
           each success invalidates all concurrent walkers sharing the
           hot lines and the restart storm has a real fabric cost. The
           2048-node list is where storms bite hardest: one restart
           forfeits a full L2-latency hand-over-hand walk. *)
        let conservative threads =
          { (Config.default ~num_cores:threads ()) with
            Config.ias_tag_targeted = false }
        in
        match backend with
        | "hoh-list" ->
            contention_set_point ~cfg:(conservative threads)
              (module Mt_list.Hoh_list)
              ~range:2048 ~theta ~cm:pol ~threads
        | "hoh-abtree" ->
            contention_set_point ~cfg:(conservative threads)
              (module Abtree_hoh)
              ~range:tree_range ~theta ~cm:pol ~threads
        | "norec-tagged" ->
            contention_stm_point ~range:1024 ~theta ~cm:pol ~threads
        | _ -> contention_store_point ~theta ~cm:pol ~threads)
      points
  in
  let tagged =
    List.map2
      (fun (b, pol, t, th) r -> (b, Cm.spec_name pol, t, th, r))
      points results
  in
  contention_rows := tagged;
  List.iter
    (fun backend ->
      let rows = List.filter (fun (b, _, _, _, _) -> b = backend) tagged in
      let imm_thr t th =
        List.find_map
          (fun (_, pol, t', th', (r : Driver.result)) ->
            if pol = "immediate" && t' = t && th' = th then
              Some r.Driver.throughput
            else None)
          rows
      in
      let body =
        List.map
          (fun (_, pol, t, th, (r : Driver.result)) ->
            let vs =
              match imm_thr t th with
              | Some base when base > 0.0 ->
                  Printf.sprintf "%.2fx" (r.Driver.throughput /. base)
              | _ -> "-"
            in
            [
              pol;
              string_of_int t;
              Printf.sprintf "%.2f" th;
              Report.f2 r.Driver.throughput;
              vs;
              string_of_int r.Driver.stats.Stats.cm_waits;
              string_of_int r.Driver.stats.Stats.cm_wait_cycles;
            ])
          rows
      in
      Report.table
        ~title:(Printf.sprintf "Contention — %s" backend)
        ~columns:
          [ "policy"; "threads"; "theta"; "thr/kcyc"; "vs imm"; "cm waits";
            "wait cycles" ]
        body)
    contention_backends

(* ------------------------------------------------------------------ *)
(* Wall-clock speed of the simulator itself: how many simulated requests
   the host executes per wall-second on the BENCH_3 phase-1 calibration
   microbench (all three serve backends saturated at 200 req/kcycle over
   a 120k-cycle horizon, run sequentially on one domain so the number is
   a single-core figure). Host-dependent by design — the result goes to
   stdout and, with --json, under "notes", never into the deterministic
   fields. *)

let speed () =
  print_endline
    "\n=== Wall-clock speed: BENCH_3 calibration microbench (host-dependent) ===";
  let horizon = 120_000 and rate = 200.0 in
  let t0 = Unix.gettimeofday () in
  let completed =
    List.fold_left
      (fun acc b -> acc + (b.sb_run ~rate ~horizon).Serve.completed)
      0 (serve_backends ())
  in
  let dt = Unix.gettimeofday () -. t0 in
  let ops_per_s = float_of_int completed /. dt in
  Printf.printf
    "  %d requests served in %.3f s wall — %.0f simulated ops/wall-second\n"
    completed dt ops_per_s;
  notes :=
    !notes
    @ [
        ("speed_bench", "latency phase-1 calibration, rate=200, horizon=120k");
        ("speed_requests", string_of_int completed);
        ("speed_wall_s", Printf.sprintf "%.3f" dt);
        ("speed_ops_per_wall_s", Printf.sprintf "%.0f" ops_per_s);
      ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: host-level cost of the simulator's primitive
   operations (how expensive is simulating each primitive). *)

let micro () =
  print_endline "\n=== Bechamel micro-benchmarks (host ns per simulated primitive) ===";
  let open Bechamel in
  let open Bechamel.Toolkit in
  let m = Machine.create (Config.default ~num_cores:2 ()) in
  let a = Machine.alloc m ~words:8 in
  let tests =
    [
      Test.make ~name:"machine-read" (Staged.stage (fun () -> ignore (Machine.read m ~core:0 a)));
      Test.make ~name:"machine-write"
        (Staged.stage (fun () -> ignore (Machine.write m ~core:0 a 1)));
      Test.make ~name:"machine-cas"
        (Staged.stage (fun () ->
             ignore (Machine.cas m ~core:0 a ~expected:0 ~desired:0)));
      Test.make ~name:"machine-tag-clear"
        (Staged.stage (fun () ->
             ignore (Machine.add_tag m ~core:0 a ~words:1);
             ignore (Machine.clear_tag_set m ~core:0)));
      Test.make ~name:"machine-vas"
        (Staged.stage (fun () -> ignore (Machine.vas m ~core:0 a 1)));
      Test.make ~name:"machine-ias"
        (Staged.stage (fun () -> ignore (Machine.ias m ~core:0 a 1)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-24s %8.1f ns/op\n" name est
          | _ -> Printf.printf "  %-24s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Headline summary (Section 6 discussion claims). *)

let summary () =
  print_endline "\n=== Headline comparison vs the paper's claims ===";
  let find key = List.assoc_opt key !collected in
  let gain key base other =
    match find key with
    | None -> None
    | Some series -> (
        match
          ( List.find_opt (fun s -> s.impl = base) series,
            List.find_opt (fun s -> s.impl = other) series )
        with
        | Some b, Some o -> Some (best_gain b o)
        | _ -> None)
  in
  let row name paper measured =
    headline_rows := !headline_rows @ [ (name, paper, measured) ];
    [ name; paper; (match measured with Some g -> Printf.sprintf "%.2fx" g | None -> "(skipped)") ]
  in
  Report.table ~title:"Peak speedups across the thread sweep"
    ~columns:[ "comparison"; "paper"; "measured (best over threads)" ]
    [
      row "HoH list vs Harris (35/35)" "1.10-1.50x" (gain "fig2" "harris-list" "hoh-list");
      row "VAS list vs Harris (35/35)" "1.10-1.50x" (gain "fig2" "harris-list" "vas-list");
      row "HoH abtree vs LLX/SCX (35/35)" "up to 2x" (gain "fig6" "llx-abtree(4,8)" "hoh-abtree(4,8)");
      row "HoH abtree vs LLX/SCX (15/15)" "up to 2x" (gain "fig7" "llx-abtree(4,8)" "hoh-abtree(4,8)");
      row "tagged NOrec vs NOrec (vacation)" "up to 1.5x" (gain "fig8" "norec" "norec-tagged");
    ]

(* ------------------------------------------------------------------ *)
(* Machine-readable export: everything collected during the run, in a
   fixed figure order. This is the BENCH_*.json schema — extend, don't
   reorder or rename. *)

module Json = Mt_obs.Json

(* ------------------------------------------------------------------ *)
(* Timeline: windowed telemetry under an injected Max_Tags squeeze.

   Two scenarios over the HoH list — a closed-loop run (8 threads) and an
   open-loop serve run (4 workers) — each with a mid-run squeeze pulse
   dropping Max_Tags to 1. A hand-over-hand locate's window is two live
   tags, so under the pulse every traversal overflows the tag file:
   validations fail spuriously, ops spin in retry, and (open-loop) the
   queues back up — then the pulse restores and the per-window series
   shows the recovery. The telemetry runs on a retain:false sink (the
   series reads the live event stream, not the rings), so the panel is
   byte-identical for any --jobs value and with tracing on or off. *)

let timeline_window = 5_000
let timeline_rows : Json.t list ref = ref []

let timeline () =
  print_endline
    "\n=== Timeline: windowed telemetry under a Max_Tags squeeze pulse ===";
  let horizon = if !quick then 60_000 else 150_000 in
  let fault = Printf.sprintf "squeeze=%d,1,%d" (horizon / 3) (horizon / 5) in
  let spec_inj =
    match Mt_adversary.Inject.of_string fault with
    | Ok s -> s
    | Error e -> failwith ("bench timeline: bad fault spec: " ^ e)
  in
  let make_policy m =
    Mt_adversary.Scenario.make_policy spec_inj ~machine:m ~seed:1 ~max_delay:0
  in
  let closed () =
    let obs = Obs.create ~retain:false ~num_cores:8 () in
    let series = Series.create ~window:timeline_window () in
    let spec =
      Spec.make ~key_range:list_range ~insert_pct:35 ~delete_pct:35 ~threads:8
        ~measure_cycles:horizon ()
    in
    let r =
      Driver.run_set ~obs ~make_policy ~series (module Mt_list.Hoh_list) spec
    in
    ("closed-squeeze", "closed-loop", series, Driver.result_to_json r)
  in
  let serve () =
    let obs = Obs.create ~retain:false ~num_cores:(serve_workers + 1) () in
    let series = Series.create ~window:timeline_window () in
    let c =
      Serve.config ~workers:serve_workers ~batch:4 ~queue_capacity:128
        ~rate_per_kcycle:8.0 ~horizon ()
    in
    let r =
      Serve.run_set ~obs ~make_policy ~series
        (module Mt_list.Hoh_list)
        ~key_range:list_range c
    in
    ("serve-squeeze", "open-loop", series, Serve.result_to_json r)
  in
  let scenarios = Pool.map ~jobs:(pjobs ()) (fun f -> f ()) [ closed; serve ] in
  List.iter
    (fun (name, _, series, _) ->
      List.iter
        (fun (t, label) -> Printf.printf "  [%s] mark @%-6d %s\n%!" name t label)
        (Series.marks series);
      let ws = Series.windows series in
      let peak = ref 0 in
      Array.iteri
        (fun i w ->
          if
            w.Series.w_snap.Series.c_tag_overflows
            > ws.(!peak).Series.w_snap.Series.c_tag_overflows
          then peak := i)
        ws;
      let w = ws.(!peak) in
      Printf.printf
        "  [%s] %d windows of %d cycles; peak window [%d,%d): %d tag \
         overflows, %d spurious validation failures, %d ops\n%!"
        name (Array.length ws) timeline_window w.Series.w_t0
        (w.Series.w_t0 + timeline_window)
        w.Series.w_snap.Series.c_tag_overflows w.Series.w_validate_spurious
        w.Series.w_ops)
    scenarios;
  timeline_rows :=
    List.map
      (fun (name, mode, series, result) ->
        Json.Obj
          [
            ("scenario", Json.String name);
            ("mode", Json.String mode);
            ("backend", Json.String "hoh-list");
            ("fault_spec", Json.String fault);
            ("series", Series.to_json series);
            ("result", result);
          ])
      scenarios

let figure_order = [ "fig2"; "fig5"; "fig6"; "fig7"; "fig8" ]

let series_to_json (s : series) =
  Json.Obj
    [
      ("impl", Json.String s.impl);
      ("points",
       Json.List
         (List.map
            (fun (threads, r) ->
              Json.Obj
                [
                  ("threads", Json.Int threads);
                  ("result", Driver.result_to_json r);
                ])
            s.points));
    ]

let export_json file =
  let figures =
    List.filter_map
      (fun name ->
        match List.assoc_opt name !collected with
        | None -> None
        | Some series ->
            Some (name, Json.List (List.map series_to_json series)))
      figure_order
  in
  let spurious =
    List.map
      (fun (name, (r : Driver.result)) ->
        Json.Obj
          [
            ("workload", Json.String name);
            ("validates", Json.Int r.Driver.validates);
            ("validate_failures", Json.Int r.Driver.validate_failures);
            ("validate_failures_spurious",
             Json.Int r.Driver.validate_failures_spurious);
            ("result", Driver.result_to_json r);
          ])
      !spurious_rows
  in
  let latency_points =
    List.map
      (fun (backend, mult, (r : Serve.result)) ->
        Json.Obj
          [
            ("backend", Json.String backend);
            ("calibration", Json.Bool (mult = 0.0));
            ("load_multiple", Json.Float mult);
            ("result", Serve.result_to_json r);
          ])
      !latency_rows
  in
  let store_points =
    List.map
      (fun ( backend,
             (m : Store_serve.mix),
             mult,
             (r : Serve.result),
             (st : Store.stats) ) ->
        Json.Obj
          [
            ("backend", Json.String backend);
            ("mix", Json.String (Store_serve.mix_name m));
            ("point_pct", Json.Int m.point_pct);
            ("txn_pct", Json.Int m.txn_pct);
            ("scan_pct", Json.Int m.scan_pct);
            ("shards", Json.Int store_shards);
            ("calibration", Json.Bool (mult = 0.0));
            ("load_multiple", Json.Float mult);
            ("result", Serve.result_to_json r);
            ("store",
             Json.Obj
               [
                 ("point_ops", Json.Int st.point_ops);
                 ("txn_commits", Json.Int st.txn_commits);
                 ("txn_aborts", Json.Int st.txn_aborts);
                 ("txn_sub_ops", Json.Int st.txn_sub_ops);
                 ("txn_retries", Json.Int st.txn_retries);
                 ("txn_retries_locked", Json.Int st.txn_retries_locked);
                 ("txn_retries_version", Json.Int st.txn_retries_version);
                 ("scans", Json.Int st.scans);
                 ("scan_collects", Json.Int st.scan_collects);
                 ("scan_tag_fallbacks", Json.Int st.scan_tag_fallbacks);
                 ("scan_shard_retries", Json.Int st.scan_shard_retries);
                 ("shard_ops",
                  Json.List
                    (Array.to_list
                       (Array.map (fun n -> Json.Int n) st.shard_ops)));
                 ("imbalance", Json.Float (Store.imbalance st));
               ]);
          ])
      !store_rows
  in
  let contention_points =
    List.map
      (fun (backend, policy, threads, theta, (r : Driver.result)) ->
        Json.Obj
          [
            ("backend", Json.String backend);
            ("policy", Json.String policy);
            ("threads", Json.Int threads);
            ("theta", Json.Float theta);
            ("result", Driver.result_to_json r);
            ( "cm",
              Json.Obj
                [
                  ("waits", Json.Int r.Driver.stats.Stats.cm_waits);
                  ("wait_cycles", Json.Int r.Driver.stats.Stats.cm_wait_cycles);
                ] );
          ])
      !contention_rows
  in
  let headline =
    List.map
      (fun (name, paper, measured) ->
        Json.Obj
          ([
             ("comparison", Json.String name);
             ("paper_claim", Json.String paper);
           ]
          @
          (* Never a bare null: a figure missing from this run selection is
             an explicit skip with a reason (json_check enforces this at
             schema v3). *)
          match measured with
          | Some g -> [ ("measured_peak_speedup", Json.Float g) ]
          | None ->
              [
                ("skipped", Json.Bool true);
                ("reason",
                 Json.String "figure not collected in this run selection");
              ]))
      !headline_rows
  in
  let note_fields =
    match !notes with
    | [] -> []
    | kvs ->
        [
          ("notes",
           Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) kvs));
        ]
  in
  let doc =
    Json.Obj
      ([
         ("schema_version", Json.Int 5);
         ("generator", Json.String "memory-tagging-sim bench/main.exe");
         ("quick", Json.Bool !quick);
         ("figures", Json.Obj figures);
         ("spurious", Json.List spurious);
         ("headline", Json.List headline);
         ("latency", Json.List latency_points);
         ("store", Json.List store_points);
         ("contention", Json.List contention_points);
         ("timeseries", Json.List !timeline_rows);
       ]
      @ note_fields)
  in
  Json.to_file file doc;
  Printf.printf "\nWrote benchmark JSON to %s\n" file

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Peel the valued options off the figure-selection words. *)
  let rec split_opts json acc = function
    | "--json" :: file :: rest -> split_opts (Some file) acc rest
    | "--json" :: [] -> failwith "bench: --json requires a file argument"
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 0 ->
            jobs := n;
            split_opts json acc rest
        | _ -> failwith "bench: --jobs requires a non-negative integer")
    | "--jobs" :: [] -> failwith "bench: --jobs requires an integer argument"
    | "--note" :: kv :: rest -> (
        match String.index_opt kv '=' with
        | Some i ->
            notes :=
              !notes
              @ [
                  ( String.sub kv 0 i,
                    String.sub kv (i + 1) (String.length kv - i - 1) );
                ];
            split_opts json acc rest
        | None -> failwith "bench: --note requires a key=value argument")
    | "--note" :: [] -> failwith "bench: --note requires a key=value argument"
    | a :: rest -> split_opts json (a :: acc) rest
    | [] -> (json, List.rev acc)
  in
  let json_file, args = split_opts None [] args in
  if List.mem "quick" args then quick := true;
  let args = List.filter (fun a -> a <> "quick") args in
  let all = args = [] in
  let want name = all || List.mem name args in
  let t0 = Unix.gettimeofday () in
  if want "fig2" || want "fig4" then fig2_fig4 ();
  if want "fig5" then fig5 ();
  if want "fig6" then fig6 ();
  if want "fig7" then fig7 ();
  if want "fig8" then fig8 ();
  if want "spurious" then spurious ();
  if want "ablation" then ablation ();
  if want "latency" then latency ();
  if want "store" then store ();
  if want "contention" then contention ();
  if want "timeline" then timeline ();
  if want "speed" then speed ();
  if want "micro" then micro ();
  if want "summary" then summary ();
  Option.iter export_json json_file;
  Printf.printf "\nTotal bench wall time: %.1f s\n" (Unix.gettimeofday () -. t0)
