open Mt_core

type addr = Ctx.addr

(* Data-record layout. *)
let info_off = 0
let marked_off = 1
let nfields_off = 2
let header_words = 3

(* SCX-record layout. *)
let state_off = 0
let allfrozen_off = 1
let fld_off = 2
let newv_off = 3
let oldv_off = 4
let nv_off = 5
let rmask_off = 6
let records_off = 7

(* SCX states. *)
let in_progress = 0
let committed = 1
let aborted = 2

(* Distinguished info value standing for "a committed dummy SCX-record".
   It is odd, so it can never collide with a line-aligned address. *)
let quiescent_info = 1

let field_addr r i = r + header_words + i
let payload_addr r ~mutable_fields = r + header_words + mutable_fields

let alloc_record ctx ~mutable_fields ~extra_words =
  if mutable_fields < 0 || extra_words < 0 then invalid_arg "Llx_scx.alloc_record";
  let r = Ctx.alloc ~label:"llxscx-record" ctx ~words:(header_words + mutable_fields + extra_words) in
  Ctx.write ctx (r + info_off) quiescent_info;
  Ctx.write ctx (r + nfields_off) mutable_fields;
  r

let init_field ctx r i v = Ctx.write ctx (field_addr r i) v

let state_of ctx info = if info = quiescent_info then committed else Ctx.read ctx (info + state_off)

type snapshot = { record : addr; info : int; fields : int array }

type llx_result = Snapshot of snapshot | Finalized | Fail

(* HELP (Brown-Ellen-Ruppert): drive the SCX-record [u] to completion.
   Returns true iff u commits. Any thread may help any u it encounters. *)
let help ctx u =
  let nv = Ctx.read ctx (u + nv_off) in
  let rec freeze i =
    if i >= nv then finish ()
    else begin
      let r = Ctx.read ctx (u + records_off + i) in
      let rinfo = Ctx.read ctx (u + records_off + nv + i) in
      if Ctx.cas ctx (r + info_off) ~expected:rinfo ~desired:u then freeze (i + 1)
      else if Ctx.read ctx (r + info_off) = u then freeze (i + 1)
      else if Ctx.read ctx (u + allfrozen_off) = 1 then true
      else begin
        (* The freeze failed and u is not fully frozen: abort it. *)
        Ctx.write ctx (u + state_off) aborted;
        false
      end
    end
  and finish () =
    Ctx.write ctx (u + allfrozen_off) 1;
    let rmask = Ctx.read ctx (u + rmask_off) in
    for i = 0 to nv - 1 do
      if rmask land (1 lsl i) <> 0 then begin
        let r = Ctx.read ctx (u + records_off + i) in
        Ctx.write ctx (r + marked_off) 1
      end
    done;
    let fld = Ctx.read ctx (u + fld_off) in
    let old_val = Ctx.read ctx (u + oldv_off) in
    let new_val = Ctx.read ctx (u + newv_off) in
    ignore (Ctx.cas ctx fld ~expected:old_val ~desired:new_val);
    Ctx.write ctx (u + state_off) committed;
    true
  in
  freeze 0

let nfields ctx r = Ctx.read ctx (r + nfields_off)

let llx ?fields ctx r =
  let rinfo = Ctx.read ctx (r + info_off) in
  let state = state_of ctx rinfo in
  (* The marked bit must be read AFTER the state: a finalizing SCX marks
     its records before committing, so observing (state = Committed,
     marked = 0) in this order proves the record was not finalized at the
     marked-read. Reading marked first admits a race where a snapshot of a
     just-finalized record is handed out. *)
  let marked1 = Ctx.read ctx (r + marked_off) in
  let snapshot_attempt () =
    if state = aborted || (state = committed && marked1 = 0) then begin
      let n =
        match fields with
        | None -> Ctx.read ctx (r + nfields_off)
        | Some n -> n
      in
      let fields = Array.make n 0 in
      for i = 0 to n - 1 do
        fields.(i) <- Ctx.read ctx (field_addr r i)
      done;
      if Ctx.read ctx (r + info_off) = rinfo then
        Some (Snapshot { record = r; info = rinfo; fields })
      else None
    end
    else None
  in
  match snapshot_attempt () with
  | Some result -> result
  | None ->
      let rinfo2 = Ctx.read ctx (r + info_off) in
      let state2 = state_of ctx rinfo2 in
      let frozen_by_commit =
        state2 = committed
        || (state2 = in_progress
           && rinfo2 <> quiescent_info
           && Ctx.read ctx (rinfo2 + allfrozen_off) = 1)
      in
      if frozen_by_commit && Ctx.read ctx (r + marked_off) = 1 then Finalized
      else begin
        if state2 = in_progress then ignore (help ctx rinfo2);
        Fail
      end

let vlx ctx snap = Ctx.read ctx (snap.record + info_off) = snap.info

let scx ctx ~v ~r ~fld ~old_val ~new_val =
  if v = [] then invalid_arg "Llx_scx.scx: empty V";
  if List.length v > 62 then invalid_arg "Llx_scx.scx: V too large";
  let nv = List.length v in
  let u = Ctx.alloc ~label:"scx-desc" ctx ~words:(records_off + (2 * nv)) in
  Ctx.write ctx (u + state_off) in_progress;
  Ctx.write ctx (u + allfrozen_off) 0;
  Ctx.write ctx (u + fld_off) fld;
  Ctx.write ctx (u + newv_off) new_val;
  Ctx.write ctx (u + oldv_off) old_val;
  Ctx.write ctx (u + nv_off) nv;
  let rmask = ref 0 in
  List.iteri
    (fun i snap ->
      Ctx.write ctx (u + records_off + i) snap.record;
      Ctx.write ctx (u + records_off + nv + i) snap.info;
      if List.mem snap.record r then rmask := !rmask lor (1 lsl i))
    v;
  (* Every finalized record must be in V. *)
  List.iter
    (fun fr ->
      if not (List.exists (fun snap -> snap.record = fr) v) then
        invalid_arg "Llx_scx.scx: R not a subset of V")
    r;
  Ctx.write ctx (u + rmask_off) !rmask;
  help ctx u

let is_marked_unsafe machine r = Mt_sim.Machine.peek machine (r + marked_off) = 1

let nfields_unsafe machine r = Mt_sim.Machine.peek machine (r + nfields_off)

let field_unsafe machine r i = Mt_sim.Machine.peek machine (field_addr r i)
