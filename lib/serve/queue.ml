(* Bounded FIFO ring. Harness-level (host) state: fibers only yield at
   simulated stalls, so single-domain cooperative access needs no locking. *)

type 'a t = {
  id : int;
  buf : 'a option array;
  mutable head : int;  (* next slot to dequeue *)
  mutable size : int;
  mutable max_depth : int;
  mutable enqueues : int;
  mutable rejects : int;
}

let create ~id ~capacity =
  if capacity <= 0 then invalid_arg "Queue.create: capacity must be positive";
  {
    id;
    buf = Array.make capacity None;
    head = 0;
    size = 0;
    max_depth = 0;
    enqueues = 0;
    rejects = 0;
  }

let id t = t.id
let capacity t = Array.length t.buf
let length t = t.size
let is_empty t = t.size = 0

let try_enqueue t x =
  let cap = Array.length t.buf in
  if t.size >= cap then begin
    t.rejects <- t.rejects + 1;
    false
  end
  else begin
    t.buf.((t.head + t.size) mod cap) <- Some x;
    t.size <- t.size + 1;
    t.enqueues <- t.enqueues + 1;
    if t.size > t.max_depth then t.max_depth <- t.size;
    true
  end

let dequeue t =
  if t.size = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.size <- t.size - 1;
    x
  end

let max_depth t = t.max_depth
let enqueues t = t.enqueues
let rejects t = t.rejects
