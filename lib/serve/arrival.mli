(** Seeded deterministic arrival processes in simulated time.

    An arrival process turns an offered load (requests per 1000 simulated
    cycles) into a monotone stream of absolute arrival timestamps. All
    randomness comes from a {!Mt_sim.Prng} seeded at creation, so a process
    is a pure function of its parameters — the same seed replays the same
    request stream, which is what makes open-loop sweeps byte-identical
    across [--jobs] values and with tracing on or off. *)

type process =
  | Fixed  (** evenly spaced arrivals at exactly the offered rate *)
  | Poisson  (** exponential inter-arrival gaps (memoryless traffic) *)
  | Bursty of { on_cycles : int; off_cycles : int }
      (** on/off modulated Poisson: arrivals only during the [on] window of
          each [on + off] period, at a rate boosted so the long-run average
          still equals the offered rate. *)

type t

(** [create ~process ~rate_per_kcycle ~seed] — a fresh stream starting at
    simulated time 0 (the first arrival is one gap in). Raises
    [Invalid_argument] if the rate is not positive or a bursty window is
    malformed ([on_cycles <= 0] or [off_cycles < 0]). *)
val create : process:process -> rate_per_kcycle:float -> seed:int -> t

(** The absolute simulated time (cycles) of the next arrival. Consecutive
    calls are monotone non-decreasing. *)
val next : t -> int

(** "fixed" | "poisson" | "bursty(on/off)" — used in reports and JSON. *)
val process_name : process -> string

(** Parse a CLI spelling: "fixed", "poisson", or "bursty" (default
    5000-on / 15000-off windows). *)
val process_of_string : string -> process option
