open Mt_sim
open Mt_core
module Obs = Mt_obs.Obs
module Hist = Mt_obs.Hist
module Json = Mt_obs.Json
module Series = Mt_obs.Series

type queues = Shared | Per_worker of { steal : bool }

type admission =
  | Drop
  | Retry of { max_retries : int; backoff_base : int; backoff_cap : int }

type shed = { heat_per_kcycle : float; sample_cycles : int }

type config = {
  workers : int;
  batch : int;
  queue_capacity : int;
  queues : queues;
  admission : admission;
  process : Arrival.process;
  rate_per_kcycle : float;
  horizon : int;
  dispatch_cycles : int;
  idle_poll_cycles : int;
  seed : int;
  record_dequeues : bool;
  shed : shed option;
}

let config ?(batch = 1) ?(queue_capacity = 64) ?(queues = Shared)
    ?(admission = Drop) ?(process = Arrival.Poisson) ?(horizon = 150_000)
    ?(dispatch_cycles = 16) ?(idle_poll_cycles = 32) ?(seed = 1)
    ?(record_dequeues = false) ?shed ~workers ~rate_per_kcycle () =
  if workers <= 0 || workers > 63 then invalid_arg "Server.config: bad workers";
  if batch <= 0 then invalid_arg "Server.config: batch must be positive";
  if queue_capacity <= 0 then invalid_arg "Server.config: bad queue_capacity";
  if not (rate_per_kcycle > 0.0) then invalid_arg "Server.config: bad rate";
  if horizon <= 0 then invalid_arg "Server.config: bad horizon";
  if dispatch_cycles < 0 || idle_poll_cycles <= 0 then
    invalid_arg "Server.config: bad cycle cost";
  (match admission with
  | Retry { max_retries; backoff_base; backoff_cap } ->
      if max_retries < 0 || backoff_base <= 0 || backoff_cap < backoff_base then
        invalid_arg "Server.config: bad retry policy"
  | Drop -> ());
  (match shed with
  | Some { heat_per_kcycle; sample_cycles } ->
      if not (heat_per_kcycle > 0.0) || sample_cycles <= 0 then
        invalid_arg "Server.config: bad shed policy"
  | None -> ());
  {
    workers;
    batch;
    queue_capacity;
    queues;
    admission;
    process;
    rate_per_kcycle;
    horizon;
    dispatch_cycles;
    idle_poll_cycles;
    seed;
    record_dequeues;
    shed;
  }

type req = { id : int; arrival : int; payload : int; mutable attempts : int }

(* Client-side retry buffer: a binary min-heap on (due time, request id) so
   retries fire in a deterministic order and never delay later arrivals. *)
module Rheap = struct
  type t = { mutable a : (int * req) array; mutable n : int }

  let dummy = { id = -1; arrival = 0; payload = 0; attempts = 0 }
  let create () = { a = Array.make 16 (0, dummy); n = 0 }
  let min_time h = if h.n = 0 then None else Some (fst h.a.(0))

  let lt (t1, r1) (t2, r2) = t1 < t2 || (t1 = t2 && r1.id < r2.id)

  let push h time req =
    if h.n = Array.length h.a then begin
      let a = Array.make (2 * h.n) (0, dummy) in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    h.a.(h.n) <- (time, req);
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while !i > 0 && lt h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    let (_, r) = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    h.a.(h.n) <- (0, dummy);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r' = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.n && lt h.a.(l) h.a.(!s) then s := l;
      if r' < h.n && lt h.a.(r') h.a.(!s) then s := r';
      if !s = !i then continue := false
      else begin
        let tmp = h.a.(!s) in
        h.a.(!s) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !s
      end
    done;
    r
end

type result = {
  backend : string;
  config : config;
  generated : int;
  completed : int;
  dropped : int;
  shed_drops : int;
  rejects : int;
  steals : int;
  still_queued : int;
  duration : int;
  offered : float;
  goodput : float;
  drop_rate : float;
  queue_wait : Hist.t;
  service : Hist.t;
  e2e : Hist.t;
  batch_fill : Hist.t;
  max_depth : int;
  dequeue_log : (int * int) list;
  class_names : string array;
  class_counts : int array;
  class_service : Hist.t array;
  class_e2e : Hist.t array;
}

let run ?cfg ?(obs = Obs.null) ?make_policy ?series ?classes ?cm ~name ~setup
    ~op (c : config) =
  let threads = c.workers + 1 in
  let cfg =
    match cfg with Some m -> m | None -> Config.default ~num_cores:threads ()
  in
  if cfg.Config.num_cores < threads then
    invalid_arg "Server.run: machine has fewer cores than workers + 1";
  if series <> None && not (Obs.enabled obs) then
    invalid_arg "Server.run: ?series needs a recording obs sink (retain:false ok)";
  let m = Machine.create ~obs cfg in
  let state = Harness.exec1 m ~seed:c.seed (fun ctx -> setup ctx) in
  let nq = match c.queues with Shared -> 1 | Per_worker _ -> c.workers in
  let qs = Array.init nq (fun i -> Queue.create ~id:i ~capacity:c.queue_capacity) in
  let gen_done = ref false in
  let generated = ref 0
  and completed = ref 0
  and dropped = ref 0
  and shed_drops = ref 0
  and steals = ref 0 in
  let queue_wait = Hist.create ()
  and service = Hist.create ()
  and e2e = Hist.create ()
  and batch_fill = Hist.create () in
  let dequeue_log = ref [] in
  (* Optional per-request-class breakdown: [classes = (names, classify)]
     buckets each completed request by [classify payload] — host-level
     accounting only, so it never perturbs the simulation. *)
  let class_names = match classes with Some (n, _) -> n | None -> [||] in
  let classify = match classes with Some (_, f) -> f | None -> fun _ -> -1 in
  let nclasses = Array.length class_names in
  let class_counts = Array.make nclasses 0 in
  let class_service = Array.init nclasses (fun _ -> Hist.create ()) in
  let class_e2e = Array.init nclasses (fun _ -> Hist.create ()) in

  (* The arrival fiber: generates timestamped requests from the arrival
     process until [horizon], runs admission (enqueue, or drop / schedule a
     client-side retry), then drains the retry heap. Retries never shift
     the arrival clock — the stream stays open-loop. *)
  let arrival_fiber ctx =
    let core = Ctx.core ctx in
    let arr =
      Arrival.create ~process:c.process ~rate_per_kcycle:c.rate_per_kcycle
        ~seed:(c.seed + 101)
    in
    let pay = Prng.create ~seed:(c.seed + 202) in
    let heap = Rheap.create () in
    let qid_of req =
      match c.queues with Shared -> 0 | Per_worker _ -> req.id mod c.workers
    in
    (* Overload shedding: sample the fabric's aggregate contention signal
       (validation/CAS/VAS/IAS failures + invalidations — the same "heat"
       the telemetry windows report) at a fixed cadence; while its rate
       exceeds the threshold, new arrivals are shed at admission, before
       they can add to the restart storm. Counters are a pure function of
       simulated time, so shedding keeps runs deterministic. *)
    let shedding = ref false in
    let last_heat = ref 0
    and last_sample = ref 0 in
    let sample_shed now =
      match c.shed with
      | None -> ()
      | Some { heat_per_kcycle; sample_cycles } ->
          if now - !last_sample >= sample_cycles then begin
            let h = (Stats.series_counters (Machine.total_stats m)).c_heat in
            let elapsed = now - !last_sample in
            shedding :=
              1000.0 *. float_of_int (h - !last_heat) /. float_of_int elapsed
              > heat_per_kcycle;
            last_heat := h;
            last_sample := now
          end
    in
    let attempt req =
      let q = qs.(qid_of req) in
      if Queue.try_enqueue q req then begin
        if Obs.enabled obs then
          Obs.emit obs ~core ~time:(Ctx.now ctx)
            (Obs.Req_enqueue
               { id = req.id; queue = Queue.id q; depth = Queue.length q })
      end
      else
        match c.admission with
        | Retry { max_retries; backoff_base; backoff_cap }
          when req.attempts < max_retries ->
            let b =
              Mt_cm.Cm.capped_backoff ~base:backoff_base ~cap:backoff_cap
                ~attempt:req.attempts
            in
            req.attempts <- req.attempts + 1;
            if Obs.enabled obs then
              Obs.emit obs ~core ~time:(Ctx.now ctx)
                (Obs.Req_retry
                   {
                     id = req.id;
                     attempt = req.attempts;
                     cause = "queue-full";
                   });
            Rheap.push heap (Ctx.now ctx + b) req
        | _ ->
            incr dropped;
            if Obs.enabled obs then
              Obs.emit obs ~core ~time:(Ctx.now ctx)
                (Obs.Req_drop
                   { id = req.id; queue = Queue.id q; cause = "queue-full" })
    in
    let next_arrival = ref (Arrival.next arr) in
    let next_id = ref 0 in
    let continue = ref true in
    while !continue do
      let arr_t = if !next_arrival < c.horizon then Some !next_arrival else None in
      let retry_t = Rheap.min_time heap in
      let next_event =
        match (arr_t, retry_t) with
        | None, None -> None
        | Some a, None -> Some (a, true)
        | None, Some r -> Some (r, false)
        | Some a, Some r -> if a <= r then Some (a, true) else Some (r, false)
      in
      match next_event with
      | None -> continue := false
      | Some (t, is_arrival) ->
          let now = Ctx.now ctx in
          if t > now then Runtime.stall (t - now);
          if is_arrival then begin
            let payload = Int64.to_int (Prng.next pay) land max_int in
            let req =
              { id = !next_id; arrival = Ctx.now ctx; payload; attempts = 0 }
            in
            incr next_id;
            incr generated;
            next_arrival := Arrival.next arr;
            if Obs.enabled obs then
              Obs.emit obs ~core ~time:req.arrival
                (Obs.Req_arrive { id = req.id });
            sample_shed req.arrival;
            if !shedding then begin
              incr dropped;
              incr shed_drops;
              if Obs.enabled obs then
                Obs.emit obs ~core ~time:req.arrival
                  (Obs.Req_drop
                     { id = req.id; queue = qid_of req; cause = "overload-shed" })
            end
            else attempt req
          end
          else attempt (Rheap.pop heap)
    done;
    gen_done := true
  in

  (* A worker fiber: form a batch (own queue first, then steal if enabled),
     charge the dispatch overhead once, execute each request, record
     wait / service / end-to-end. Exits once arrivals are done and every
     queue it can see is empty. *)
  let worker_fiber ctx w =
    let own = match c.queues with Shared -> qs.(0) | Per_worker _ -> qs.(w) in
    let can_steal =
      match c.queues with Per_worker { steal } -> steal | Shared -> false
    in
    (* Take up to [k] requests from [q], tagging each with the queue id. *)
    let take_from q k =
      let rec go k acc =
        if k = 0 then List.rev acc
        else
          match Queue.dequeue q with
          | None -> List.rev acc
          | Some r -> go (k - 1) ((r, Queue.id q) :: acc)
      in
      go k []
    in
    let steal_batch k =
      let rec scan i =
        if i >= nq - 1 then []
        else
          let v = (w + 1 + i) mod nq in
          let got = take_from qs.(v) k in
          if got = [] then scan (i + 1)
          else begin
            steals := !steals + List.length got;
            got
          end
      in
      scan 0
    in
    let finished () =
      !gen_done
      &&
      match c.queues with
      | Shared -> Queue.is_empty qs.(0)
      | Per_worker { steal = true } -> Array.for_all Queue.is_empty qs
      | Per_worker { steal = false } -> Queue.is_empty own
    in
    let continue = ref true in
    while !continue do
      let batch = take_from own c.batch in
      let batch = if batch = [] && can_steal then steal_batch c.batch else batch in
      match batch with
      | [] ->
          if finished () then continue := false
          else Runtime.stall c.idle_poll_cycles
      | batch ->
          let t_dq = Ctx.now ctx in
          let n = List.length batch in
          Hist.add batch_fill n;
          if Obs.enabled obs then
            Obs.emit obs ~core:w ~time:t_dq (Obs.Batch { size = n });
          List.iter
            (fun (r, qid) ->
              Hist.add queue_wait (t_dq - r.arrival);
              if c.record_dequeues then dequeue_log := (qid, r.id) :: !dequeue_log;
              if Obs.enabled obs then
                Obs.emit obs ~core:w ~time:t_dq
                  (Obs.Req_dequeue
                     { id = r.id; queue = qid; wait = t_dq - r.arrival }))
            batch;
          Ctx.work ctx c.dispatch_cycles;
          List.iter
            (fun (r, _) ->
              let t0 = Ctx.now ctx in
              if Obs.enabled obs then
                Obs.emit obs ~core:w ~time:t0 (Obs.Span_begin { name });
              op ctx state r.payload;
              let t1 = Ctx.now ctx in
              if Obs.enabled obs then begin
                Obs.emit obs ~core:w ~time:t1 (Obs.Span_end { name });
                Obs.emit obs ~core:w ~time:t1 (Obs.Req_commit { id = r.id })
              end;
              Hist.add service (t1 - t0);
              Hist.add e2e (t1 - r.arrival);
              if nclasses > 0 then begin
                let cl = classify r.payload in
                if cl >= 0 && cl < nclasses then begin
                  class_counts.(cl) <- class_counts.(cl) + 1;
                  Hist.add class_service.(cl) (t1 - t0);
                  Hist.add class_e2e.(cl) (t1 - r.arrival)
                end
              end;
              incr completed)
            batch
    done
  in
  (* The series observes the serving phase only (the tap attaches after
     setup; the counter baseline is the post-setup state); a custom policy
     (fault injection) likewise drives only the serving phase. *)
  let snap () = Stats.series_counters (Machine.total_stats m) in
  (match series with
  | Some s ->
      Series.set_baseline s (snap ());
      Obs.set_tap obs (Some (Series.feed s))
  | None -> ());
  let policy = Option.map (fun f -> f m) make_policy in
  let tick =
    Option.map
      (fun s ->
        (Series.window_cycles s, fun ~now -> Series.snapshot s ~time:now (snap ())))
      series
  in
  let duration =
    Harness.exec m ~seed:c.seed ?policy ?tick ?cm ~threads (fun ctx ->
        let core = Ctx.core ctx in
        if core = c.workers then arrival_fiber ctx else worker_fiber ctx core)
  in
  (match series with
  | Some s ->
      Series.finish s ~time:duration (snap ());
      Obs.set_tap obs None
  | None -> ());
  let still_queued = Array.fold_left (fun a q -> a + Queue.length q) 0 qs in
  let max_depth = Array.fold_left (fun a q -> max a (Queue.max_depth q)) 0 qs in
  let rejects = Array.fold_left (fun a q -> a + Queue.rejects q) 0 qs in
  {
    backend = name;
    config = c;
    generated = !generated;
    completed = !completed;
    dropped = !dropped;
    shed_drops = !shed_drops;
    rejects;
    steals = !steals;
    still_queued;
    duration;
    offered = c.rate_per_kcycle;
    (* Sustained completion rate over the whole run, drain included: under
       overload the queues keep completing work past the horizon, and
       dividing by the horizon alone would credit that backlog as extra
       capacity. *)
    goodput =
      (if duration = 0 then 0.0
       else 1000.0 *. float_of_int !completed /. float_of_int duration);
    drop_rate =
      (if !generated = 0 then 0.0
       else float_of_int !dropped /. float_of_int !generated);
    queue_wait;
    service;
    e2e;
    batch_fill;
    max_depth;
    dequeue_log = List.rev !dequeue_log;
    class_names;
    class_counts;
    class_service;
    class_e2e;
  }

let run_set ?cfg ?obs ?make_policy ?series ?cm ?(init_fill = 0.5)
    ?(insert_pct = 35) ?(delete_pct = 35) (module S : Mt_list.Set_intf.SET)
    ~key_range (c : config) =
  if key_range <= 0 then invalid_arg "Server.run_set: bad key_range";
  if insert_pct < 0 || delete_pct < 0 || insert_pct + delete_pct > 100 then
    invalid_arg "Server.run_set: bad operation mix";
  let setup ctx =
    let s = S.create ctx in
    let g = Prng.create ~seed:(c.seed + 1) in
    for k = 0 to key_range - 1 do
      if Prng.float g < init_fill then ignore (S.insert ctx s k)
    done;
    s
  in
  let op ctx s payload =
    let k = (payload lsr 20) mod key_range in
    let r = payload mod 100 in
    if r < insert_pct then ignore (S.insert ctx s k)
    else if r < insert_pct + delete_pct then ignore (S.delete ctx s k)
    else ignore (S.contains ctx s k)
  in
  run ?cfg ?obs ?make_policy ?series ?cm ~name:S.name ~setup ~op c

let queues_name = function
  | Shared -> "shared"
  | Per_worker { steal = false } -> "per-worker"
  | Per_worker { steal = true } -> "per-worker-steal"

let pp_result ppf r =
  Format.fprintf ppf
    "%-18s offered %8.3f/kcyc  goodput %8.3f/kcyc  drop %5.2f%%  wait p50 %d  \
     e2e p50/p99/p99.9 %d/%d/%d  batch %.2f"
    r.backend r.offered r.goodput
    (100.0 *. r.drop_rate)
    (Hist.percentile r.queue_wait 50.0)
    (Hist.percentile r.e2e 50.0)
    (Hist.percentile r.e2e 99.0)
    (Hist.percentile r.e2e 99.9)
    (Hist.mean r.batch_fill)

(* Stable machine-readable form: one service point. Field set and order
   are part of the latency-sweep schema — extend, don't reorder. *)
let config_to_json (c : config) =
  Json.Obj
    [
      ("workers", Json.Int c.workers);
      ("batch", Json.Int c.batch);
      ("queue_capacity", Json.Int c.queue_capacity);
      ("queues", Json.String (queues_name c.queues));
      ( "admission",
        match c.admission with
        | Drop -> Json.Obj [ ("policy", Json.String "drop") ]
        | Retry { max_retries; backoff_base; backoff_cap } ->
            Json.Obj
              [
                ("policy", Json.String "retry");
                ("max_retries", Json.Int max_retries);
                ("backoff_base", Json.Int backoff_base);
                ("backoff_cap", Json.Int backoff_cap);
              ] );
      ( "shed",
        (* No bare nulls at schema v3+: absence is an explicit flag. *)
        match c.shed with
        | None -> Json.Obj [ ("enabled", Json.Bool false) ]
        | Some { heat_per_kcycle; sample_cycles } ->
            Json.Obj
              [
                ("enabled", Json.Bool true);
                ("heat_per_kcycle", Json.Float heat_per_kcycle);
                ("sample_cycles", Json.Int sample_cycles);
              ] );
      ("arrival", Json.String (Arrival.process_name c.process));
      ("offered_per_kcycle", Json.Float c.rate_per_kcycle);
      ("horizon_cycles", Json.Int c.horizon);
      ("dispatch_cycles", Json.Int c.dispatch_cycles);
      ("idle_poll_cycles", Json.Int c.idle_poll_cycles);
      ("seed", Json.Int c.seed);
    ]

let result_to_json r =
  Json.Obj
    [
      ("backend", Json.String r.backend);
      ("serve", config_to_json r.config);
      ("generated", Json.Int r.generated);
      ("completed", Json.Int r.completed);
      ("dropped", Json.Int r.dropped);
      ("shed_drops", Json.Int r.shed_drops);
      ("enqueue_rejects", Json.Int r.rejects);
      ("steals", Json.Int r.steals);
      ("still_queued", Json.Int r.still_queued);
      ("duration_cycles", Json.Int r.duration);
      ("offered_per_kcycle", Json.Float r.offered);
      ("goodput_per_kcycle", Json.Float r.goodput);
      ("drop_rate", Json.Float r.drop_rate);
      ("queue_wait_cycles", Hist.to_json r.queue_wait);
      ("service_cycles", Hist.to_json r.service);
      ("e2e_latency_cycles", Hist.to_json r.e2e);
      ("batch_fill", Hist.to_json r.batch_fill);
      ("max_queue_depth", Json.Int r.max_depth);
      ( "classes",
        Json.List
          (Array.to_list
             (Array.mapi
                (fun i n ->
                  Json.Obj
                    [
                      ("class", Json.String n);
                      ("count", Json.Int r.class_counts.(i));
                      ("service_cycles", Hist.to_json r.class_service.(i));
                      ("e2e_latency_cycles", Hist.to_json r.class_e2e.(i));
                    ])
                r.class_names)) );
    ]
