open Mt_sim

type process =
  | Fixed
  | Poisson
  | Bursty of { on_cycles : int; off_cycles : int }

type t = {
  process : process;
  rate_per_cycle : float;
  prng : Prng.t;
  mutable clock : float;  (* absolute time of the last arrival generated *)
}

let create ~process ~rate_per_kcycle ~seed =
  if not (rate_per_kcycle > 0.0) then
    invalid_arg "Arrival.create: rate must be positive";
  (match process with
  | Bursty { on_cycles; off_cycles } ->
      if on_cycles <= 0 || off_cycles < 0 then
        invalid_arg "Arrival.create: bad bursty window"
  | Fixed | Poisson -> ());
  {
    process;
    rate_per_cycle = rate_per_kcycle /. 1000.0;
    prng = Prng.create ~seed;
    clock = 0.0;
  }

(* Exponential gap with the given rate (events per cycle). [Prng.float] is
   in [0,1), so [1 - u] is in (0,1] and the log is finite. *)
let exp_gap prng rate = -.log (1.0 -. Prng.float prng) /. rate

(* Advance [t0] by [g] cycles of *active* time, where the first
   [on_cycles] of every [on + off] period are active. *)
let advance_bursty ~on_cycles ~off_cycles t0 g =
  let on = float_of_int on_cycles and period = float_of_int (on_cycles + off_cycles) in
  let t = ref t0 and g = ref g in
  while !g > 0.0 do
    let pos = Float.rem !t period in
    if pos >= on then
      (* In the off window: jump to the start of the next on window. *)
      t := !t -. pos +. period
    else begin
      let avail = on -. pos in
      if !g <= avail then begin
        t := !t +. !g;
        g := 0.0
      end
      else begin
        t := !t +. avail;
        g := !g -. avail
      end
    end
  done;
  !t

let next t =
  (match t.process with
  | Fixed -> t.clock <- t.clock +. (1.0 /. t.rate_per_cycle)
  | Poisson -> t.clock <- t.clock +. exp_gap t.prng t.rate_per_cycle
  | Bursty { on_cycles; off_cycles } ->
      (* Boost the in-burst rate so the long-run average matches. *)
      let boost =
        float_of_int (on_cycles + off_cycles) /. float_of_int on_cycles
      in
      let g = exp_gap t.prng (t.rate_per_cycle *. boost) in
      t.clock <- advance_bursty ~on_cycles ~off_cycles t.clock g);
  int_of_float t.clock

let process_name = function
  | Fixed -> "fixed"
  | Poisson -> "poisson"
  | Bursty { on_cycles; off_cycles } ->
      Printf.sprintf "bursty(%d/%d)" on_cycles off_cycles

let process_of_string = function
  | "fixed" -> Some Fixed
  | "poisson" -> Some Poisson
  | "bursty" -> Some (Bursty { on_cycles = 5000; off_cycles = 15000 })
  | _ -> None
