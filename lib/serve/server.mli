(** Open-loop request service: arrivals, queueing, batching, admission.

    Closed-loop workloads ({!Mt_workload.Driver}) issue the next operation
    the instant the previous one completes, so queueing delay is invisible
    and throughput saturates gracefully. This module instead offers load to
    the structure at a configured rate, independent of how fast it is being
    served: one arrival fiber generates timestamped requests from an
    {!Arrival} process and pushes them through admission control into
    bounded {!Queue}s; [workers] worker fibers dequeue (up to [batch] at a
    time), execute each request against the backend, and record queueing
    delay, service time and end-to-end latency separately. Past saturation
    the queues fill, goodput plateaus and the end-to-end tail explodes —
    the regime a structure serving real traffic actually lives in.

    Everything is driven by simulated time and seeded PRNGs: a run is a
    pure function of its [config], so sweeps are byte-identical for any
    [--jobs] value and with tracing on or off. *)

type queues =
  | Shared  (** one queue, every worker dequeues from it *)
  | Per_worker of { steal : bool }
      (** one queue per worker (arrivals spread round-robin by request id);
          with [steal], an idle worker takes work from the oldest end of
          another worker's queue. *)

type admission =
  | Drop  (** reject-on-full: a bounced request is dropped immediately *)
  | Retry of { max_retries : int; backoff_base : int; backoff_cap : int }
      (** a bounced request is re-attempted client-side up to
          [max_retries] times with capped exponential backoff
          ([backoff_base * 2^attempt], capped at [backoff_cap] cycles,
          computed overflow-safely by {!Mt_cm.Cm.capped_backoff});
          retries never delay later arrivals (the stream stays open-loop). *)

(** Overload shedding: the arrival fiber samples the fabric's aggregate
    contention signal — validation/CAS/VAS/IAS failures plus invalidations,
    the "heat" the telemetry windows report — every [sample_cycles]; while
    its rate exceeds [heat_per_kcycle] events per 1000 cycles, new arrivals
    are dropped at admission (cause ["overload-shed"]) before they can feed
    the restart storm. Retries already admitted still proceed. *)
type shed = { heat_per_kcycle : float; sample_cycles : int }

type config = {
  workers : int;  (** worker fibers (cores 0..workers-1; arrivals on core [workers]) *)
  batch : int;  (** max requests moved per dequeue (>= 1) *)
  queue_capacity : int;  (** bound of each queue *)
  queues : queues;
  admission : admission;
  process : Arrival.process;
  rate_per_kcycle : float;  (** offered load: requests per 1000 cycles *)
  horizon : int;  (** arrivals stop at this simulated time; workers drain *)
  dispatch_cycles : int;
      (** fixed dequeue/dispatch overhead charged once per batch — what
          batching amortizes *)
  idle_poll_cycles : int;  (** idle worker poll interval *)
  seed : int;
  record_dequeues : bool;
      (** keep the (queue, request id) dequeue log in the result (tests) *)
  shed : shed option;  (** overload shedding; [None] (default) disables it *)
}

(** [config ~workers ~rate_per_kcycle ()] with defaults: batch 1, capacity
    64, shared queue, drop admission, Poisson arrivals, horizon 150_000,
    dispatch 16, idle poll 32, seed 1, no shedding. *)
val config :
  ?batch:int ->
  ?queue_capacity:int ->
  ?queues:queues ->
  ?admission:admission ->
  ?process:Arrival.process ->
  ?horizon:int ->
  ?dispatch_cycles:int ->
  ?idle_poll_cycles:int ->
  ?seed:int ->
  ?record_dequeues:bool ->
  ?shed:shed ->
  workers:int ->
  rate_per_kcycle:float ->
  unit ->
  config

type result = {
  backend : string;
  config : config;
  generated : int;  (** requests created by the arrival process *)
  completed : int;
  dropped : int;  (** rejected for good by admission control *)
  shed_drops : int;
      (** of [dropped], the requests shed by overload control (cause
          ["overload-shed"]); 0 unless [config.shed] is set *)
  rejects : int;  (** enqueue attempts that bounced (retries re-count) *)
  steals : int;  (** requests obtained by work-stealing *)
  still_queued : int;  (** left in queues at the end (0 after a drain) *)
  duration : int;  (** simulated time when the last fiber finished *)
  offered : float;  (** [config.rate_per_kcycle] *)
  goodput : float;
      (** completed requests per 1000 cycles of [duration] — the sustained
          completion rate including the post-horizon drain, so overload
          cannot credit queued backlog as capacity *)
  drop_rate : float;  (** dropped / generated *)
  queue_wait : Mt_obs.Hist.t;  (** arrival -> dequeue, cycles *)
  service : Mt_obs.Hist.t;  (** dequeue -> completion, cycles *)
  e2e : Mt_obs.Hist.t;  (** arrival -> completion, cycles *)
  batch_fill : Mt_obs.Hist.t;  (** requests actually moved per dequeue *)
  max_depth : int;  (** high-water occupancy over all queues *)
  dequeue_log : (int * int) list;
      (** (queue id, request id) in dequeue order, iff [record_dequeues] *)
  class_names : string array;
      (** per-request-class breakdown labels ([[||]] unless [?classes]
          was passed to {!run}) *)
  class_counts : int array;  (** completions per class, same index *)
  class_service : Mt_obs.Hist.t array;  (** service time per class *)
  class_e2e : Mt_obs.Hist.t array;  (** end-to-end latency per class *)
}

(** [run ?cfg ?obs ~name ~setup ~op config] — the open-loop analogue of
    {!Mt_workload.Driver.run_custom}: [setup] builds the backend on core 0;
    [op ctx state payload] executes one request ([payload] is 62 bits of
    seeded per-request randomness that determines the operation). The
    machine defaults to [workers + 1] cores (the extra core runs the
    arrival fiber). Deterministic in [config.seed].

    Requests are conserved: [generated = completed + dropped +
    still_queued] always holds, and [still_queued] is 0 because workers
    drain the queues after arrivals stop.

    Every request is a causal chain in the event stream — [Req_arrive] at
    generation, [Req_enqueue]/[Req_retry]/[Req_drop] at admission,
    [Req_dequeue] at pickup, [Req_commit] at completion, all carrying the
    request id — which the trace exporter renders as Perfetto flow
    arrows. [make_policy] builds a custom scheduling policy from the
    machine (fault injection); [series] attaches windowed telemetry
    ({!Mt_obs.Series}) to the serving phase (requires a recording [obs];
    a [retain:false] sink works). Both apply to the serving phase only,
    never setup.

    [classes = (names, classify)] buckets each completed request by
    [classify payload] (an index into [names]; out-of-range means
    unclassified) into the per-class counts and latency histograms of the
    result — host-level accounting, never perturbing the simulation. *)
val run :
  ?cfg:Mt_sim.Config.t ->
  ?obs:Mt_obs.Obs.t ->
  ?make_policy:(Mt_sim.Machine.t -> Mt_sim.Runtime.policy) ->
  ?series:Mt_obs.Series.t ->
  ?classes:string array * (int -> int) ->
  ?cm:Mt_cm.Cm.spec ->
  name:string ->
  setup:(Mt_core.Ctx.t -> 'a) ->
  op:(Mt_core.Ctx.t -> 'a -> int -> unit) ->
  config ->
  result

(** [run_set set ~key_range config] serves a {!Mt_list.Set_intf.SET}
    backend: the structure is prefilled to [init_fill] (default 0.5) and
    each request performs an insert/delete/contains on a payload-derived
    key with the given mix (defaults 35/35/30, like the paper's write-heavy
    workload). *)
val run_set :
  ?cfg:Mt_sim.Config.t ->
  ?obs:Mt_obs.Obs.t ->
  ?make_policy:(Mt_sim.Machine.t -> Mt_sim.Runtime.policy) ->
  ?series:Mt_obs.Series.t ->
  ?cm:Mt_cm.Cm.spec ->
  ?init_fill:float ->
  ?insert_pct:int ->
  ?delete_pct:int ->
  (module Mt_list.Set_intf.SET) ->
  key_range:int ->
  config ->
  result

(** One human-readable row: offered vs goodput, drop rate, wait/e2e
    percentiles (p50/p99/p99.9), mean batch fill. *)
val pp_result : Format.formatter -> result -> unit

(** Stable machine-readable form of one service point (the latency-sweep
    schema): the full serve configuration, conservation counters, goodput,
    and the three latency histograms. Extend, don't reorder. *)
val result_to_json : result -> Mt_obs.Json.t
