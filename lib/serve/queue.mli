(** Bounded FIFO request queues for the service layer.

    These are harness-level structures (plain OCaml, not simulated memory):
    the cooperative fiber runtime only switches at stall points, so the
    queue needs no synchronization of its own — what we are measuring is
    the {e queueing delay} requests accumulate in it, not its internal
    contention. Occupancy, high-water mark and rejected enqueues are
    tracked so admission behaviour can be reported per queue. *)

type 'a t

(** [create ~id ~capacity] — an empty queue. [id] names it in events and
    reports (queue 0 is the shared queue; per-worker queues use the worker
    index). Raises [Invalid_argument] if [capacity <= 0]. *)
val create : id:int -> capacity:int -> 'a t

val id : 'a t -> int
val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [try_enqueue q x] appends [x]; [false] (and counts a reject) if the
    queue is at capacity. *)
val try_enqueue : 'a t -> 'a -> bool

(** Oldest element, if any. *)
val dequeue : 'a t -> 'a option

(** Highest occupancy ever reached. *)
val max_depth : 'a t -> int

(** Successful enqueues. *)
val enqueues : 'a t -> int

(** Enqueue attempts that bounced off a full queue (each retried attempt
    counts again). *)
val rejects : 'a t -> int
