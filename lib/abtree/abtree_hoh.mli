(** The HoH-tagged relaxed (a,b)-tree (paper Section 5.1, Algorithms 3-5).

    Leaf-oriented: all keys live in leaves; internal nodes route. Nodes are
    immutable except for internal child pointers, which are swung {e in
    place} by a single IAS per update — the paper's headline property:
    atomic node modification without validating the whole root-to-leaf
    path, with exactly one atomic pointer change, and minimal coherence
    traffic.

    Every operation that needs to modify the tree performs a hand-over-hand
    tagged descent keeping a window of three ancestors (grandparent,
    parent, current) tagged, per the paper's Observation that no operation
    removes a chain longer than two nodes. All node removals go through IAS
    (the Synchronization Rule), which transiently "marks" removed nodes by
    invalidating them at every core that has them tagged.

    Rebalancing repeatedly fixes the first violation on the search path:
    RootUntag, RootAbsorb, AbsorbChild, PropagateTag, AbsorbSibling,
    Distribute — until the path is violation-free. *)

(** Generalized over the insert commit: [validated_insert = false] drops
    the IAS validation from insert's pointer swing (a plain store commits
    blindly over a possibly-replaced window). That configuration exists
    {e only} as a seeded bug for the checker battery
    ([Mt_check.Buggy_abtree]); every real tree goes through {!Make}. *)
module Make_gen (_ : sig
  val a : int
  val b : int
  val validated_insert : bool
end) : sig
  include Mt_list.Set_intf.SET

  (** Atomic range snapshot [\[lo, hi\]] via tag-validated leaf walks;
      [None] when the range spans more lines than [Max_Tags] allows. *)
  val range : Mt_core.Ctx.t -> t -> lo:int -> hi:int -> int list option

  (** [scan_plain ctx t ~lo ~hi ~budget] — plain untagged range collect
      visiting at most [budget] nodes. {e Not} atomic on its own: callers
      must prove quiescence externally (the sharded store's per-shard
      version protocol does). *)
  val scan_plain : Mt_core.Ctx.t -> t -> lo:int -> hi:int -> budget:int -> int list

  (** Structural invariant check on a quiescent machine. *)
  val check : Mt_sim.Machine.t -> t -> Checker.report
end

module Make (_ : sig
  val a : int
  (** minimum degree; [a >= 2] *)

  val b : int
  (** maximum degree; [b >= 2*a - 1] *)
end) : sig
  include Mt_list.Set_intf.SET

  (** Atomic range snapshot [\[lo, hi\]] via tag-validated leaf walks;
      [None] when the range spans more lines than [Max_Tags] allows. *)
  val range : Mt_core.Ctx.t -> t -> lo:int -> hi:int -> int list option

  (** [scan_plain ctx t ~lo ~hi ~budget] — plain untagged range collect
      visiting at most [budget] nodes. {e Not} atomic on its own: callers
      must prove quiescence externally (the sharded store's per-shard
      version protocol does). *)
  val scan_plain : Mt_core.Ctx.t -> t -> lo:int -> hi:int -> budget:int -> int list

  (** Structural invariant check on a quiescent machine. *)
  val check : Mt_sim.Machine.t -> t -> Checker.report
end
