open Mt_core

let null = Mt_sim.Memory.null

module Make_gen (P : sig
  val a : int
  val b : int
  val validated_insert : bool
end) =
struct
  let () =
    if P.a < 2 then invalid_arg "Abtree_hoh: a must be >= 2";
    if P.b < (2 * P.a) - 1 then invalid_arg "Abtree_hoh: b must be >= 2a-1"

  (* The checker-canary seam: with [validated_insert = false] an insert
     swings the parent slot with a plain (unvalidated) store instead of
     IAS — the hand-over-hand descent's tag window is never checked at
     commit time, so a concurrent replacement of the window is silently
     overwritten. [Mt_check.Buggy_abtree] instantiates this to give the
     linearizability battery a tree-shaped seeded bug; every real tree
     uses {!Make}, which pins it to [true]. *)
  let insert_commit ctx target v =
    if P.validated_insert then Ctx.ias ctx target v
    else begin
      Ctx.write ctx target v;
      true
    end

  let a = P.a
  let b = P.b

  (* Uniform node layout (one allocation size avoids tagging a neighbour's
     line): word 0 = meta, words 1..b = keys, words b+1..2b+1 = child ptrs. *)
  let keys_off = 1
  let ptrs_off = 1 + b
  let node_words = (2 * b) + 2

  type t = { sentinel : Ctx.addr }

  let name = Printf.sprintf "hoh-abtree(%d,%d)" a b

  let meta_of (d : Node_desc.t) =
    Node_desc.pack_meta ~leaf:d.leaf ~weight:d.weight ~count:(Array.length d.keys)

  let write_desc ctx (d : Node_desc.t) =
    let n = Ctx.alloc ~label:"abtree-hoh-node" ctx ~words:node_words in
    Ctx.write ctx n (meta_of d);
    Array.iteri (fun i k -> Ctx.write ctx (n + keys_off + i) k) d.keys;
    Array.iteri (fun i p -> Ctx.write ctx (n + ptrs_off + i) p) d.ptrs;
    n

  (* Tagged load of one word: the line becomes tagged exactly when the
     demand fetch completes — the paper's transition-to-tagged behaviour.
     AddTag(node, sizeof(node)) is realised lazily: each word the algorithm
     actually reads from a window node is read with a tagged load, so the
     tag set covers precisely the lines this thread depends on (and a
     deleter's IAS, whose tag set covers every data-bearing line of the
     nodes it read, is guaranteed to overlap it). *)
  let tread ctx addr = Ctx.add_tag_read ctx addr ~words:1

  (* Reads of a window (tagged) node go through tagged loads; plain
     searches use untagged reads. *)
  let read_desc_gen word ctx node : Node_desc.t =
    let meta = word ctx node in
    let count = Node_desc.meta_count meta in
    let leaf = Node_desc.meta_leaf meta in
    let keys = Array.make count 0 in
    for i = 0 to count - 1 do
      keys.(i) <- word ctx (node + keys_off + i)
    done;
    let nptrs = if leaf then 0 else count + 1 in
    let ptrs = Array.make nptrs 0 in
    for i = 0 to nptrs - 1 do
      ptrs.(i) <- word ctx (node + ptrs_off + i)
    done;
    { weight = Node_desc.meta_weight meta; leaf; keys; ptrs }

  let read_desc ctx node = read_desc_gen tread ctx node

  let tagged_meta ctx node = tread ctx node
  let untag ctx node = Ctx.remove_tag ctx node ~words:node_words

  let create ctx =
    let leaf = write_desc ctx { weight = 1; leaf = true; keys = [||]; ptrs = [||] } in
    let sentinel =
      write_desc ctx { weight = 1; leaf = false; keys = [||]; ptrs = [| leaf |] }
    in
    { sentinel }

  (* Pick the child of [node] covering [k], reading keys with early exit;
     [word] selects tagged or plain loads. *)
  let select_child_gen word ctx node meta k =
    let count = Node_desc.meta_count meta in
    let rec scan i =
      if i >= count then i
      else if k < word ctx (node + keys_off + i) then i
      else scan (i + 1)
    in
    let ix = scan 0 in
    (ix, word ctx (node + ptrs_off + ix))

  let select_child ctx node meta k = select_child_gen tread ctx node meta k

  exception Restart = Ctx.Restart

  (* Hand-over-hand tagged descent toward [k], stopping at the first node
     satisfying [stop] (or at a leaf). Returns
     [(gp, ixp, p, ixc, curr, curr_meta)]: [ixp] is [p]'s slot in [gp],
     [ixc] is [curr]'s slot in [p]; [null]/[-1] when absent. The returned
     window nodes remain tagged; the caller must clear the tag set.
     Restarts go through {!Ctx.with_restarts} (clear, consult the
     contention policy, re-descend). *)
  let locate_gen ctx t k ~stop =
    Ctx.with_restarts ~site:t.sentinel ctx (fun () ->
        let curr = t.sentinel in
        let cm = tagged_meta ctx curr in
        if not (Ctx.validate ctx) then raise Restart;
        let rec go gp ixp p ixc curr cm =
          if (p <> null && stop ~p ~meta:cm) || Node_desc.meta_leaf cm then
            (gp, ixp, p, ixc, curr, cm)
          else begin
            let ix, next = select_child ctx curr cm k in
            let nm = tagged_meta ctx next in
            if not (Ctx.validate ctx) then raise Restart;
            if gp <> null then untag ctx gp;
            go p ixc curr ix next nm
          end
        in
        go null (-1) null (-1) curr cm)

  let never ~p:_ ~meta:_ = false

  (* Does the node described by [meta] (child of [p]) violate balance? *)
  let violation t ~p ~meta =
    let w = Node_desc.meta_weight meta in
    let count = Node_desc.meta_count meta in
    let leaf = Node_desc.meta_leaf meta in
    if w = 0 then true
    else if p = t.sentinel then (not leaf) && count = 0 (* internal root child with 1 child *)
    else if leaf then count < a
    else count + 1 < a

  (* ------------------------------------------------------------------ *)
  (* Updates. *)

  let rec insert ctx t k =
    let rec go attempt =
      let gp, _ixp, p, ixc, u, _um = locate_gen ctx t k ~stop:never in
      let ud = read_desc ctx u in
      if Node_desc.leaf_contains ud k then begin
        Ctx.clear_tag_set ctx;
        false
      end
      else begin
        (* Only p's slot is written and only u is removed: drop gp's tag to
           avoid collateral invalidation. *)
        if gp <> null then untag ctx gp;
        let target = p + ptrs_off + ixc in
        let grew = Node_desc.leaf_insert ud k in
        let ok =
          if Node_desc.size grew <= b then insert_commit ctx target (write_desc ctx grew)
          else begin
            (* Figure 3(b): split into two leaves under a fresh flagged node. *)
            let l, r, sep = Node_desc.split grew in
            let la = write_desc ctx l in
            let ra = write_desc ctx r in
            let np =
              write_desc ctx
                { weight = 0; leaf = false; keys = [| sep |]; ptrs = [| la; ra |] }
            in
            insert_commit ctx target np
          end
        in
        Ctx.clear_tag_set ctx;
        if ok then begin
          if Node_desc.size grew > b then rebalance ctx t k;
          true
        end
        else begin
          Ctx.cm_wait ~site:target ctx ~attempt;
          go (attempt + 1)
        end
      end
    in
    go 0

  and delete ctx t k =
    let rec go attempt =
      let gp, _ixp, p, ixc, u, _um = locate_gen ctx t k ~stop:never in
      let ud = read_desc ctx u in
      if not (Node_desc.leaf_contains ud k) then begin
        Ctx.clear_tag_set ctx;
        false
      end
      else begin
        if gp <> null then untag ctx gp;
        let target = p + ptrs_off + ixc in
        let shrunk = Node_desc.leaf_remove ud k in
        let ok = Ctx.ias ctx target (write_desc ctx shrunk) in
        Ctx.clear_tag_set ctx;
        if ok then begin
          if Node_desc.size shrunk < a && p <> t.sentinel then rebalance ctx t k;
          true
        end
        else begin
          Ctx.cm_wait ~site:target ctx ~attempt;
          go (attempt + 1)
        end
      end
    in
    go 0

  (* One rebalancing step at the window (gp, p, u). Returns true on a
     successful IAS; false means "inconsistency or conflict — re-descend".
     The tag set still holds {gp?, p, u} (+ possibly a sibling we add). *)
  and apply_step ctx t gp ixp p ixc u um =
    let weight = Node_desc.meta_weight um in
    if weight = 0 then
      if p = t.sentinel then begin
        (* RootUntag: replace the flagged root child by a weight-1 copy. *)
        let ud = read_desc ctx u in
        Ctx.ias ctx (p + ptrs_off + ixc) (write_desc ctx (Node_desc.set_weight ud 1))
      end
      else begin
        (* gp exists because p is not the sentinel. *)
        let pd = read_desc ctx p in
        if ixc >= Array.length pd.ptrs || pd.ptrs.(ixc) <> u || pd.leaf then false
        else begin
          let ud = read_desc ctx u in
          if ud.leaf then false
          else begin
            let comb = Node_desc.absorb ~parent:pd ~ix:ixc ~child:ud in
            let target = gp + ptrs_off + ixp in
            if Node_desc.size comb <= b then
              (* AbsorbChild: p and u replaced by one combined node. *)
              Ctx.ias ctx target (write_desc ctx comb)
            else begin
              (* PropagateTag: the flag violation moves one level up. *)
              let l, r, sep = Node_desc.split comb in
              let la = write_desc ctx l in
              let ra = write_desc ctx r in
              let np =
                write_desc ctx
                  { weight = 0; leaf = false; keys = [| sep |]; ptrs = [| la; ra |] }
              in
              Ctx.ias ctx target np
            end
          end
        end
      end
    else if p = t.sentinel then begin
      (* RootAbsorb: internal root child with a single child. *)
      let ud = read_desc ctx u in
      if ud.leaf || Array.length ud.ptrs <> 1 then false
      else begin
        let child = ud.ptrs.(0) in
        let (_ : int) = tagged_meta ctx child in
        if not (Ctx.validate ctx) then false
        else begin
          let cd = read_desc ctx child in
          Ctx.ias ctx (p + ptrs_off + ixc) (write_desc ctx (Node_desc.set_weight cd 1))
        end
      end
    end
    else begin
      (* Degree violation at u: operate on u and an adjacent sibling. *)
      let pd = read_desc ctx p in
      if ixc >= Array.length pd.ptrs || pd.ptrs.(ixc) <> u || pd.leaf then false
      else begin
        let six = if ixc > 0 then ixc - 1 else ixc + 1 in
        if six >= Array.length pd.ptrs then false
        else begin
          let s = pd.ptrs.(six) in
          let (_ : int) = tagged_meta ctx s in
          if not (Ctx.validate ctx) then false
          else begin
            let sd = read_desc ctx s in
            let target = gp + ptrs_off + ixp in
            if sd.weight = 0 then begin
              (* The sibling carries a flag violation: fix it first
                 (AbsorbChild / PropagateTag on s instead of u). *)
              if sd.leaf then false
              else begin
                let comb = Node_desc.absorb ~parent:pd ~ix:six ~child:sd in
                if Node_desc.size comb <= b then Ctx.ias ctx target (write_desc ctx comb)
                else begin
                  let l, r, sep = Node_desc.split comb in
                  let la = write_desc ctx l in
                  let ra = write_desc ctx r in
                  let np =
                    write_desc ctx
                      { weight = 0; leaf = false; keys = [| sep |]; ptrs = [| la; ra |] }
                  in
                  Ctx.ias ctx target np
                end
              end
            end
            else begin
              let ud = read_desc ctx u in
              let li, l, r = if six < ixc then (six, sd, ud) else (ixc, ud, sd) in
              if l.leaf <> r.leaf || li >= Array.length pd.keys then false
              else begin
                let sep = pd.keys.(li) in
                if Node_desc.size l + Node_desc.size r <= b then begin
                  (* AbsorbSibling (Algorithm 4): merge u and s; p is
                     replaced by a copy with one child fewer. *)
                  let m = write_desc ctx (Node_desc.merge_pair ~sep l r) in
                  let p' = Node_desc.replace_pair_with_one pd li ~addr:m in
                  Ctx.ias ctx target (write_desc ctx p')
                end
                else begin
                  (* Distribute: even out u and s. *)
                  let l', r', sep' = Node_desc.distribute_pair ~sep l r in
                  let la = write_desc ctx l' in
                  let ra = write_desc ctx r' in
                  let p' = Node_desc.update_pair pd li ~left:la ~right:ra ~sep:sep' in
                  Ctx.ias ctx target (write_desc ctx p')
                end
              end
            end
          end
        end
      end
    end

  (* Rebalance (Algorithm 5): repeatedly fix the first violation on the
     search path to k until the whole path is violation-free. *)
  and rebalance ctx t k =
    let stop ~p ~meta = violation t ~p ~meta in
    let gp, ixp, p, ixc, u, um = locate_gen ctx t k ~stop in
    if p = null || not (violation t ~p ~meta:um) then Ctx.clear_tag_set ctx
    else begin
      let (_ : bool) = apply_step ctx t gp ixp p ixc u um in
      Ctx.clear_tag_set ctx;
      (* Whether the step succeeded or aborted, re-examine the path. *)
      rebalance ctx t k
    end

  (* ------------------------------------------------------------------ *)
  (* Searches: plain untagged descent. Correct because nodes are only ever
     replaced (removed nodes are frozen), so a traversal wandering through
     a just-replaced subtree follows pointers valid at an overlapping
     time — the same argument as for sequential searches in the LLX/SCX
     tree. *)
  let contains ctx t k =
    let rec down node =
      let meta = Ctx.read ctx node in
      if Node_desc.meta_leaf meta then begin
        let count = Node_desc.meta_count meta in
        let rec scan i =
          if i >= count then false
          else begin
            let key = Ctx.read ctx (node + keys_off + i) in
            if key = k then true else if key > k then false else scan (i + 1)
          end
        in
        scan 0
      end
      else begin
        let _, next = select_child_gen Ctx.read ctx node meta k in
        down next
      end
    in
    down t.sentinel

  (* Plain (untagged, unvalidated) range collect: descend into the
     subtrees overlapping [lo, hi] with plain reads only. Nodes are
     immutable after creation (updates swing parent pointers to fresh
     copies), so every visited node is internally consistent; the pointer
     graph itself may be a mix of epochs, which is why this is only
     atomic under an external quiescence proof (the sharded store's
     per-shard version protocol). [budget] bounds the visit count so a
     doomed attempt racing live updates still terminates. *)
  let scan_plain ctx t ~lo ~hi ~budget =
    let fuel = ref budget in
    let acc = ref [] in
    let rec visit node =
      if !fuel > 0 then begin
        decr fuel;
        let d = read_desc_gen Ctx.read ctx node in
        if d.leaf then
          Array.iter (fun k -> if k >= lo && k <= hi then acc := k :: !acc) d.keys
        else begin
          let first = Node_desc.child_index d lo in
          let last = Node_desc.child_index d hi in
          for i = first to min last (Array.length d.ptrs - 1) do
            visit d.ptrs.(i)
          done
        end
      end
    in
    visit t.sentinel;
    List.sort compare !acc

  (* Atomic range snapshot: visit the subtrees overlapping [lo, hi],
     keeping every visited node tagged, then rely on the per-extension
     validates for atomicity. *)
  let range ctx t ~lo ~hi =
    let max_tags = (Mt_sim.Machine.cfg (Ctx.machine ctx)).Mt_sim.Config.max_tags in
    let lines_per_node = ((node_words + 7) / 8) + 1 in
    Ctx.with_restarts ~site:t.sentinel ctx (fun () ->
        match
          let budget = ref (max_tags / lines_per_node) in
          let acc = ref [] in
          let rec visit node =
            decr budget;
            if !budget <= 0 then raise Exit;
            let (_ : int) = tagged_meta ctx node in
            if not (Ctx.validate ctx) then raise Restart;
            let d = read_desc ctx node in
            if d.leaf then
              Array.iter (fun k -> if k >= lo && k <= hi then acc := k :: !acc) d.keys
            else begin
              let first = Node_desc.child_index d lo in
              let last = Node_desc.child_index d hi in
              for i = first to last do
                visit d.ptrs.(i)
              done
            end
          in
          visit t.sentinel;
          List.sort compare !acc
        with
        | keys ->
            Ctx.clear_tag_set ctx;
            Some keys
        | exception Exit ->
            Ctx.clear_tag_set ctx;
            None)

  let check machine t =
    let peek = Mt_sim.Machine.peek machine in
    let reader addr : Checker.node =
      let meta = peek addr in
      let count = Node_desc.meta_count meta in
      let leaf = Node_desc.meta_leaf meta in
      {
        Checker.weight = Node_desc.meta_weight meta;
        leaf;
        keys = Array.init count (fun i -> peek (addr + keys_off + i));
        children =
          (if leaf then [||] else Array.init (count + 1) (fun i -> peek (addr + ptrs_off + i)));
      }
    in
    Checker.check ~a ~b ~reader ~sentinel:t.sentinel

  let to_list_unsafe machine t =
    let peek = Mt_sim.Machine.peek machine in
    (* Accumulates keys in reverse while walking left-to-right. *)
    let rec walk node acc =
      let meta = peek node in
      let count = Node_desc.meta_count meta in
      let acc = ref acc in
      if Node_desc.meta_leaf meta then
        for i = 0 to count - 1 do
          acc := peek (node + keys_off + i) :: !acc
        done
      else
        for i = 0 to count do
          acc := walk (peek (node + ptrs_off + i)) !acc
        done;
      !acc
    in
    List.rev (walk t.sentinel [])
end

module Make (P : sig
  val a : int
  val b : int
end) =
  Make_gen (struct
    include P

    let validated_insert = true
  end)
