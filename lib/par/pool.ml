let default_jobs () = Domain.recommended_domain_count ()

let map ~jobs f points =
  if jobs <= 0 then invalid_arg "Pool.map: jobs must be positive";
  let items = Array.of_list points in
  let n = Array.length items in
  if jobs = 1 || n <= 1 then List.map f points
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let error : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    (* Contiguous chunks off a shared cursor: cheap enough that points of
       very different cost (1-thread vs 64-thread simulations) still
       load-balance, coarse enough that the cursor is not contended. *)
    let chunk = max 1 (n / (jobs * 4)) in
    let worker () =
      let running = ref true in
      while !running do
        let lo = Atomic.fetch_and_add next chunk in
        if lo >= n || Option.is_some (Atomic.get error) then running := false
        else
          let hi = min n (lo + chunk) in
          try
            for i = lo to hi - 1 do
              results.(i) <- Some (f items.(i))
            done
          with exn ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set error None (Some (exn, bt)));
            running := false
      done
    in
    let helpers = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    (match Atomic.get error with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end
