(** A small domain pool for embarrassingly parallel simulation sweeps.

    The paper's evaluation is a grid of {e independent} simulation points
    (implementation × thread count × seed); each point builds its own
    machine, runtime, PRNGs and observability sink, so points may execute
    concurrently on separate OCaml domains — the one-machine-per-domain
    contract of [mt_sim] (see {!Mt_sim.Runtime}).

    Determinism: [map] never reorders — [results.(i) = f points.(i)] —
    and every point is itself a pure function of its parameters, so the
    output of a parallel sweep is byte-identical to the sequential one.
    Only wall-clock time changes. *)

(** The default worker count: [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [map ~jobs f points] applies [f] to every point, distributing work
    over [jobs] domains (the calling domain participates; [jobs = 1]
    runs plainly in the caller, spawning nothing). Work is handed out in
    contiguous chunks from a shared atomic cursor, so uneven point costs
    load-balance. Results are returned in input order.

    If any [f] raises, the first exception (in completion order) is
    re-raised in the caller after all workers have stopped; remaining
    undispatched chunks are abandoned.

    [f] must not share mutable simulation state across points (each point
    must build its own machine/runtime); [f] may itself print, but output
    from concurrent points interleaves — buffer per point and print after
    [map] returns to keep output deterministic.

    Raises [Invalid_argument] if [jobs <= 0]. *)
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
