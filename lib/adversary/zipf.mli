(** Seed-deterministic Zipfian rank sampler.

    Ranks [0 .. n-1] carry weights proportional to [1/(rank+1)^theta]
    (rank 0 is the hottest), normalized into a cumulative table at
    construction; sampling is one PRNG draw plus a binary search, so a
    sample stream is a pure function of the PRNG seed and the stream of
    draws it shares with other consumers. Rank ordering is exact by
    construction: [pmf t i >= pmf t j] whenever [i <= j]. *)

type t

(** [create ~n ~theta] — [n >= 1] ranks, skew [theta >= 0] ([0] is
    uniform; common hot-key workloads use [0.8 .. 1.5]). *)
val create : n:int -> theta:float -> t

val n : t -> int
val theta : t -> float

(** Probability mass of a rank (exact, from the normalized table). *)
val pmf : t -> int -> float

(** [sample t g] draws a rank in [0, n) — one [Prng.float] consumed. *)
val sample : t -> Mt_sim.Prng.t -> int
