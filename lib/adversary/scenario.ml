open Mt_sim
open Mt_check

(* How hot is the machine right now? The signals the paper worries about:
   failed validations (tag conflicts + spurious), failed primitives, and
   inbound invalidations — summed over all cores. A pure function of the
   simulation state, so adaptive decisions stay deterministic. *)
let heat machine =
  let s = Machine.total_stats machine in
  s.Stats.validate_failures + s.Stats.cas_failures + s.Stats.vas_failures
  + s.Stats.ias_failures + s.Stats.invalidations_received

(* Resample the heat every [heat_window] stalls (a full stats sum walks
   every core, so not per stall), and turn the delta into a straggler
   probability multiplier: m = 1 + min 7 (delta/4). A quiet machine
   injects at the base rate; a contention storm injects up to 8x more —
   the CoreSim-style "kick them while they're down" conditional. *)
let heat_window = 64

let multiplier_of_delta d = 1 + min 7 (d / 4)

let make_policy (spec : Inject.spec) ~machine ~seed ~max_delay =
  let base = Runtime.random_policy ~max_delay ~seed () in
  if spec.squeeze = None && spec.straggler = None then base
  else begin
    let g = Prng.create ~seed:(seed lxor 0xADA9) in
    let restore = Machine.max_tags machine in
    let squeeze_state = ref `Armed in
    let stalls = ref 0 in
    let last_heat = ref 0 in
    let mult = ref 1 in
    (* Each fault instant is marked on the timeline (core 0 — the fault is
       machine-global) so a telemetry window or trace can attribute the
       abort spike to the pulse that caused it. *)
    let mark ~now label =
      let obs = Machine.obs machine in
      if Mt_obs.Obs.enabled obs then
        Mt_obs.Obs.emit obs ~core:0 ~time:now (Mt_obs.Obs.Fault { label })
    in
    Runtime.decorate_policy base
      ~name:
        (Printf.sprintf "adversary(seed=%d,%s)" seed (Inject.to_string spec))
      ~extra_delay:(fun ~tid:_ ~now ~base ->
        (match spec.squeeze with
        | Some { at; max_tags; hold } -> (
            match !squeeze_state with
            | `Armed when now >= at ->
                Machine.set_max_tags machine max_tags;
                mark ~now (Printf.sprintf "squeeze(max_tags=%d)" max_tags);
                squeeze_state := `Squeezed
            | `Squeezed when now >= at + hold ->
                Machine.set_max_tags machine restore;
                mark ~now "squeeze-restore";
                squeeze_state := `Done
            | _ -> ())
        | None -> ());
        let extra =
          match spec.straggler with
          | None -> 0
          | Some { prob; pause } ->
              incr stalls;
              if spec.adaptive && !stalls mod heat_window = 0 then begin
                let h = heat machine in
                mult := multiplier_of_delta (h - !last_heat);
                last_heat := h
              end;
              let p =
                if spec.adaptive then
                  Float.min 0.9 (prob *. float_of_int !mult)
                else prob
              in
              if Prng.float g < p then pause else 0
        in
        base + extra)
  end

let make_machine (spec : Inject.spec) ~obs ~num_cores =
  let cfg = Config.default ~num_cores () in
  let cfg =
    match spec.geometry with
    | None -> cfg
    | Some { l1_sets_log2; l1_ways; l2_sets_log2; l2_ways } ->
        { cfg with l1_sets_log2; l1_ways; l2_sets_log2; l2_ways }
  in
  Machine.create ~obs cfg

let draw_key (spec : Inject.spec) ~range =
  match spec.distribution with
  | Uniform -> Explore.default_hooks.draw_key
  | Zipfian { theta } ->
      (* rank = key: the hottest keys cluster at the low end of the key
         space (the front of a list, the leftmost leaves of a tree). *)
      let z = Zipf.create ~n:range ~theta in
      fun ~prng ~nth:_ ~range:_ -> Zipf.sample z prng
  | Flash_crowd { hot; period; duty } ->
      fun ~prng ~nth ~range ->
        if nth mod period < duty then
          let phase = nth / period in
          ((phase * 7919) + Prng.int prng (min hot range)) mod range
        else Prng.int prng range
  | Shard_hot { shards; theta } ->
      (* Zipfian rank picks the shard (the store routes key k to shard
         k mod shards, so rank 0 heats shard 0), uniform slot picks the
         key within it: key = rank + shards * slot stays < range because
         slot < range / shards. *)
      let shards = max 1 (min shards range) in
      let z = Zipf.create ~n:shards ~theta in
      let slots = range / shards in
      fun ~prng ~nth:_ ~range:_ ->
        Zipf.sample z prng + (shards * Prng.int prng slots)

let hooks (spec : Inject.spec) ~range : Explore.hooks =
  if Inject.is_none spec then Explore.default_hooks
  else
    {
      Explore.make_machine = make_machine spec;
      make_policy = make_policy spec;
      draw_key = draw_key spec ~range;
    }

let run ?obs (module S : Mt_list.Set_intf.SET) ~params ~spec ~seed =
  Explore.run ?obs
    ~hooks:(hooks spec ~range:params.Explore.range)
    (module S) ~params ~seed

let sweep ?jobs ?start (module S : Mt_list.Set_intf.SET) ~params ~spec_of
    ~seeds =
  Explore.sweep_with ?jobs ?start
    ~run:(fun ~seed -> run (module S) ~params ~spec:(spec_of seed) ~seed)
    ~seeds ()
