(** Automatic shrinking of failing scenarios to minimal repros
    (delta-debugging over the scenario configuration space).

    Given a failing configuration — workload parameters, fault spec, seed
    — the shrinker greedily searches for a strictly smaller configuration
    that still fails, one dimension at a time: thread count (smallest
    first), ops per thread, key range, prefill, the yield-injection bound,
    each injected fault component (squeeze, straggler, distribution,
    geometry, adaptivity — dropped one at a time), and finally the seed.
    Numeric dimensions probe an ascending ladder (1, 2, 4, …, cur-1) so
    the accepted value is the smallest failing one at geometric
    resolution; passes repeat to a fixpoint, so the final config is
    stable under re-shrinking ({e idempotent}).

    A candidate is accepted iff some seed in [0, seed_budget) makes it
    fail (any violation counts — shrinking chases {e a} failure, not
    necessarily the original one); the first failing seed becomes the
    candidate's seed, so seeds end up small too. Every probe is a
    deterministic {!Scenario.run}, so the whole shrink — and the final
    minimal repro — is a pure function of the inputs and replays
    byte-identically. *)

type config = {
  params : Mt_check.Explore.params;
  spec : Inject.spec;
  seed : int;
}

type result = {
  config : config;  (** the minimal failing configuration *)
  outcome : Mt_check.Explore.outcome;  (** its (still failing) run *)
  runs : int;  (** total candidate executions spent *)
  initial : config;  (** what shrinking started from *)
}

val pp_config : Format.formatter -> config -> unit

(** [shrink ?seed_budget (module S) config] — delta-debug [config] (which
    must fail; raises [Invalid_argument] otherwise) to a minimal failing
    configuration. [seed_budget] (default 12) bounds the per-candidate
    seed search. *)
val shrink :
  ?seed_budget:int ->
  (module Mt_list.Set_intf.SET) ->
  config ->
  result
