open Mt_check

type config = { params : Explore.params; spec : Inject.spec; seed : int }

type result = {
  config : config;
  outcome : Explore.outcome;
  runs : int;
  initial : config;
}

let pp_config ppf (c : config) =
  Format.fprintf ppf
    "threads=%d ops=%d range=%d prefill=%d max-delay=%d seed=%d spec=%s"
    c.params.Explore.threads c.params.ops c.params.range c.params.prefill
    c.params.max_delay c.seed
    (Inject.to_string c.spec)

let run_config (module S : Mt_list.Set_intf.SET) (c : config) =
  Scenario.run (module S) ~params:c.params ~spec:c.spec ~seed:c.seed

(* Ascending candidate values strictly below [cur]: [lo], powers of two,
   and [cur - 1] — geometric probing finds the scale cheaply, the final
   [cur - 1] lets the fixpoint loop polish linearly. *)
let ladder ~lo cur =
  let rec geo acc v = if v >= cur then acc else geo (v :: acc) (v * 2) in
  let cands = geo [] (max 1 lo) in
  let cands = if lo = 0 then cands @ [ 0 ] else cands in
  let cands = if cur - 1 >= lo then (cur - 1) :: cands else cands in
  List.sort_uniq compare (List.filter (fun v -> v >= lo && v < cur) cands)

let shrink ?(seed_budget = 12) (module S : Mt_list.Set_intf.SET)
    (initial : config) =
  let runs = ref 0 in
  let exec c =
    incr runs;
    run_config (module S) c
  in
  let first = exec initial in
  (match first.verdict with
  | Error _ -> ()
  | Ok () -> invalid_arg "Shrink.shrink: the initial configuration does not fail");
  let best = ref initial and best_out = ref first in
  (* A candidate (params, spec) is accepted iff some seed in
     [0, seed_budget) fails; the first failing seed becomes its seed.
     Searching a fresh ascending window (rather than keeping the current
     seed) is what lets a reduction that perturbs every schedule still
     land, and it minimizes the seed as a side effect. *)
  let try_reduce params spec =
    let rec go seed =
      if seed >= seed_budget then false
      else begin
        let c = { params; spec; seed } in
        let o = exec c in
        match o.verdict with
        | Error _ ->
            best := c;
            best_out := o;
            true
        | Ok () -> go (seed + 1)
      end
    in
    go 0
  in
  (* One pass of every reduction dimension; true if anything shrank.
     Reductions only ever replace the current best with a strictly
     smaller configuration (fewer threads/ops/keys/faults or a smaller
     seed), so the fixpoint loop terminates and the result is stable
     under re-shrinking (idempotence). *)
  let pass () =
    let changed = ref false in
    let reduce params spec = if try_reduce params spec then changed := true in
    (* threads, smallest first *)
    (let cur = !best.params.Explore.threads in
     ignore
       (List.exists
          (fun t -> try_reduce { !best.params with Explore.threads = t } !best.spec
                    && (changed := true; true))
          (List.init (cur - 1) (fun i -> i + 1))));
    (* ops per thread *)
    (let cur = !best.params.Explore.ops in
     ignore
       (List.exists
          (fun v -> try_reduce { !best.params with Explore.ops = v } !best.spec
                    && (changed := true; true))
          (ladder ~lo:1 cur)));
    (* key range *)
    (let cur = !best.params.Explore.range in
     ignore
       (List.exists
          (fun v -> try_reduce { !best.params with Explore.range = v } !best.spec
                    && (changed := true; true))
          (ladder ~lo:1 cur)));
    (* prefill *)
    (let cur = !best.params.Explore.prefill in
     ignore
       (List.exists
          (fun v -> try_reduce { !best.params with Explore.prefill = v } !best.spec
                    && (changed := true; true))
          (ladder ~lo:0 cur)));
    (* yield-injection bound (schedule perturbation sites) *)
    (let cur = !best.params.Explore.max_delay in
     ignore
       (List.exists
          (fun v -> try_reduce { !best.params with Explore.max_delay = v } !best.spec
                    && (changed := true; true))
          (ladder ~lo:0 cur)));
    (* injected faults, one component at a time *)
    (let s = !best.spec in
     if s.Inject.squeeze <> None then
       reduce !best.params { s with Inject.squeeze = None });
    (let s = !best.spec in
     if s.Inject.straggler <> None then
       reduce !best.params { s with Inject.straggler = None });
    (let s = !best.spec in
     if s.Inject.distribution <> Inject.Uniform then
       reduce !best.params { s with Inject.distribution = Inject.Uniform });
    (let s = !best.spec in
     if s.Inject.geometry <> None then
       reduce !best.params { s with Inject.geometry = None });
    (let s = !best.spec in
     if s.Inject.adaptive then reduce !best.params { s with Inject.adaptive = false });
    (* seed, in case no dimension above moved it into [0, seed_budget) *)
    (let cur = !best.seed in
     let rec go sd =
       if sd >= min cur seed_budget then ()
       else begin
         let c = { !best with seed = sd } in
         let o = exec c in
         match o.verdict with
         | Error _ ->
             best := c;
             best_out := o;
             changed := true
         | Ok () -> go (sd + 1)
       end
     in
     go 0);
    !changed
  in
  while pass () do
    ()
  done;
  { config = !best; outcome = !best_out; runs = !runs; initial }
