(** Fault-injection plans (what the adversary does to one run).

    A {!spec} names the faults to inject — everything else (when exactly
    a straggler pauses, which keys a skewed draw picks) comes from PRNG
    streams derived from the run's seed, so an injected run is a pure
    function of [(spec, params, seed)] and replays byte-identically.
    {!Scenario} arms a spec against a concrete machine/policy/workload. *)

type distribution =
  | Uniform
  | Zipfian of { theta : float }
      (** hot-key skew: rank [r] drawn with mass [∝ 1/(r+1)^theta], rank =
          key (rank 0 is the hottest key). *)
  | Flash_crowd of { hot : int; period : int; duty : int }
      (** every [period] ops (per thread), the first [duty] ops draw from
          a [hot]-key window that rotates each period — a moving
          flash crowd. Remaining ops draw uniformly. *)
  | Shard_hot of { shards : int; theta : float }
      (** cross-shard skew for the sharded store: the Zipfian rank (mass
          [∝ 1/(r+1)^theta]) picks the {e shard} (shard of key [k] is
          [k mod shards], so rank 0 heats shard 0), and a uniform draw
          picks the key within it. Syntax: ["dist=shard,SHARDS,THETA"]. *)

type squeeze = {
  at : int;  (** trigger: first stall whose fiber clock reaches [at] *)
  max_tags : int;  (** the squeezed Max_Tags ceiling *)
  hold : int;  (** cycles until the original ceiling is restored *)
}
(** A tag-capacity pressure pulse: mid-run, every core's Max_Tags drops to
    [max_tags] for [hold] cycles, then is restored. Pulsed rather than
    permanent so retry loops that cannot fit their window under the
    squeezed ceiling always drain once the pulse ends. *)

type straggler = { prob : float; pause : int }
(** Straggler cores: at each stall, with probability [prob] (scaled up by
    the load-adaptive rule when enabled), the stalling fiber's clock is
    paused for an extra [pause] cycles. *)

type geometry = {
  l1_sets_log2 : int;
  l1_ways : int;
  l2_sets_log2 : int;
  l2_ways : int;
}

type spec = {
  squeeze : squeeze option;
  straggler : straggler option;
  distribution : distribution;
  geometry : geometry option;  (** cache-geometry perturbation at build time *)
  adaptive : bool;
      (** load-adaptive injection: scale straggler probability by the
          observed abort/invalidation heat (see {!Scenario}). *)
}

(** No faults: scenarios run byte-identically to {!Mt_check.Explore}. *)
val none : spec

val is_none : spec -> bool

(** The moderate small-cache perturbation {!of_seed} uses. *)
val small_geometry : geometry

(** [of_seed ~seed] — the seed's adversary plan, a pure function of
    [seed] drawn from a private PRNG stream: ~1/2 of seeds squeeze
    Max_Tags (floor in {4,8,16}, pulsed), ~1/2 run stragglers, ~2/3 skew
    keys (Zipfian or flash crowd), ~1/3 shrink the caches; adaptivity is
    always on. *)
val of_seed : seed:int -> spec

(** Compact round-tripping syntax ([to_string >> of_string] is the
    identity), e.g. ["squeeze=832,8,3000;straggler=0.05,2000;dist=zipf,1.1;adaptive"];
    {!none} prints as ["plain"]. This is how a shrunk spec — which no
    seed generates — is named on the [memtag_fuzz --spec] command line. *)
val to_string : spec -> string

val of_string : string -> (spec, string) result
val pp : Format.formatter -> spec -> unit
