type t = { theta : float; cdf : float array }

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be non-negative";
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i wi ->
      acc := !acc +. (wi /. total);
      cdf.(i) <- !acc)
    w;
  (* Guard against the running sum landing epsilon short of 1. *)
  cdf.(n - 1) <- 1.0;
  { theta; cdf }

let n t = Array.length t.cdf
let theta t = t.theta

let pmf t i =
  if i < 0 || i >= n t then invalid_arg "Zipf.pmf: rank out of range";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)

(* Inverse-CDF sampling: the smallest rank whose cumulative mass exceeds
   the draw. One PRNG draw per sample, so samples interleave with other
   consumers of the same stream deterministically. *)
let sample t g =
  let u = Mt_sim.Prng.float g in
  let lo = ref 0 and hi = ref (n t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
