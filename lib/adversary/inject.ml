open Mt_sim

type distribution =
  | Uniform
  | Zipfian of { theta : float }
  | Flash_crowd of { hot : int; period : int; duty : int }
  | Shard_hot of { shards : int; theta : float }

type squeeze = { at : int; max_tags : int; hold : int }
type straggler = { prob : float; pause : int }

type geometry = {
  l1_sets_log2 : int;
  l1_ways : int;
  l2_sets_log2 : int;
  l2_ways : int;
}

type spec = {
  squeeze : squeeze option;
  straggler : straggler option;
  distribution : distribution;
  geometry : geometry option;
  adaptive : bool;
}

let none =
  {
    squeeze = None;
    straggler = None;
    distribution = Uniform;
    geometry = None;
    adaptive = false;
  }

let is_none s = s = none

(* The one cache-geometry perturbation we inject: private caches an order
   of magnitude smaller than Config.default (32-line 4-way L1, 512-line
   8-way L2), small enough that capacity evictions kill tags under any
   real working set, large enough that a hand-over-hand window still fits
   one set's associativity (no deterministic livelock). *)
let small_geometry =
  { l1_sets_log2 = 3; l1_ways = 4; l2_sets_log2 = 6; l2_ways = 8 }

(* The adversary plan for a seed — a pure function of the seed, drawn
   from a private PRNG stream (independent of the schedule and thread
   streams). Roughly half the seeds squeeze Max_Tags mid-run, half run
   stragglers, two thirds skew the key distribution, a third shrink the
   caches; all combinations occur. Squeeze floors ({4,8,16}) are pulses
   ([hold] cycles, then restored) so tag-starved retry loops always drain. *)
let of_seed ~seed =
  let g = Prng.create ~seed:(seed lxor 0x0FA017) in
  let squeeze =
    if Prng.bool g then
      Some
        {
          at = 500 + Prng.int g 4000;
          max_tags = [| 4; 8; 16 |].(Prng.int g 3);
          hold = 1000 + Prng.int g 6000;
        }
    else None
  in
  let straggler =
    if Prng.bool g then
      Some
        {
          prob = [| 0.02; 0.05; 0.1 |].(Prng.int g 3);
          pause = [| 500; 2000; 8000 |].(Prng.int g 3);
        }
    else None
  in
  let distribution =
    match Prng.int g 3 with
    | 0 -> Uniform
    | 1 -> Zipfian { theta = [| 0.8; 1.1; 1.5 |].(Prng.int g 3) }
    | _ ->
        Flash_crowd
          {
            hot = 1 + Prng.int g 3;
            period = 8 + Prng.int g 8;
            duty = 4 + Prng.int g 4;
          }
  in
  let geometry = if Prng.int g 3 = 0 then Some small_geometry else None in
  { squeeze; straggler; distribution; geometry; adaptive = true }

(* ------------------------------------------------------------------ *)
(* Compact round-tripping syntax, so a shrunk spec (which no seed
   generates) can still be named on the memtag_fuzz command line. *)

let to_string s =
  if is_none s then "plain"
  else begin
    let b = Buffer.create 64 in
    let sep () = if Buffer.length b > 0 then Buffer.add_char b ';' in
    (match s.squeeze with
    | Some { at; max_tags; hold } ->
        sep ();
        Buffer.add_string b (Printf.sprintf "squeeze=%d,%d,%d" at max_tags hold)
    | None -> ());
    (match s.straggler with
    | Some { prob; pause } ->
        sep ();
        Buffer.add_string b (Printf.sprintf "straggler=%g,%d" prob pause)
    | None -> ());
    (match s.distribution with
    | Uniform -> ()
    | Zipfian { theta } ->
        sep ();
        Buffer.add_string b (Printf.sprintf "dist=zipf,%g" theta)
    | Flash_crowd { hot; period; duty } ->
        sep ();
        Buffer.add_string b (Printf.sprintf "dist=flash,%d,%d,%d" hot period duty)
    | Shard_hot { shards; theta } ->
        sep ();
        Buffer.add_string b (Printf.sprintf "dist=shard,%d,%g" shards theta));
    (match s.geometry with
    | Some { l1_sets_log2; l1_ways; l2_sets_log2; l2_ways } ->
        sep ();
        Buffer.add_string b
          (Printf.sprintf "geom=%d,%d,%d,%d" l1_sets_log2 l1_ways l2_sets_log2
             l2_ways)
    | None -> ());
    if s.adaptive then begin
      sep ();
      Buffer.add_string b "adaptive"
    end;
    Buffer.contents b
  end

let of_string str =
  let fail fmt = Printf.ksprintf (fun m -> Error ("bad fault spec: " ^ m)) fmt in
  if str = "" || str = "plain" then Ok none
  else begin
    let parse_group acc group =
      match acc with
      | Error _ as e -> e
      | Ok acc -> (
          let key, args =
            match String.index_opt group '=' with
            | None -> (group, [])
            | Some i ->
                ( String.sub group 0 i,
                  String.split_on_char ','
                    (String.sub group (i + 1) (String.length group - i - 1)) )
          in
          let ints l = try Some (List.map int_of_string l) with _ -> None in
          match (key, args) with
          | "squeeze", l -> (
              match ints l with
              | Some [ at; max_tags; hold ] when at >= 0 && max_tags > 0 && hold > 0
                ->
                  Ok { acc with squeeze = Some { at; max_tags; hold } }
              | _ -> fail "squeeze=AT,MAX,HOLD expected in %S" group)
          | "straggler", [ p; pause ] -> (
              match (float_of_string_opt p, int_of_string_opt pause) with
              | Some prob, Some pause when prob >= 0.0 && prob <= 1.0 && pause >= 0
                ->
                  Ok { acc with straggler = Some { prob; pause } }
              | _ -> fail "straggler=PROB,PAUSE expected in %S" group)
          | "dist", [ "uniform" ] -> Ok { acc with distribution = Uniform }
          | "dist", [ "zipf"; th ] -> (
              match float_of_string_opt th with
              | Some theta when theta >= 0.0 ->
                  Ok { acc with distribution = Zipfian { theta } }
              | _ -> fail "dist=zipf,THETA expected in %S" group)
          | "dist", [ "flash"; h; p; d ] -> (
              match ints [ h; p; d ] with
              | Some [ hot; period; duty ] when hot > 0 && period > 0 && duty > 0
                ->
                  Ok { acc with distribution = Flash_crowd { hot; period; duty } }
              | _ -> fail "dist=flash,HOT,PERIOD,DUTY expected in %S" group)
          | "dist", [ "shard"; s; th ] -> (
              match (int_of_string_opt s, float_of_string_opt th) with
              | Some shards, Some theta when shards > 0 && theta >= 0.0 ->
                  Ok { acc with distribution = Shard_hot { shards; theta } }
              | _ -> fail "dist=shard,SHARDS,THETA expected in %S" group)
          | "geom", l -> (
              match ints l with
              | Some [ l1_sets_log2; l1_ways; l2_sets_log2; l2_ways ]
                when l1_sets_log2 >= 0 && l1_ways > 0 && l2_sets_log2 >= 0
                     && l2_ways > 0 ->
                  Ok
                    {
                      acc with
                      geometry =
                        Some { l1_sets_log2; l1_ways; l2_sets_log2; l2_ways };
                    }
              | _ -> fail "geom=L1SETS_LOG2,L1WAYS,L2SETS_LOG2,L2WAYS in %S" group)
          | "adaptive", [] -> Ok { acc with adaptive = true }
          | _ -> fail "unknown group %S" group)
    in
    List.fold_left parse_group (Ok none) (String.split_on_char ';' str)
  end

let pp ppf s = Format.pp_print_string ppf (to_string s)
