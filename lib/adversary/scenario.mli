(** Arming a fault plan against a run (the scenario engine's core).

    A scenario = {!Mt_check.Explore} workload + an {!Inject.spec} threaded
    through the simulator's hooks:

    - {b machine}: cache-geometry perturbation at build time;
    - {b policy}: a decorator over {!Mt_sim.Runtime.random_policy} that,
      at each stall, (a) fires/restores the Max_Tags squeeze pulse when
      the fiber clock crosses its trigger, and (b) pauses the stalling
      fiber for the straggler's extra cycles with the current injection
      probability;
    - {b keys}: Zipfian or flash-crowd draws instead of uniform.

    {b Load-adaptive rule}: every 64 stalls the engine sums the machine's
    failed validations/CAS/VAS/IAS and inbound invalidations; the delta
    [d] since the previous sample scales the straggler probability by
    [1 + min 7 (d/4)] (capped at 0.9) — faults concentrate exactly when
    the mechanisms under test are already hot.

    {b Determinism contract}: injection decisions draw from a private
    PRNG stream derived from the run seed, are made in scheduler order,
    and read only simulation state — so an injected run is a pure
    function of [(spec, params, seed)], replaying byte-identically, and
    tracing still changes nothing. *)

(** [run ?obs (module S) ~params ~spec ~seed] — one injected, checked
    run. With [spec = Inject.none] this is byte-identical to
    {!Mt_check.Explore.run}. *)
val run :
  ?obs:Mt_obs.Obs.t ->
  (module Mt_list.Set_intf.SET) ->
  params:Mt_check.Explore.params ->
  spec:Inject.spec ->
  seed:int ->
  Mt_check.Explore.outcome

(** [sweep ?jobs ?start (module S) ~params ~spec_of ~seeds] — the
    first-failure sweep over seeds [start .. start+seeds-1], each run
    injected with [spec_of seed] (use {!Inject.of_seed} for the standard
    adversary, [Fun.const spec] to pin one plan). Inherits
    {!Mt_check.Explore.sweep_with}'s jobs-invariance: the reported
    failure is the globally smallest failing seed for any [jobs]. *)
val sweep :
  ?jobs:int ->
  ?start:int ->
  (module Mt_list.Set_intf.SET) ->
  params:Mt_check.Explore.params ->
  spec_of:(int -> Inject.spec) ->
  seeds:int ->
  int * Mt_check.Explore.outcome option

(** The armed hook set itself (exposed for reuse; [range] is the key
    range the distribution covers). [Inject.none] yields
    {!Mt_check.Explore.default_hooks} exactly. *)
val hooks : Inject.spec -> range:int -> Mt_check.Explore.hooks

(** The armed policy decorator alone — for driving fault pulses under
    the closed-loop {!Mt_workload.Driver} or the serve layer (pass as
    [?make_policy] with a closure supplying [seed]/[max_delay]). The
    squeeze pulse fires once per policy value, and every fault instant
    is emitted as an [Obs.Fault] timeline mark on the machine's sink.
    [max_delay:0] keeps the base schedule undisturbed. *)
val make_policy :
  Inject.spec ->
  machine:Mt_sim.Machine.t ->
  seed:int ->
  max_delay:int ->
  Mt_sim.Runtime.policy
