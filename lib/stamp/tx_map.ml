open Mt_core

module Make (S : Mt_stm.Stm_intf.S) = struct
  (* Node layout: [0] key, [1] value, [2] left, [3] right. *)
  let key_off = 0
  let val_off = 1
  let left_off = 2
  let right_off = 3
  let node_words = 4

  (* The map handle is a one-word cell holding the root pointer. *)
  type t = { root_cell : Ctx.addr }

  let null = Mt_sim.Memory.null

  let create ctx = { root_cell = Ctx.alloc ~label:"txmap-root" ctx ~words:1 }

  let alloc_node tx k v =
    let n = Ctx.alloc ~label:"txmap-node" (S.ctx tx) ~words:node_words in
    S.write tx (n + key_off) k;
    S.write tx (n + val_off) v;
    S.write tx (n + left_off) null;
    S.write tx (n + right_off) null;
    n

  (* Returns the address of the link (cell or child slot) that points (or
     would point) to the node with key [k], plus that node (or null). *)
  let rec locate_link tx link k =
    let node = S.read tx link in
    if node = null then (link, null)
    else begin
      let nk = S.read tx (node + key_off) in
      if k = nk then (link, node)
      else if k < nk then locate_link tx (node + left_off) k
      else locate_link tx (node + right_off) k
    end

  let find tx t k =
    let _, node = locate_link tx t.root_cell k in
    if node = null then None else Some (S.read tx (node + val_off))

  let insert tx t k v =
    let link, node = locate_link tx t.root_cell k in
    if node <> null then false
    else begin
      S.write tx link (alloc_node tx k v);
      true
    end

  let update tx t k v =
    let _, node = locate_link tx t.root_cell k in
    if node = null then false
    else begin
      S.write tx (node + val_off) v;
      true
    end

  let remove tx t k =
    let link, node = locate_link tx t.root_cell k in
    if node = null then None
    else begin
      let v = S.read tx (node + val_off) in
      let l = S.read tx (node + left_off) in
      let r = S.read tx (node + right_off) in
      (if l = null then S.write tx link r
       else if r = null then S.write tx link l
       else begin
         (* Two children: splice in the successor (leftmost of the right
            subtree) by copying its key/value here and unlinking it. *)
         let rec leftmost link node =
           let l = S.read tx (node + left_off) in
           if l = null then (link, node) else leftmost (node + left_off) l
         in
         let slink, succ = leftmost (node + right_off) r in
         S.write tx (node + key_off) (S.read tx (succ + key_off));
         S.write tx (node + val_off) (S.read tx (succ + val_off));
         S.write tx slink (S.read tx (succ + right_off))
       end);
      Some v
    end

  let fold tx t ~init ~f =
    let rec go node acc =
      if node = null then acc
      else begin
        let acc = go (S.read tx (node + left_off)) acc in
        let acc = f acc (S.read tx (node + key_off)) (S.read tx (node + val_off)) in
        go (S.read tx (node + right_off)) acc
      end
    in
    go (S.read tx t.root_cell) init

  (* Plain (non-transactional, unvalidated) in-order walk collecting keys
     in [lo, hi]. NOrec writes back plain values at commit, so a quiesced
     tree reads cleanly with raw [Ctx.read]; a racing commit can expose a
     mixed-epoch pointer graph, which is why this is only atomic under an
     external quiescence proof (the sharded store's per-shard version
     protocol). [budget] bounds the visit count so a doomed walk racing
     live updates still terminates. *)
  let scan_keys_plain ctx t ~lo ~hi ~budget =
    let fuel = ref budget in
    let acc = ref [] in
    let rec go node =
      if node <> null && !fuel > 0 then begin
        decr fuel;
        let k = Ctx.read ctx (node + key_off) in
        if k > lo then go (Ctx.read ctx (node + left_off));
        if k >= lo && k <= hi then acc := k :: !acc;
        if k < hi then go (Ctx.read ctx (node + right_off))
      end
    in
    go (Ctx.read ctx t.root_cell);
    List.sort compare !acc

  let to_alist_unsafe machine t =
    let peek = Mt_sim.Machine.peek machine in
    let rec go node acc =
      if node = null then acc
      else begin
        let acc = go (peek (node + right_off)) acc in
        let acc = (peek (node + key_off), peek (node + val_off)) :: acc in
        go (peek (node + left_off)) acc
      end
    in
    go (peek t.root_cell) []
end
