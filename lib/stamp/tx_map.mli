(** A transactional ordered map in simulated memory (key -> value ints),
    accessed exclusively through an STM's read/write primitives.

    STAMP's vacation uses red-black trees for its relation tables; with the
    uniformly random ids the benchmark generates, an unbalanced BST has the
    same expected depth profile (O(log n)) and identical transactional
    footprint character, so we use one (documented in DESIGN.md). *)

module Make (S : Mt_stm.Stm_intf.S) : sig
  type t

  (** Allocate an empty map (call outside or inside a transaction). *)
  val create : Mt_core.Ctx.t -> t

  val find : S.tx -> t -> int -> int option

  (** [insert tx t k v] — false if [k] already bound. *)
  val insert : S.tx -> t -> int -> int -> bool

  (** [update tx t k v] — false if [k] unbound. *)
  val update : S.tx -> t -> int -> int -> bool

  (** [remove tx t k] — the removed value, if any. *)
  val remove : S.tx -> t -> int -> int option

  (** In-transaction fold over all bindings in ascending key order. *)
  val fold : S.tx -> t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

  (** [scan_keys_plain ctx t ~lo ~hi ~budget] — plain (non-transactional)
      in-order walk collecting keys in [\[lo, hi\]], visiting at most
      [budget] nodes. {e Not} atomic on its own: callers must prove
      quiescence externally (the sharded store's per-shard version
      protocol does). *)
  val scan_keys_plain :
    Mt_core.Ctx.t -> t -> lo:int -> hi:int -> budget:int -> int list

  (** Timing-free contents for test oracles (quiescent machine only). *)
  val to_alist_unsafe : Mt_sim.Machine.t -> t -> (int * int) list
end
