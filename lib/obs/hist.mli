(** Log-bucketed histograms of non-negative integers (simulated cycles).

    Values below 16 are counted exactly; larger values land in one of 8
    sub-buckets per power of two, so any reported quantile is within 12.5%
    of the true sample (and exact at the recorded min/max). Adding a sample
    is O(1) with no allocation; the histogram is deterministic — same
    samples, same answers. *)

type t

val create : unit -> t
val clear : t -> unit

(** [add t v] records one sample; negative values clamp to 0. *)
val add : t -> int -> unit

val count : t -> int
val min_value : t -> int

(** Largest sample recorded (0 when empty). *)
val max_value : t -> int

val mean : t -> float

(** [percentile t p] for [p] in [0, 100]: the value at rank
    ceil(p/100*n), subject to bucket quantisation; [p >= 100] returns the
    exact max; an empty histogram returns 0. *)
val percentile : t -> float -> int

(** [merge ~into src] adds every sample of [src] into [into]. *)
val merge : into:t -> t -> unit

(** Summary object: count/min/p50/p90/p99/p999/max/mean/sum ("p999" is
    the 99.9th percentile — tail-latency reporting for the service
    layer; like every quantile it is subject to the 12.5% bucket
    quantisation bound above). *)
val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit

(**/**)

(* Bucket math, exposed for the unit tests. *)
val bucket_of : int -> int
val bucket_low : int -> int
