(** Chrome trace-event JSON export (load the file in Perfetto via
    [ui.perfetto.dev] or [chrome://tracing]) and the textual hot-line
    contention report.

    One track per simulated core; simulated cycles are written 1:1 as the
    format's microsecond timestamps. Export is a pure function of the
    recorded event stream: two identical runs produce byte-identical
    files. *)

(** [to_json ?num_cores obs] — the full trace document. [num_cores] forces
    thread-name metadata for cores that recorded no events. *)
val to_json : ?num_cores:int -> Obs.t -> Json.t

val to_string : ?num_cores:int -> Obs.t -> string

(** [write_file ?num_cores obs path] writes the trace JSON to [path]. *)
val write_file : ?num_cores:int -> Obs.t -> string -> unit

(** Top contended lines as JSON (line, invalidations, downgrades, owner). *)
val hot_lines_json : ?top:int -> Obs.t -> Json.t

(** Human-readable top-N contended-line table with ownership labels. *)
val pp_hot_lines : ?top:int -> Format.formatter -> Obs.t -> unit
