(* Windowed time-series telemetry: folds the Obs event stream (via an Obs
   tap) plus periodic machine-counter snapshots (via a scheduler tick)
   into fixed-width sim-clock windows.

   Determinism contract: everything here is a pure function of the fed
   events and snapshots, which are themselves pure functions of the run's
   program and seed. A series never reads the rings — it consumes the
   live emission stream — so its output is byte-identical whether the
   sink retains a trace or not, and for any --jobs value (one series per
   point, like one sink per point). *)

(* Cumulative machine counters, snapshotted at window boundaries. The
   consumer (Mt_sim.Stats) converts its own counter record into this
   shape; [heat] is the adversary's contention temperature (failed
   validations + failed primitives + inbound invalidations). *)
type counters = {
  c_l1_hits : int;
  c_l1_misses : int;
  c_coherence_msgs : int;
  c_invalidations : int;
  c_writebacks : int;
  c_tag_overflows : int;
  c_heat : int;
}

let zero_counters =
  {
    c_l1_hits = 0;
    c_l1_misses = 0;
    c_coherence_msgs = 0;
    c_invalidations = 0;
    c_writebacks = 0;
    c_tag_overflows = 0;
    c_heat = 0;
  }

let sub_counters a b =
  {
    c_l1_hits = a.c_l1_hits - b.c_l1_hits;
    c_l1_misses = a.c_l1_misses - b.c_l1_misses;
    c_coherence_msgs = a.c_coherence_msgs - b.c_coherence_msgs;
    c_invalidations = a.c_invalidations - b.c_invalidations;
    c_writebacks = a.c_writebacks - b.c_writebacks;
    c_tag_overflows = a.c_tag_overflows - b.c_tag_overflows;
    c_heat = a.c_heat - b.c_heat;
  }

let add_counters a b =
  {
    c_l1_hits = a.c_l1_hits + b.c_l1_hits;
    c_l1_misses = a.c_l1_misses + b.c_l1_misses;
    c_coherence_msgs = a.c_coherence_msgs + b.c_coherence_msgs;
    c_invalidations = a.c_invalidations + b.c_invalidations;
    c_writebacks = a.c_writebacks + b.c_writebacks;
    c_tag_overflows = a.c_tag_overflows + b.c_tag_overflows;
    c_heat = a.c_heat + b.c_heat;
  }

type window = {
  w_t0 : int;
  mutable w_ops : int;
  mutable w_validate_real : int;
  mutable w_validate_spurious : int;
  mutable w_vas_fail : int;
  mutable w_ias_fail : int;
  mutable w_stm_aborts : int;
  mutable w_tag_adds : int;
  mutable w_tag_removes : int;
  mutable w_tag_evict_capacity : int;
  mutable w_tag_evict_conflict : int;
  mutable w_tag_occupancy_end : int;
  mutable w_occ_seen : bool;  (* did any tag event land in this window? *)
  mutable w_enqueues : int;
  mutable w_dequeues : int;
  mutable w_retries : int;
  mutable w_drops : int;
  mutable w_commits : int;
  mutable w_max_depth : int;
  mutable w_store_ops : int;
  mutable w_txn_commits : int;
  mutable w_txn_aborts : int;
  mutable w_scan_ok : int;
  mutable w_scan_fail : int;
  mutable w_snap_attempts : int;
  mutable w_snap_invalid : int;
  mutable w_cm_waits : int;  (* contention-policy waits (Cm_wait events) *)
  mutable w_cm_wait_cycles : int;
  w_shard_ops : (int, int) Hashtbl.t;  (* shard -> routed ops (Store_op) *)
  w_lat : Hist.t;
  mutable w_snap : counters;  (* counter delta attributed to this window *)
}

let fresh_window t0 =
  {
    w_t0 = t0;
    w_ops = 0;
    w_validate_real = 0;
    w_validate_spurious = 0;
    w_vas_fail = 0;
    w_ias_fail = 0;
    w_stm_aborts = 0;
    w_tag_adds = 0;
    w_tag_removes = 0;
    w_tag_evict_capacity = 0;
    w_tag_evict_conflict = 0;
    w_tag_occupancy_end = 0;
    w_occ_seen = false;
    w_enqueues = 0;
    w_dequeues = 0;
    w_retries = 0;
    w_drops = 0;
    w_commits = 0;
    w_max_depth = 0;
    w_store_ops = 0;
    w_txn_commits = 0;
    w_txn_aborts = 0;
    w_scan_ok = 0;
    w_scan_fail = 0;
    w_snap_attempts = 0;
    w_snap_invalid = 0;
    w_cm_waits = 0;
    w_cm_wait_cycles = 0;
    w_shard_ops = Hashtbl.create 8;
    w_lat = Hist.create ();
    w_snap = zero_counters;
  }

type t = {
  window : int;
  mutable windows : window array;  (* dense, index i covers [i*w, (i+1)*w) *)
  mutable n : int;  (* 1 + highest window index touched *)
  mutable occ : int;  (* running live-tag count across all cores *)
  mutable marks : (int * string) list;  (* reversed; from Fault events *)
  mutable last : counters;  (* cumulative counters at the last snapshot *)
  open_spans : (int, int) Hashtbl.t;  (* core -> open Span_begin time *)
}

let default_window = 5_000

let create ?(window = default_window) () =
  if window <= 0 then invalid_arg "Series.create: window";
  {
    window;
    windows = [||];
    n = 0;
    occ = 0;
    marks = [];
    last = zero_counters;
    open_spans = Hashtbl.create 16;
  }

let window_cycles t = t.window

(* The dense window array grows on demand; every slot up to the highest
   index touched exists (quiet windows stay all-zero). *)
let win t idx =
  let idx = max idx 0 in
  let cap = Array.length t.windows in
  if idx >= cap then begin
    let cap' = max (idx + 1) (max 8 (2 * cap)) in
    let a = Array.init cap' (fun i ->
        if i < cap then t.windows.(i) else fresh_window (i * t.window))
    in
    t.windows <- a
  end;
  if idx >= t.n then t.n <- idx + 1;
  t.windows.(idx)

let set_baseline t c = t.last <- c

let touch_occ t (w : window) =
  w.w_tag_occupancy_end <- t.occ;
  w.w_occ_seen <- true

let feed t (e : Obs.event) =
  let w = win t (e.time / t.window) in
  match e.kind with
  | Obs.Span_begin _ -> Hashtbl.replace t.open_spans e.core e.time
  | Obs.Span_end _ -> (
      match Hashtbl.find_opt t.open_spans e.core with
      | Some t0 ->
          Hashtbl.remove t.open_spans e.core;
          (* The op is attributed to the window it completes in. *)
          w.w_ops <- w.w_ops + 1;
          Hist.add w.w_lat (e.time - t0)
      | None -> ())
  | Obs.Validate { ok = false; spurious } ->
      if spurious then w.w_validate_spurious <- w.w_validate_spurious + 1
      else w.w_validate_real <- w.w_validate_real + 1
  | Obs.Vas { ok = false } -> w.w_vas_fail <- w.w_vas_fail + 1
  | Obs.Ias { ok = false } -> w.w_ias_fail <- w.w_ias_fail + 1
  | Obs.Stm_abort _ -> w.w_stm_aborts <- w.w_stm_aborts + 1
  | Obs.Tag_add _ ->
      w.w_tag_adds <- w.w_tag_adds + 1;
      t.occ <- t.occ + 1;
      touch_occ t w
  | Obs.Tag_remove _ ->
      w.w_tag_removes <- w.w_tag_removes + 1;
      t.occ <- max 0 (t.occ - 1);
      touch_occ t w
  | Obs.Tag_evict { conflict; _ } ->
      if conflict then w.w_tag_evict_conflict <- w.w_tag_evict_conflict + 1
      else w.w_tag_evict_capacity <- w.w_tag_evict_capacity + 1;
      t.occ <- max 0 (t.occ - 1);
      touch_occ t w
  | Obs.Tag_clear { count } ->
      t.occ <- max 0 (t.occ - count);
      touch_occ t w
  | Obs.Req_enqueue { depth; _ } ->
      w.w_enqueues <- w.w_enqueues + 1;
      if depth > w.w_max_depth then w.w_max_depth <- depth
  | Obs.Req_dequeue _ -> w.w_dequeues <- w.w_dequeues + 1
  | Obs.Req_retry _ -> w.w_retries <- w.w_retries + 1
  | Obs.Req_drop _ -> w.w_drops <- w.w_drops + 1
  | Obs.Req_commit _ -> w.w_commits <- w.w_commits + 1
  | Obs.Store_op { shard } ->
      w.w_store_ops <- w.w_store_ops + 1;
      Hashtbl.replace w.w_shard_ops shard
        (1 + Option.value ~default:0 (Hashtbl.find_opt w.w_shard_ops shard))
  | Obs.Txn_commit _ -> w.w_txn_commits <- w.w_txn_commits + 1
  | Obs.Txn_abort _ -> w.w_txn_aborts <- w.w_txn_aborts + 1
  | Obs.Scan_validate { ok; _ } ->
      if ok then w.w_scan_ok <- w.w_scan_ok + 1
      else w.w_scan_fail <- w.w_scan_fail + 1
  | Obs.Snap_attempt _ -> w.w_snap_attempts <- w.w_snap_attempts + 1
  | Obs.Snap_invalid _ -> w.w_snap_invalid <- w.w_snap_invalid + 1
  | Obs.Cm_wait { cycles; _ } ->
      w.w_cm_waits <- w.w_cm_waits + 1;
      w.w_cm_wait_cycles <- w.w_cm_wait_cycles + cycles
  | Obs.Fault { label } -> t.marks <- (e.time, label) :: t.marks
  | _ -> ()

(* A snapshot at time T closes the counter delta since the previous
   snapshot into the window containing cycle T-1. The scheduler tick
   calls this at exact window boundaries (T = k*w, so idx = k-1);
   [finish] calls it once more at the final clock, attributing the tail
   delta to the last (possibly partial) window. Deltas accumulate, so a
   final clock landing exactly on a boundary double-snapshots harmlessly
   (the second delta is what accrued since the tick — possibly zero). *)
let snapshot t ~time c =
  if time > 0 then begin
    let w = win t ((time - 1) / t.window) in
    w.w_snap <- add_counters w.w_snap (sub_counters c t.last);
    t.last <- c
  end

let finish t ~time c = snapshot t ~time:(max time 1) c

let marks t = List.rev t.marks

let windows t = Array.sub t.windows 0 t.n

let latency_summary t =
  let h = Hist.create () in
  for i = 0 to t.n - 1 do
    Hist.merge ~into:h t.windows.(i).w_lat
  done;
  h

(* Carry tag occupancy forward through quiet windows so the series reads
   as a level, not a spike train. Done at render time (events arrive
   slightly out of global order across cores, so incremental window
   closing would not be deterministic-safe). *)
let occupancy_series t =
  let occ = ref 0 in
  Array.map
    (fun w ->
      if w.w_occ_seen then occ := w.w_tag_occupancy_end;
      !occ)
    (windows t)

let window_to_json t occ_end (w : window) =
  let miss_rate =
    let total = w.w_snap.c_l1_hits + w.w_snap.c_l1_misses in
    if total = 0 then 0.0
    else float_of_int w.w_snap.c_l1_misses /. float_of_int total
  in
  Json.Obj
    [
      ("t0", Json.Int w.w_t0);
      ("t1", Json.Int (w.w_t0 + t.window));
      ("ops", Json.Int w.w_ops);
      ( "aborts",
        Json.Obj
          [
            ("validate_real", Json.Int w.w_validate_real);
            ("validate_spurious", Json.Int w.w_validate_spurious);
            ("vas", Json.Int w.w_vas_fail);
            ("ias", Json.Int w.w_ias_fail);
            ("stm", Json.Int w.w_stm_aborts);
          ] );
      ( "tags",
        Json.Obj
          [
            ("adds", Json.Int w.w_tag_adds);
            ("removes", Json.Int w.w_tag_removes);
            ("evict_capacity", Json.Int w.w_tag_evict_capacity);
            ("evict_conflict", Json.Int w.w_tag_evict_conflict);
            ("occupancy_end", Json.Int occ_end);
            ("overflows", Json.Int w.w_snap.c_tag_overflows);
          ] );
      ( "mem",
        Json.Obj
          [
            ("l1_hits", Json.Int w.w_snap.c_l1_hits);
            ("l1_misses", Json.Int w.w_snap.c_l1_misses);
            ("l1_miss_rate", Json.Float miss_rate);
            ("coherence_msgs", Json.Int w.w_snap.c_coherence_msgs);
            ("invalidations", Json.Int w.w_snap.c_invalidations);
            ("writebacks", Json.Int w.w_snap.c_writebacks);
          ] );
      ("heat", Json.Int w.w_snap.c_heat);
      ( "serve",
        Json.Obj
          [
            ("enqueues", Json.Int w.w_enqueues);
            ("dequeues", Json.Int w.w_dequeues);
            ("retries", Json.Int w.w_retries);
            ("drops", Json.Int w.w_drops);
            ("commits", Json.Int w.w_commits);
            ("max_depth", Json.Int w.w_max_depth);
          ] );
      ( "store",
        (* Per-shard counts render sorted by shard id (hash-table order is
           not part of the determinism contract); imbalance is the hottest
           shard's share normalized so uniform = 1.0. *)
        let shards =
          List.sort compare
            (Hashtbl.fold (fun sh n acc -> (sh, n) :: acc) w.w_shard_ops [])
        in
        let hottest =
          List.fold_left (fun a (_, n) -> max a n) 0 shards
        in
        let imbalance =
          if w.w_store_ops = 0 || shards = [] then 1.0
          else
            float_of_int (hottest * List.length shards)
            /. float_of_int w.w_store_ops
        in
        Json.Obj
          [
            ("ops", Json.Int w.w_store_ops);
            ("txn_commits", Json.Int w.w_txn_commits);
            ("txn_aborts", Json.Int w.w_txn_aborts);
            ("scan_validate_ok", Json.Int w.w_scan_ok);
            ("scan_validate_fail", Json.Int w.w_scan_fail);
            ("snap_attempts", Json.Int w.w_snap_attempts);
            ("snap_invalid", Json.Int w.w_snap_invalid);
            ( "shard_ops",
              Json.List
                (List.map
                   (fun (sh, n) ->
                     Json.Obj
                       [ ("shard", Json.Int sh); ("ops", Json.Int n) ])
                   shards) );
            ("imbalance", Json.Float imbalance);
          ] );
      ( "cm",
        Json.Obj
          [
            ("waits", Json.Int w.w_cm_waits);
            ("wait_cycles", Json.Int w.w_cm_wait_cycles);
          ] );
      ("latency", Hist.to_json w.w_lat);
    ]

let to_json t =
  let occ = occupancy_series t in
  Json.Obj
    [
      ("window_cycles", Json.Int t.window);
      ("n_windows", Json.Int t.n);
      ( "marks",
        Json.List
          (List.map
             (fun (time, label) ->
               Json.Obj [ ("t", Json.Int time); ("label", Json.String label) ])
             (marks t)) );
      ( "windows",
        Json.List
          (Array.to_list
             (Array.mapi (fun i w -> window_to_json t occ.(i) w) (windows t)))
      );
      ("latency_summary", Hist.to_json (latency_summary t));
    ]
