(* Log-bucketed histogram of non-negative integer samples (simulated
   cycles). Values below 16 land in exact buckets; above that, each octave
   is split into 8 sub-buckets, bounding the relative quantisation error at
   12.5%. All state is plain ints — adding a sample is two array ops. *)

let n_buckets = 512

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make n_buckets 0; n = 0; sum = 0; min_v = max_int; max_v = 0 }

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.n <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

(* Index of the most significant set bit; [v] must be positive. *)
let msb v =
  let r = ref 0 and x = ref v in
  while !x > 1 do
    incr r;
    x := !x lsr 1
  done;
  !r

let bucket_of v =
  if v < 16 then v
  else
    let m = msb v in
    let sub = (v lsr (m - 3)) land 7 in
    8 + ((m - 3) * 8) + sub

(* Inclusive lower bound of bucket [b] (its representative value). *)
let bucket_low b =
  if b < 16 then b
  else
    let m = 3 + ((b - 8) / 8) in
    let sub = (b - 8) mod 8 in
    (1 lsl m) lor (sub lsl (m - 3))

let add t v =
  let v = if v < 0 then 0 else v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.n
let max_value t = t.max_v
let min_value t = if t.n = 0 then 0 else t.min_v
let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n

let merge ~into src =
  for i = 0 to n_buckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.n <- into.n + src.n;
  into.sum <- into.sum + src.sum;
  if src.n > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end

(* [percentile t p] — the lower bound of the bucket holding the sample of
   rank ceil(p/100 * n), clamped into [min, max] so single-sample and
   extreme queries are exact. Empty histogram: 0. *)
let percentile t p =
  if t.n = 0 then 0
  else if p >= 100.0 then t.max_v
  else begin
    let p = if p < 0.0 then 0.0 else p in
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
      if r < 1 then 1 else r
    in
    let result = ref t.max_v in
    (try
       let cum = ref 0 in
       for b = 0 to n_buckets - 1 do
         cum := !cum + t.counts.(b);
         if !cum >= rank then begin
           result := bucket_low b;
           raise Exit
         end
       done
     with Exit -> ());
    let v = !result in
    let v = if v < t.min_v then t.min_v else v in
    if v > t.max_v then t.max_v else v
  end

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("min", Json.Int (min_value t));
      ("p50", Json.Int (percentile t 50.0));
      ("p90", Json.Int (percentile t 90.0));
      ("p99", Json.Int (percentile t 99.0));
      ("p999", Json.Int (percentile t 99.9));
      ("max", Json.Int t.max_v);
      ("mean", Json.Float (mean t));
      ("sum", Json.Int t.sum);
    ]

let pp ppf t =
  Format.fprintf ppf "n=%d p50=%d p90=%d p99=%d p99.9=%d max=%d" t.n
    (percentile t 50.0) (percentile t 90.0) (percentile t 99.0)
    (percentile t 99.9) t.max_v
