(** Windowed time-series telemetry.

    A series partitions the simulated clock into fixed-width windows
    ([window] cycles, default 5000) and folds two deterministic inputs
    into per-window metrics:

    - the live Obs event stream, delivered through {!Obs.set_tap} — ops
      (span completions) and their latency histogram, abort causes,
      tag churn and occupancy, service-layer queue activity;
    - cumulative machine counters, snapshotted at window boundaries by a
      {!Mt_sim.Runtime} tick and differenced into per-window deltas —
      L1 hits/misses, coherence messages, invalidations, writebacks,
      tag overflows, and the adversary's heat metric.

    {b Determinism contract}: the output is a pure function of the fed
    events and snapshots. A series never reads the sink's rings, so it is
    byte-identical with trace retention on or off ([Obs.create
    ~retain:false]), and — one series per sweep point, like one sink per
    point — for any [--jobs] value. Zero overhead when unused: no tap, no
    tick, no cost. *)

type t

(** Cumulative machine counters at a point in time (shape-independent of
    [Mt_sim.Stats] so the dependency points the right way). [c_heat] is
    the adversary's contention temperature. *)
type counters = {
  c_l1_hits : int;
  c_l1_misses : int;
  c_coherence_msgs : int;
  c_invalidations : int;
  c_writebacks : int;
  c_tag_overflows : int;
  c_heat : int;
}

val zero_counters : counters

val default_window : int

(** [create ?window ()] — an empty series with [window]-cycle windows. *)
val create : ?window:int -> unit -> t

val window_cycles : t -> int

(** The Obs tap: fold one event into its window (window index =
    [time / window]). Ops are attributed to the window their span ends
    in; [Fault] events become timeline marks. *)
val feed : t -> Obs.event -> unit

(** Cumulative counters at the instant the measured phase starts (so the
    first window's delta excludes warmup). *)
val set_baseline : t -> counters -> unit

(** [snapshot t ~time c] closes the counter delta since the previous
    snapshot into the window containing cycle [time - 1]. Call at exact
    window boundaries (the {!Mt_sim.Runtime} tick does). *)
val snapshot : t -> time:int -> counters -> unit

(** [finish t ~time c] attributes the tail delta to the final (possibly
    partial) window at the run's final clock [time]. Safe when [time]
    lands exactly on an already-snapshotted boundary. *)
val finish : t -> time:int -> counters -> unit

(** Fault-injection marks, oldest first: [(time, label)]. *)
val marks : t -> (int * string) list

(** All per-window latency histograms merged ({!Hist.merge}) into one
    run-level summary. *)
val latency_summary : t -> Hist.t

(** Deterministic JSON: window geometry, marks, one object per window
    (throughput, abort breakdown, tag churn/occupancy/overflows, memory
    traffic and L1 miss rate, heat, serve activity, latency histogram),
    and the merged latency summary. Contains no JSON nulls. *)
val to_json : t -> Json.t

(**/**)

(* Exposed for the unit tests. *)
type window = {
  w_t0 : int;
  mutable w_ops : int;
  mutable w_validate_real : int;
  mutable w_validate_spurious : int;
  mutable w_vas_fail : int;
  mutable w_ias_fail : int;
  mutable w_stm_aborts : int;
  mutable w_tag_adds : int;
  mutable w_tag_removes : int;
  mutable w_tag_evict_capacity : int;
  mutable w_tag_evict_conflict : int;
  mutable w_tag_occupancy_end : int;
  mutable w_occ_seen : bool;
  mutable w_enqueues : int;
  mutable w_dequeues : int;
  mutable w_retries : int;
  mutable w_drops : int;
  mutable w_commits : int;
  mutable w_max_depth : int;
  mutable w_store_ops : int;
  mutable w_txn_commits : int;
  mutable w_txn_aborts : int;
  mutable w_scan_ok : int;
  mutable w_scan_fail : int;
  mutable w_snap_attempts : int;
  mutable w_snap_invalid : int;
  mutable w_cm_waits : int;
      (** contention-policy waits ({!Obs.kind.Cm_wait} events) *)
  mutable w_cm_wait_cycles : int;
  w_shard_ops : (int, int) Hashtbl.t;
  w_lat : Hist.t;
  mutable w_snap : counters;
}

val windows : t -> window array
