(* Chrome trace-event JSON exporter (Perfetto-loadable).

   One process (pid 0) for the simulated machine, one track (tid) per
   simulated core. Simulated cycles map 1:1 onto the format's microsecond
   timestamps. Span_begin/Span_end become duration ("B"/"E") events; every
   other kind becomes an instant ("i") — thread-scoped, except adversary
   Fault marks which are global so a squeeze pulse draws a full-height
   line across every track. Service-layer request events additionally
   emit Perfetto flow events (ph "s"/"t"/"f", cat "req", id = request id)
   so one request's causal chain — arrive, enqueue, dequeue, retries,
   commit or drop — renders as connected arrows across cores. The output
   is a pure function of the recorded event stream, so identical runs
   export byte-identical traces. *)

let meta_events ~num_cores =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.String "memtags-sim") ]);
    ]
  :: List.init num_cores (fun core ->
         Json.Obj
           [
             ("name", Json.String "thread_name");
             ("ph", Json.String "M");
             ("pid", Json.Int 0);
             ("tid", Json.Int core);
             ("args",
              Json.Obj [ ("name", Json.String (Printf.sprintf "core %d" core)) ]);
           ])

(* The flow phase of a request event: "s" starts the flow at arrival,
   "t" threads it through each queue/retry step, "f" finishes it at the
   terminal commit or drop. *)
let flow_phase = function
  | Obs.Req_arrive _ -> Some "s"
  | Obs.Req_enqueue _ | Obs.Req_dequeue _ | Obs.Req_retry _ -> Some "t"
  | Obs.Req_commit _ | Obs.Req_drop _ -> Some "f"
  | _ -> None

let flow_json (e : Obs.event) =
  match (flow_phase e.kind, Obs.req_id e.kind) with
  | Some ph, Some id ->
      let base =
        [
          ("name", Json.String "req");
          ("cat", Json.String "req");
          ("ph", Json.String ph);
          ("ts", Json.Int e.time);
          ("pid", Json.Int 0);
          ("tid", Json.Int e.core);
          ("id", Json.Int id);
        ]
      in
      (* bp:"e" binds the finish to the enclosing slice's end, not the
         next slice — required for terminal steps. *)
      let bp = if ph = "f" then [ ("bp", Json.String "e") ] else [] in
      [ Json.Obj (base @ bp) ]
  | _ -> []

let event_json obs (e : Obs.event) =
  let ph =
    match e.kind with
    | Obs.Span_begin _ -> "B"
    | Obs.Span_end _ -> "E"
    | _ -> "i"
  in
  let base =
    [
      ("name", Json.String (Obs.kind_name e.kind));
      ("ph", Json.String ph);
      ("ts", Json.Int e.time);
      ("pid", Json.Int 0);
      ("tid", Json.Int e.core);
    ]
  in
  let scope =
    if ph = "i" then
      let s = match e.kind with Obs.Fault _ -> "g" | _ -> "t" in
      [ ("s", Json.String s) ]
    else []
  in
  let args =
    match Obs.kind_args obs e.kind with
    | [] -> []
    | args -> [ ("args", Json.Obj args) ]
  in
  Json.Obj (base @ scope @ args) :: flow_json e

let to_json ?(num_cores = 0) obs =
  let events = Obs.events obs in
  let num_cores =
    List.fold_left (fun acc (e : Obs.event) -> max acc (e.core + 1)) num_cores events
  in
  Json.Obj
    [
      ("traceEvents",
       Json.List
         (meta_events ~num_cores @ List.concat_map (event_json obs) events));
      ("displayTimeUnit", Json.String "ns");
      ("otherData",
       Json.Obj
         [
           ("generator", Json.String "memtags-sim");
           ("dropped_events", Json.Int (Obs.dropped obs));
           ("dropped_per_core",
            Json.List
              (Array.to_list
                 (Array.map (fun d -> Json.Int d) (Obs.dropped_per_core obs))));
         ]);
    ]

let to_string ?num_cores obs = Json.to_string (to_json ?num_cores obs)

let write_file ?num_cores obs path = Json.to_file path (to_json ?num_cores obs)

(* ------------------------------------------------------------------ *)
(* Hot-line contention report. *)

let hot_lines_json ?top obs =
  Json.List
    (List.map
       (fun (h : Obs.hot_line) ->
         Json.Obj
           [
             ("line", Json.Int h.hl_line);
             ("invalidations", Json.Int h.hl_invals);
             ("downgrades", Json.Int h.hl_downgrades);
             ("owner",
              match h.hl_label with
              | Some l -> Json.String l
              | None -> Json.Null);
           ])
       (Obs.hot_lines ?top obs))

let pp_hot_lines ?(top = 10) ppf obs =
  match Obs.hot_lines ~top obs with
  | [] -> Format.fprintf ppf "hot lines: none recorded@."
  | hot ->
      Format.fprintf ppf "@[<v>hot lines (top %d by invalidations+downgrades):@," top;
      Format.fprintf ppf "%-10s %8s %10s  %s@," "line" "invals" "downgrades" "owner";
      List.iter
        (fun (h : Obs.hot_line) ->
          Format.fprintf ppf "0x%-8x %8d %10d  %s@," h.hl_line h.hl_invals
            h.hl_downgrades
            (Option.value h.hl_label ~default:"?"))
        hot;
      Format.fprintf ppf "@]"
