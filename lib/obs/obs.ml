(* The observability sink. A [t] is either the null sink — [enabled] is
   false and every hook site in the simulator guards its event construction
   behind that check, so tracing off costs one load and one branch per hook
   and allocates nothing — or a recording sink with one bounded event ring
   per simulated core plus an unbounded per-line contention aggregate.

   Determinism: events are stamped with the simulated clock by the caller
   and with a global sequence number by [emit]; the runtime is
   single-threaded, so the sequence order is the exact emission order and
   is a pure function of the program and its seed. No wall time anywhere. *)

type kind =
  | L1_miss of { line : int }
  | L2_miss of { line : int }
  | Inval_sent of { line : int; victim : int }
  | Inval_received of { line : int }
  | Downgrade of { line : int; victim : int }
  | Writeback of { line : int }
  | Tag_add of { line : int }
  | Tag_remove of { line : int }
  | Tag_evict of { line : int; conflict : bool }
  | Tag_clear of { count : int }
  | Validate of { ok : bool; spurious : bool }
  | Vas of { ok : bool }
  | Ias of { ok : bool }
  | Stm_abort of { impl : string; reason : string }
  | Stm_demote
  | Kcas_help of { addr : int }
  | Fiber_stall of { cycles : int }
  | Fiber_resume
  | Span_begin of { name : string }
  | Span_end of { name : string }
  | Req_arrive of { id : int }
  | Req_enqueue of { id : int; queue : int; depth : int }
  | Req_dequeue of { id : int; queue : int; wait : int }
  | Req_retry of { id : int; attempt : int; cause : string }
  | Req_drop of { id : int; queue : int; cause : string }
  | Req_commit of { id : int }
  | Batch of { size : int }
  | Fault of { label : string }
  | Store_op of { shard : int }
  | Txn_commit of { shards : int; cycles : int }
  | Txn_abort of { cause : string; retries : int }
  | Scan_validate of { shard : int; ok : bool }
  | Snap_attempt of { cells : int }
  | Snap_invalid of { cells : int }
  | Cm_wait of { site : int; cycles : int; attempt : int }

type event = { seq : int; time : int; core : int; kind : kind }

(* One bounded ring per core: fixed capacity, overwrites the oldest. *)
type ring = {
  buf : event option array;
  mutable next : int;  (* total pushes; next slot = next mod capacity *)
}

type line_contention = { mutable invals : int; mutable downgrades : int }

type recording = {
  rings : ring array;
  mutable seq : int;
  dropped : int array;  (* per core, same index as [rings] *)
  retain : bool;
  mutable tap : (event -> unit) option;
  hot : (int, line_contention) Hashtbl.t;
  labels : (int, string) Hashtbl.t;  (* line -> owning allocation label *)
}

type t = Null | Recording of recording

let null = Null

let default_ring_capacity = 1 lsl 16

let create ?(ring_capacity = default_ring_capacity) ?(retain = true)
    ~num_cores () =
  if ring_capacity <= 0 then invalid_arg "Obs.create: ring_capacity";
  if num_cores <= 0 then invalid_arg "Obs.create: num_cores";
  Recording
    {
      rings =
        Array.init num_cores (fun _ ->
            { buf = Array.make ring_capacity None; next = 0 });
      seq = 0;
      dropped = Array.make num_cores 0;
      retain;
      tap = None;
      hot = Hashtbl.create 1024;
      labels = Hashtbl.create 1024;
    }

let enabled = function Null -> false | Recording _ -> true

let set_tap t tap =
  match t with Null -> () | Recording r -> r.tap <- tap

let hot_entry r line =
  match Hashtbl.find_opt r.hot line with
  | Some e -> e
  | None ->
      let e = { invals = 0; downgrades = 0 } in
      Hashtbl.add r.hot line e;
      e

let emit t ~core ~time kind =
  match t with
  | Null -> ()
  | Recording r ->
      (match kind with
      | Inval_sent { line; _ } ->
          let e = hot_entry r line in
          e.invals <- e.invals + 1
      | Downgrade { line; _ } ->
          let e = hot_entry r line in
          e.downgrades <- e.downgrades + 1
      | _ -> ());
      let e = { seq = r.seq; time; core; kind } in
      r.seq <- r.seq + 1;
      (match r.tap with Some f -> f e | None -> ());
      if r.retain then begin
        let ring = r.rings.(core) in
        let cap = Array.length ring.buf in
        if ring.next >= cap then r.dropped.(core) <- r.dropped.(core) + 1;
        ring.buf.(ring.next mod cap) <- Some e;
        ring.next <- ring.next + 1
      end

let dropped = function
  | Null -> 0
  | Recording r -> Array.fold_left ( + ) 0 r.dropped

let dropped_per_core = function
  | Null -> [||]
  | Recording r -> Array.copy r.dropped

(* Oldest-to-newest contents of one ring. *)
let ring_events ring =
  let cap = Array.length ring.buf in
  let n = min ring.next cap in
  let first = ring.next - n in
  List.filter_map
    (fun i -> ring.buf.((first + i) mod cap))
    (List.init n (fun i -> i))

(* All recorded events, in global emission order. *)
let events = function
  | Null -> []
  | Recording r ->
      Array.to_list r.rings
      |> List.concat_map ring_events
      |> List.sort (fun (a : event) (b : event) -> compare a.seq b.seq)

let label_lines t ~line_lo ~line_hi label =
  match t with
  | Null -> ()
  | Recording r ->
      for line = line_lo to line_hi do
        (* First allocation wins; lines are never reallocated (bump
           allocator), so a clash would be a simulator bug. *)
        if not (Hashtbl.mem r.labels line) then Hashtbl.add r.labels line label
      done

let label_of t line =
  match t with Null -> None | Recording r -> Hashtbl.find_opt r.labels line

type hot_line = {
  hl_line : int;
  hl_invals : int;
  hl_downgrades : int;
  hl_label : string option;
}

let hot_lines ?(top = 10) t =
  match t with
  | Null -> []
  | Recording r ->
      let all =
        Hashtbl.fold
          (fun line e acc ->
            {
              hl_line = line;
              hl_invals = e.invals;
              hl_downgrades = e.downgrades;
              hl_label = Hashtbl.find_opt r.labels line;
            }
            :: acc)
          r.hot []
      in
      let sorted =
        List.sort
          (fun a b ->
            let ca = a.hl_invals + a.hl_downgrades
            and cb = b.hl_invals + b.hl_downgrades in
            if ca <> cb then compare cb ca else compare a.hl_line b.hl_line)
          all
      in
      List.filteri (fun i _ -> i < top) sorted

(* ------------------------------------------------------------------ *)
(* Event names and structured arguments (shared by the trace exporter
   and any textual dump). *)

let kind_name = function
  | L1_miss _ -> "l1-miss"
  | L2_miss _ -> "l2-miss"
  | Inval_sent _ -> "inval-sent"
  | Inval_received _ -> "inval-received"
  | Downgrade _ -> "downgrade"
  | Writeback _ -> "writeback"
  | Tag_add _ -> "tag-add"
  | Tag_remove _ -> "tag-remove"
  | Tag_evict { conflict = true; _ } -> "tag-evict-conflict"
  | Tag_evict { conflict = false; _ } -> "tag-evict-capacity"
  | Tag_clear _ -> "tag-clear"
  | Validate { ok = true; _ } -> "validate-ok"
  | Validate { ok = false; spurious = false } -> "validate-fail"
  | Validate { ok = false; spurious = true } -> "validate-fail-spurious"
  | Vas { ok = true } -> "vas-ok"
  | Vas { ok = false } -> "vas-fail"
  | Ias { ok = true } -> "ias-ok"
  | Ias { ok = false } -> "ias-fail"
  | Stm_abort _ -> "stm-abort"
  | Stm_demote -> "stm-demote"
  | Kcas_help _ -> "kcas-help"
  | Fiber_stall _ -> "stall"
  | Fiber_resume -> "resume"
  | Span_begin { name } | Span_end { name } -> name
  | Req_arrive _ -> "req-arrive"
  | Req_enqueue _ -> "req-enqueue"
  | Req_dequeue _ -> "req-dequeue"
  | Req_retry _ -> "req-retry"
  | Req_drop _ -> "req-drop"
  | Req_commit _ -> "req-commit"
  | Batch _ -> "batch"
  | Fault _ -> "fault"
  | Store_op _ -> "store-op"
  | Txn_commit _ -> "txn-commit"
  | Txn_abort _ -> "txn-abort"
  | Scan_validate { ok = true; _ } -> "scan-validate-ok"
  | Scan_validate { ok = false; _ } -> "scan-validate-fail"
  | Snap_attempt _ -> "snap-attempt"
  | Snap_invalid _ -> "snap-invalid"
  | Cm_wait _ -> "cm-wait"

let kind_args t = function
  | L1_miss { line } | L2_miss { line } | Writeback { line }
  | Inval_received { line } | Tag_add { line } | Tag_remove { line } ->
      [ ("line", Json.Int line) ]
  | Tag_evict { line; conflict } ->
      [ ("line", Json.Int line); ("conflict", Json.Bool conflict) ]
  | Tag_clear { count } -> [ ("count", Json.Int count) ]
  | Inval_sent { line; victim } | Downgrade { line; victim } ->
      let base = [ ("line", Json.Int line); ("victim", Json.Int victim) ] in
      (match label_of t line with
      | Some l -> base @ [ ("owner", Json.String l) ]
      | None -> base)
  | Validate { ok; spurious } ->
      [ ("ok", Json.Bool ok); ("spurious", Json.Bool spurious) ]
  | Vas { ok } | Ias { ok } -> [ ("ok", Json.Bool ok) ]
  | Stm_abort { impl; reason } ->
      [ ("impl", Json.String impl); ("reason", Json.String reason) ]
  | Stm_demote -> []
  | Kcas_help { addr } -> [ ("addr", Json.Int addr) ]
  | Fiber_stall { cycles } -> [ ("cycles", Json.Int cycles) ]
  | Fiber_resume -> []
  | Span_begin _ | Span_end _ -> []
  | Req_arrive { id } -> [ ("id", Json.Int id) ]
  | Req_enqueue { id; queue; depth } ->
      [ ("id", Json.Int id); ("queue", Json.Int queue);
        ("depth", Json.Int depth) ]
  | Req_dequeue { id; queue; wait } ->
      [ ("id", Json.Int id); ("queue", Json.Int queue);
        ("wait", Json.Int wait) ]
  | Req_retry { id; attempt; cause } ->
      [ ("id", Json.Int id); ("attempt", Json.Int attempt);
        ("cause", Json.String cause) ]
  | Req_drop { id; queue; cause } ->
      [ ("id", Json.Int id); ("queue", Json.Int queue);
        ("cause", Json.String cause) ]
  | Req_commit { id } -> [ ("id", Json.Int id) ]
  | Batch { size } -> [ ("size", Json.Int size) ]
  | Fault { label } -> [ ("label", Json.String label) ]
  | Store_op { shard } -> [ ("shard", Json.Int shard) ]
  | Txn_commit { shards; cycles } ->
      [ ("shards", Json.Int shards); ("cycles", Json.Int cycles) ]
  | Txn_abort { cause; retries } ->
      [ ("cause", Json.String cause); ("retries", Json.Int retries) ]
  | Scan_validate { shard; ok } ->
      [ ("shard", Json.Int shard); ("ok", Json.Bool ok) ]
  | Snap_attempt { cells } | Snap_invalid { cells } ->
      [ ("cells", Json.Int cells) ]
  | Cm_wait { site; cycles; attempt } ->
      [ ("site", Json.Int site); ("cycles", Json.Int cycles);
        ("attempt", Json.Int attempt) ]

(* The request id an event participates in, if any — the thread that links
   one request's causal chain (arrive → enqueue → dequeue → retries →
   commit/drop) across cores in the trace exporter's flow events. *)
let req_id = function
  | Req_arrive { id }
  | Req_enqueue { id; _ }
  | Req_dequeue { id; _ }
  | Req_retry { id; _ }
  | Req_drop { id; _ }
  | Req_commit { id } ->
      Some id
  | _ -> None
