type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialisation. Deterministic: object fields print in the order given,
   floats through one fixed format, no whitespace randomness. *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if not (Float.is_finite x) then
    "null" (* JSON has no NaN/inf; never produced by well-behaved callers *)
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else
    (* Shortest representation that parses back to the same double, so
       emit → parse → emit is the identity (the byte-identical-artifact
       guarantee). %.17g always round-trips; prefer fewer digits when
       they suffice. *)
    let s12 = Printf.sprintf "%.12g" x in
    if float_of_string s12 = x then s12
    else
      let s15 = Printf.sprintf "%.15g" x in
      if float_of_string s15 = x then s15 else Printf.sprintf "%.17g" x

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 4096 in
  to_buffer buf t;
  Buffer.contents buf

let to_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* A strict recursive-descent parser: enough JSON to round-trip our own
   output and to check well-formedness of emitted artifacts in tests and
   CI without external dependencies. *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected %C" ch)

let expect_lit c lit value =
  let n = String.length lit in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = lit then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %S" lit)

let parse_string_raw c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then error c "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* Only BMP escapes we emit ourselves (control chars): keep the
               low byte; fidelity beyond that is not needed here. *)
            Buffer.add_char buf (Char.chr (code land 0xFF));
            go ()
        | _ -> error c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with Some ch when is_num_char ch -> advance c; go () | _ -> ()
  in
  go ();
  if c.pos = start then error c "expected number";
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error c "malformed number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' -> expect_lit c "null" Null
  | Some 't' -> expect_lit c "true" (Bool true)
  | Some 'f' -> expect_lit c "false" (Bool false)
  | Some '"' -> String (parse_string_raw c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List (List.rev (v :: acc))
          | _ -> error c "expected ',' or ']'"
        in
        items []
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string_raw c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; fields (kv :: acc)
          | Some '}' -> advance c; Obj (List.rev (kv :: acc))
          | _ -> error c "expected ',' or '}'"
        in
        fields []
      end
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors for validation code. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
