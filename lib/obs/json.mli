(** Minimal dependency-free JSON: a value type, a deterministic serialiser,
    and a strict parser used to validate emitted artifacts (benchmark
    output, Perfetto traces) in tests and CI.

    Serialisation is byte-deterministic: object fields keep the order they
    were built in, floats go through one fixed format, and no whitespace is
    emitted — a prerequisite for the "identical seeds produce byte-identical
    traces" guarantee. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** [to_file path t] writes [t] followed by a newline. *)
val to_file : string -> t -> unit

exception Parse_error of string

(** Strict parse of a complete document; raises {!Parse_error} on any
    malformation, including trailing garbage. *)
val of_string : string -> t

(** [member key json] — the field's value if [json] is an object that has
    it. *)
val member : string -> t -> t option

val to_list_opt : t -> t list option
