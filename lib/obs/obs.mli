(** Simulator-wide event tracing: the sink.

    A sink is either {!null} — disabled, [enabled] is [false], and
    {!emit} is a no-op — or a recording sink created by {!create} with one
    bounded ring buffer per simulated core plus a per-cache-line contention
    aggregate (the hot-line profiler).

    {b Zero-overhead-off contract}: every hook site in the simulator must
    guard event {e construction} behind [if Obs.enabled obs then ...], so
    that a disabled sink costs exactly one load and one branch per hook and
    never allocates.

    {b Determinism}: callers stamp events with the simulated clock; [emit]
    adds a per-sink sequence number in emission order. A sink belongs to
    one simulation run on one domain (sinks are not thread-safe — when
    sweeping points in parallel with {!Mt_par.Pool}, give each point its
    own sink), so for a fixed program and seed the recorded event stream
    is always byte-identical. No wall time is ever read. *)

type kind =
  | L1_miss of { line : int }
  | L2_miss of { line : int }
  | Inval_sent of { line : int; victim : int }
      (** Issuer-side: this core invalidated [victim]'s copy of [line]. *)
  | Inval_received of { line : int }
  | Downgrade of { line : int; victim : int }
  | Writeback of { line : int }
  | Tag_add of { line : int }
  | Tag_remove of { line : int }
  | Tag_evict of { line : int; conflict : bool }
      (** A live tag died: [conflict] distinguishes a real remote
          invalidation from a spurious capacity eviction. *)
  | Validate of { ok : bool; spurious : bool }
  | Vas of { ok : bool }
  | Ias of { ok : bool }
  | Stm_abort of { impl : string; reason : string }
  | Stm_demote  (** Tagged NOrec fell off the tag fast path. *)
  | Kcas_help of { addr : int }
  | Fiber_stall of { cycles : int }
  | Fiber_resume
  | Span_begin of { name : string }
  | Span_end of { name : string }
  | Req_enqueue of { queue : int; depth : int }
      (** Service layer: a request entered queue [queue], which now holds
          [depth] requests. *)
  | Req_dequeue of { queue : int; wait : int }
      (** A worker took a request out of [queue] after it waited [wait]
          cycles (queueing delay, separate from service time). *)
  | Req_drop of { queue : int }
      (** Admission control rejected a request bound for [queue] for good
          (capacity full and the retry budget, if any, exhausted). *)
  | Batch of { size : int }  (** One worker dequeue moved [size] requests. *)

type event = { seq : int; time : int; core : int; kind : kind }

type t

(** The disabled sink. *)
val null : t

val default_ring_capacity : int

(** [create ?ring_capacity ~num_cores ()] — a recording sink. Each core's
    ring holds the last [ring_capacity] (default 65536) events; older
    events are overwritten and counted in {!dropped}. *)
val create : ?ring_capacity:int -> num_cores:int -> unit -> t

val enabled : t -> bool

(** [emit t ~core ~time kind] records an event (no-op on {!null}). [time]
    is the simulated clock in cycles. *)
val emit : t -> core:int -> time:int -> kind -> unit

(** Events overwritten by ring wraparound, across all cores. *)
val dropped : t -> int

(** All retained events in global emission order (ties impossible: the
    sequence number is unique). *)
val events : t -> event list

(** {1 Line ownership labels and the hot-line profiler} *)

(** [label_lines t ~line_lo ~line_hi label] attributes a line range to an
    allocation site ("harris-node", "stm-seqlock", ...). First label wins;
    the simulated allocator never reuses lines. *)
val label_lines : t -> line_lo:int -> line_hi:int -> string -> unit

val label_of : t -> int -> string option

type hot_line = {
  hl_line : int;
  hl_invals : int;
  hl_downgrades : int;
  hl_label : string option;
}

(** Most-contended lines, by invalidations+downgrades received, ties by
    line number. Aggregated over the whole recording (not bounded by the
    rings). *)
val hot_lines : ?top:int -> t -> hot_line list

(** {1 Event rendering helpers} *)

val kind_name : kind -> string

(** Structured arguments of an event, for the trace exporter; [t] supplies
    ownership labels. *)
val kind_args : t -> kind -> (string * Json.t) list
