open Mt_sim

type addr = Memory.addr

type t = {
  machine : Machine.t;
  rt : Runtime.t;
  core : int;
  prng : Prng.t;
  stats : Stats.t;  (* the core's counters, cached off the charge path *)
  cm : Mt_cm.Cm.t;  (* contention-management policy for this core *)
}

(* Fixed instruction cost of a heap allocation (bump allocator + header). *)
let alloc_cycles = 8

let make ?cm machine ~rt ~core ~prng =
  if core < 0 || core >= Machine.num_cores machine then
    invalid_arg "Ctx.make: core id out of range";
  let cm =
    match cm with
    | Some c -> c
    | None -> Mt_cm.Cm.make Mt_cm.Cm.immediate ~core
  in
  { machine; rt; core; prng; stats = Machine.stats machine ~core; cm }

let machine t = t.machine
let runtime t = t.rt
let core t = t.core
let prng t = t.prng
let obs t = Machine.obs t.machine
let now t = Runtime.clock t.rt

let charge t lat =
  if lat > 0 then begin
    t.stats.busy_cycles <- t.stats.busy_cycles + lat;
    Runtime.stall_on t.rt lat
  end

(* Charge the latency the machine just recorded for an operation. *)
let[@inline] charge_last t = charge t (Machine.last_latency t.machine)

let work t n = if n > 0 then charge t n

let alloc ?label t ~words =
  let a = Machine.alloc ?label t.machine ~words in
  charge t alloc_cycles;
  a

let read t addr =
  let v = Machine.read t.machine ~core:t.core addr in
  charge_last t;
  v

let write t addr v =
  let lat = Machine.write t.machine ~core:t.core addr v in
  charge t lat

let cas t addr ~expected ~desired =
  let ok = Machine.cas t.machine ~core:t.core addr ~expected ~desired in
  charge_last t;
  ok

let faa t addr delta =
  let old = Machine.faa t.machine ~core:t.core addr delta in
  charge_last t;
  old

let add_tag t addr ~words =
  let lat = Machine.add_tag t.machine ~core:t.core addr ~words in
  charge t lat

let add_tag_read t addr ~words =
  let v = Machine.add_tag_read t.machine ~core:t.core addr ~words in
  charge_last t;
  v

let remove_tag t addr ~words =
  let lat = Machine.remove_tag t.machine ~core:t.core addr ~words in
  charge t lat

let validate t =
  let ok = Machine.validate t.machine ~core:t.core in
  charge_last t;
  ok

let clear_tag_set t =
  let lat = Machine.clear_tag_set t.machine ~core:t.core in
  charge t lat

let vas t addr v =
  let ok = Machine.vas t.machine ~core:t.core addr v in
  charge_last t;
  ok

let ias t addr v =
  let ok = Machine.ias t.machine ~core:t.core addr v in
  charge_last t;
  ok

let tag_count t = Machine.tag_count t.machine ~core:t.core

(* ------------------------------------------------------------------ *)
(* Contention management (DESIGN §14). *)

let cm t = t.cm
let cm_immediate t = Mt_cm.Cm.is_immediate t.cm

(* Charge a policy-imposed wait through the ordinary stall path. Under
   [Immediate] the policy returns 0 without touching any state, so this
   is observationally a no-op — no stall, no counters, no event — and
   runs under the default policy stay byte-identical to a tree that
   retries unconditionally. *)
let cm_wait ?(site = 0) t ~attempt =
  let w = Mt_cm.Cm.wait t.cm ~site ~attempt ~now:(Runtime.clock t.rt) in
  if w > 0 then begin
    t.stats.cm_waits <- t.stats.cm_waits + 1;
    t.stats.cm_wait_cycles <- t.stats.cm_wait_cycles + w;
    (let o = Machine.obs t.machine in
     if Mt_obs.Obs.enabled o then
       Mt_obs.Obs.emit o ~core:t.core ~time:(Runtime.clock t.rt)
         (Mt_obs.Obs.Cm_wait { site; cycles = w; attempt }));
    charge t w
  end

(* For retry sites that already carried a hand-rolled backoff (NOrec's
   randomized doubling, Store's capped shift): [default] IS today's
   behavior and runs — including its PRNG draws — only under
   [Immediate]; any other policy computes the wait itself and the
   default (and its draws) is skipped entirely. *)
let cm_wait_default ?(site = 0) t ~attempt ~default =
  if cm_immediate t then work t (default ()) else cm_wait ~site t ~attempt

exception Restart

let restart _t = raise Restart

(* The shared optimistic-retry combinator: the structures' former
   copy-pasted [exception Restart -> clear; retry] loops, with the
   policy hook in one place. Under [Immediate] the expansion is exactly
   the old loop: clear the tag set and go again. *)
let with_restarts ?(site = 0) t f =
  let rec go attempt =
    match f () with
    | r -> r
    | exception Restart ->
        clear_tag_set t;
        cm_wait ~site t ~attempt;
        go (attempt + 1)
  in
  go 0
