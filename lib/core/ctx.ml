open Mt_sim

type addr = Memory.addr

type t = {
  machine : Machine.t;
  rt : Runtime.t;
  core : int;
  prng : Prng.t;
  stats : Stats.t;  (* the core's counters, cached off the charge path *)
}

(* Fixed instruction cost of a heap allocation (bump allocator + header). *)
let alloc_cycles = 8

let make machine ~rt ~core ~prng =
  if core < 0 || core >= Machine.num_cores machine then
    invalid_arg "Ctx.make: core id out of range";
  { machine; rt; core; prng; stats = Machine.stats machine ~core }

let machine t = t.machine
let runtime t = t.rt
let core t = t.core
let prng t = t.prng
let obs t = Machine.obs t.machine
let now t = Runtime.clock t.rt

let charge t lat =
  if lat > 0 then begin
    t.stats.busy_cycles <- t.stats.busy_cycles + lat;
    Runtime.stall_on t.rt lat
  end

(* Charge the latency the machine just recorded for an operation. *)
let[@inline] charge_last t = charge t (Machine.last_latency t.machine)

let work t n = if n > 0 then charge t n

let alloc ?label t ~words =
  let a = Machine.alloc ?label t.machine ~words in
  charge t alloc_cycles;
  a

let read t addr =
  let v = Machine.read t.machine ~core:t.core addr in
  charge_last t;
  v

let write t addr v =
  let lat = Machine.write t.machine ~core:t.core addr v in
  charge t lat

let cas t addr ~expected ~desired =
  let ok = Machine.cas t.machine ~core:t.core addr ~expected ~desired in
  charge_last t;
  ok

let faa t addr delta =
  let old = Machine.faa t.machine ~core:t.core addr delta in
  charge_last t;
  old

let add_tag t addr ~words =
  let lat = Machine.add_tag t.machine ~core:t.core addr ~words in
  charge t lat

let add_tag_read t addr ~words =
  let v = Machine.add_tag_read t.machine ~core:t.core addr ~words in
  charge_last t;
  v

let remove_tag t addr ~words =
  let lat = Machine.remove_tag t.machine ~core:t.core addr ~words in
  charge t lat

let validate t =
  let ok = Machine.validate t.machine ~core:t.core in
  charge_last t;
  ok

let clear_tag_set t =
  let lat = Machine.clear_tag_set t.machine ~core:t.core in
  charge t lat

let vas t addr v =
  let ok = Machine.vas t.machine ~core:t.core addr v in
  charge_last t;
  ok

let ias t addr v =
  let ok = Machine.ias t.machine ~core:t.core addr v in
  charge_last t;
  ok

let tag_count t = Machine.tag_count t.machine ~core:t.core
