(** Running simulated thread groups.

    A typical experiment builds the machine once, populates the data
    structure in a single-fiber phase, resets the counters, then runs the
    measured multi-thread phase:

    {[
      let m = Machine.create cfg in
      let set = Harness.exec1 m (fun ctx -> My_set.create ctx) in
      Harness.exec m ~threads:1 (fun ctx -> populate ctx set);
      Machine.reset_stats m;
      let d = Harness.exec m ~threads:8 (fun ctx -> workload ctx set) in
      ...
    ]} *)

(** [exec machine ?seed ?policy ~threads f] runs [threads] fibers, fiber
    [i] pinned to core [i] with its own PRNG stream derived from [seed].
    [policy] (default {!Mt_sim.Runtime.default_policy}) selects the
    scheduling policy; pass a fresh {!Mt_sim.Runtime.random_policy} to
    explore an alternative, fully reproducible interleaving of the same
    workload. Returns the simulated duration in cycles (the time the last
    fiber finished). Raises [Invalid_argument] if [threads] exceeds the
    machine's cores or is not positive. [tick] is forwarded to
    {!Mt_sim.Runtime.run}: a periodic observation hook fired at every
    multiple of its interval the simulated clock crosses (the window
    telemetry snapshot point). [cm] (default {!Mt_cm.Cm.immediate})
    selects the contention-management policy; each core gets a private
    instance, with a jitter stream split off the master PRNG only for
    policies that draw randomness — so the default is byte-identical to
    a harness without policies.

    Thread safety: one [exec] per domain at a time, each on its own
    machine. Independent machines may execute concurrently on different
    OCaml domains (that is how {!Mt_par.Pool.map} parallelizes benchmark
    and fuzz sweeps); sharing one machine between domains is not
    supported. *)
val exec :
  Mt_sim.Machine.t ->
  ?seed:int ->
  ?policy:Mt_sim.Runtime.policy ->
  ?tick:int * (now:int -> unit) ->
  ?cm:Mt_cm.Cm.spec ->
  threads:int ->
  (Ctx.t -> unit) ->
  int

(** [exec1 machine f] runs [f] as a single fiber on core 0 and returns its
    result (convenience for setup phases that produce a value). *)
val exec1 : Mt_sim.Machine.t -> ?seed:int -> (Ctx.t -> 'a) -> 'a
