(** Per-thread handle to the simulated machine: the MemTags programming API.

    A [Ctx.t] binds a fiber to a simulated core. Every operation goes
    through the machine's timing model and stalls the calling fiber for the
    cycles it cost, so algorithmic synchronization choices translate
    directly into simulated throughput.

    Operations mirror the paper's Section 3 primitives: [add_tag],
    [remove_tag], [validate], [vas], [ias], [clear_tag_set], alongside the
    conventional [read]/[write]/[cas] that baseline data structures use. *)

type t

type addr = Mt_sim.Memory.addr

(** [make machine ~rt ~core ~prng] — normally done by {!Harness}, which
    threads the fiber runtime [rt] driving this simulation through every
    context (one runtime per machine per run; nothing is process-global,
    so independent simulations can run on different domains). [cm] is
    this core's contention-management policy instance; defaults to
    [immediate] (retry at once — the behavior before policies existed). *)
val make :
  ?cm:Mt_cm.Cm.t ->
  Mt_sim.Machine.t ->
  rt:Mt_sim.Runtime.t ->
  core:int ->
  prng:Mt_sim.Prng.t ->
  t

val machine : t -> Mt_sim.Machine.t

(** The fiber runtime this context's simulation runs on. *)
val runtime : t -> Mt_sim.Runtime.t

val core : t -> int
val prng : t -> Mt_sim.Prng.t

(** The machine's observability sink — hook sites above the simulator
    (STM, kCAS) emit their structured events through this; guard with
    [Mt_obs.Obs.enabled] before constructing an event. *)
val obs : t -> Mt_obs.Obs.t

(** Current simulated time of the calling fiber, in cycles. *)
val now : t -> int

(** [work t n] charges [n] cycles of local computation (instruction cost
    of non-memory work such as key comparisons or node construction). *)
val work : t -> int -> unit

(** [alloc ?label t ~words] allocates zeroed, line-aligned simulated memory
    and charges a small allocator cost. [label] names the owning structure
    for the hot-line contention profiler. *)
val alloc : ?label:string -> t -> words:int -> addr

(** {1 Plain shared-memory operations} *)

val read : t -> addr -> int
val write : t -> addr -> int -> unit
val cas : t -> addr -> expected:int -> desired:int -> bool
val faa : t -> addr -> int -> int

(** {1 MemTags operations} *)

val add_tag : t -> addr -> words:int -> unit

(** [add_tag_read t addr ~words] tags the range and returns the word at
    [addr] in one access (a tagged load). *)
val add_tag_read : t -> addr -> words:int -> int
val remove_tag : t -> addr -> words:int -> unit
val validate : t -> bool
val clear_tag_set : t -> unit
val vas : t -> addr -> int -> bool
val ias : t -> addr -> int -> bool
val tag_count : t -> int

(** {1 Contention management}

    Optimistic retry sites consult the context's policy (DESIGN §14)
    instead of spinning. The default [immediate] policy computes no
    waits, draws no randomness and keeps no state, so runs under it are
    byte-identical to the pre-policy tree. *)

(** This core's policy instance. *)
val cm : t -> Mt_cm.Cm.t

(** True iff the policy is [immediate] (the determinism baseline). *)
val cm_immediate : t -> bool

(** [cm_wait ?site t ~attempt] asks the policy for a wait before retry
    number [attempt] (0-based) against the contended location [site],
    then charges it through the ordinary stall path, counts it in
    {!Mt_sim.Stats} and emits {!Mt_obs.Obs.Cm_wait}. A zero wait (always,
    under [immediate]) does nothing at all. *)
val cm_wait : ?site:addr -> t -> attempt:int -> unit

(** [cm_wait_default ?site t ~attempt ~default] — for retry sites that
    already carried a hand-rolled backoff: under [immediate] charges
    [default ()] cycles (today's behavior exactly, including any PRNG
    draws the closure makes); under any other policy skips the default
    and waits per {!cm_wait}. *)
val cm_wait_default : ?site:addr -> t -> attempt:int -> default:(unit -> int) -> unit

(** Raised by optimistic bodies run under {!with_restarts} to abandon
    the attempt. *)
exception Restart

(** [restart t] aborts the current optimistic attempt. *)
val restart : t -> 'a

(** [with_restarts ?site t f] runs the optimistic body [f] until it
    returns without raising {!Restart}; each restart clears the tag set,
    consults the contention policy ({!cm_wait}) and retries. This is the
    shared form of the structures' former copy-pasted retry loops. *)
val with_restarts : ?site:addr -> t -> (unit -> 'a) -> 'a
