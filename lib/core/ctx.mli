(** Per-thread handle to the simulated machine: the MemTags programming API.

    A [Ctx.t] binds a fiber to a simulated core. Every operation goes
    through the machine's timing model and stalls the calling fiber for the
    cycles it cost, so algorithmic synchronization choices translate
    directly into simulated throughput.

    Operations mirror the paper's Section 3 primitives: [add_tag],
    [remove_tag], [validate], [vas], [ias], [clear_tag_set], alongside the
    conventional [read]/[write]/[cas] that baseline data structures use. *)

type t

type addr = Mt_sim.Memory.addr

(** [make machine ~rt ~core ~prng] — normally done by {!Harness}, which
    threads the fiber runtime [rt] driving this simulation through every
    context (one runtime per machine per run; nothing is process-global,
    so independent simulations can run on different domains). *)
val make :
  Mt_sim.Machine.t ->
  rt:Mt_sim.Runtime.t ->
  core:int ->
  prng:Mt_sim.Prng.t ->
  t

val machine : t -> Mt_sim.Machine.t

(** The fiber runtime this context's simulation runs on. *)
val runtime : t -> Mt_sim.Runtime.t

val core : t -> int
val prng : t -> Mt_sim.Prng.t

(** The machine's observability sink — hook sites above the simulator
    (STM, kCAS) emit their structured events through this; guard with
    [Mt_obs.Obs.enabled] before constructing an event. *)
val obs : t -> Mt_obs.Obs.t

(** Current simulated time of the calling fiber, in cycles. *)
val now : t -> int

(** [work t n] charges [n] cycles of local computation (instruction cost
    of non-memory work such as key comparisons or node construction). *)
val work : t -> int -> unit

(** [alloc ?label t ~words] allocates zeroed, line-aligned simulated memory
    and charges a small allocator cost. [label] names the owning structure
    for the hot-line contention profiler. *)
val alloc : ?label:string -> t -> words:int -> addr

(** {1 Plain shared-memory operations} *)

val read : t -> addr -> int
val write : t -> addr -> int -> unit
val cas : t -> addr -> expected:int -> desired:int -> bool
val faa : t -> addr -> int -> int

(** {1 MemTags operations} *)

val add_tag : t -> addr -> words:int -> unit

(** [add_tag_read t addr ~words] tags the range and returns the word at
    [addr] in one access (a tagged load). *)
val add_tag_read : t -> addr -> words:int -> int
val remove_tag : t -> addr -> words:int -> unit
val validate : t -> bool
val clear_tag_set : t -> unit
val vas : t -> addr -> int -> bool
val ias : t -> addr -> int -> bool
val tag_count : t -> int
