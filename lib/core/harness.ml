open Mt_sim

let exec machine ?(seed = 0x5EED) ?(policy = Runtime.default_policy) ?tick
    ~threads f =
  if threads <= 0 || threads > Machine.num_cores machine then
    invalid_arg "Harness.exec: bad thread count";
  let master = Prng.create ~seed in
  let rt = Runtime.create () in
  for core = 0 to threads - 1 do
    let prng = Prng.split master in
    Runtime.spawn rt (fun () -> f (Ctx.make machine ~rt ~core ~prng))
  done;
  Runtime.run ~policy ~obs:(Machine.obs machine) ?tick rt;
  Runtime.clock rt

let exec1 machine ?(seed = 0x5EED) f =
  let result = ref None in
  let (_ : int) =
    exec machine ~seed ~threads:1 (fun ctx -> result := Some (f ctx))
  in
  match !result with Some r -> r | None -> assert false
