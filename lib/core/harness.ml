open Mt_sim

let exec machine ?(seed = 0x5EED) ?(policy = Runtime.default_policy) ?tick
    ?(cm = Mt_cm.Cm.immediate) ~threads f =
  if threads <= 0 || threads > Machine.num_cores machine then
    invalid_arg "Harness.exec: bad thread count";
  let master = Prng.create ~seed in
  (* Jitter streams come from a SEPARATE master so the per-core op
     streams are identical across policies: a policy comparison then
     measures contention management, not a resampled workload. Under
     [Immediate] no jitter stream exists and [master] advances exactly
     as it always did, so default-policy runs stay byte-identical to
     the pre-policy tree. *)
  let jitter_master =
    match cm with
    | Mt_cm.Cm.Immediate -> None
    | _ -> Some (Prng.create ~seed:(seed lxor 0x6A177E12))
  in
  let rt = Runtime.create () in
  for core = 0 to threads - 1 do
    let prng = Prng.split master in
    let cm =
      match jitter_master with
      | None -> Mt_cm.Cm.make cm ~core
      | Some jm -> Mt_cm.Cm.make ~prng:(Prng.split jm) cm ~core
    in
    Runtime.spawn rt (fun () -> f (Ctx.make machine ~cm ~rt ~core ~prng))
  done;
  Runtime.run ~policy ~obs:(Machine.obs machine) ?tick rt;
  Runtime.clock rt

let exec1 machine ?(seed = 0x5EED) f =
  let result = ref None in
  let (_ : int) =
    exec machine ~seed ~threads:1 (fun ctx -> result := Some (f ctx))
  in
  match !result with Some r -> r | None -> assert false
