(** Wing–Gong linearizability checking of recorded histories.

    The core ({!final_states}, {!check}) is a generic Wing–Gong search: it
    tries to order a history of completed operations (each with a
    real-time invocation/response interval) into a legal sequential
    execution of a deterministic oracle, backtracking over every operation
    that may legally be linearized next (one whose invocation is not
    strictly after any remaining operation's response). Two prunings keep
    it fast on the mostly-sequential histories the simulator produces:

    - {e quiescent splitting} — wherever some instant strictly separates
      all earlier responses from all later invocations, real time forces
      every earlier operation before every later one, so the history is
      checked segment by segment, threading the set of reachable oracle
      states across the split;
    - {e memoization} — within a segment, search states are keyed by
      (set of linearized ops, oracle state) and visited once.

    {!check_set} is the driver for set histories: since a set of integer
    keys is an independent boolean object per key (linearizability is
    compositional), the history is decomposed per key and each sub-history
    is checked against a one-bit oracle, optionally also requiring the
    observed final contents to be reachable. *)

(** A sequential oracle: [apply state op] returns the operation's expected
    boolean result in [state] and the successor state. States must support
    structural equality/hashing (they are memo keys). *)
type ('state, 'op) model = { apply : 'state -> 'op -> bool * 'state }

(** One completed operation: what was called, what it returned, and its
    real-time interval in simulated cycles. Operations with
    [t_res a < t_inv b] are ordered; equal timestamps count as
    concurrent. *)
type 'op entry = { op : 'op; result : bool; t_inv : int; t_res : int }

(** [final_states model ~init entries] — all oracle states reachable by a
    legal linearization of [entries] from [init]; [[]] iff none exists.
    [entries] need not be sorted. *)
val final_states :
  ('s, 'op) model -> init:'s -> 'op entry array -> 's list

(** [check model ~init entries] — [Ok states] (the reachable final
    states) if linearizable, [Error segment] otherwise, where [segment] is
    the smallest real-time window of the history that admits no valid
    linearization. *)
val check :
  ('s, 'op) model ->
  init:'s ->
  'op entry array ->
  ('s list, 'op entry array) result

(** A failed set-history check: the key whose sub-history is wrong, the
    minimized window of events demonstrating it, and why. *)
type violation = {
  key : int;
  window : History.event list;
  reason : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** [check_set ?init ?final events] checks a recorded set history for
    linearizability against a sequential set-of-ints oracle starting from
    contents [init] (default empty). When [final] (the structure's actual
    contents after the run, read off quiescent memory) is given, each
    key's observed final membership must also be reachable — catching
    corruptions that leave a plausible history but wrong memory. *)
val check_set :
  ?init:int list ->
  ?final:int list ->
  History.event array ->
  (unit, violation) result
