open Mt_sim
open Mt_core

type params = {
  threads : int;
  ops : int;
  range : int;
  prefill : int;
  max_delay : int;
}

let default_params = { threads = 4; ops = 50; range = 12; prefill = 4; max_delay = 64 }

type outcome = {
  seed : int;
  history : History.event array;
  init : int list;
  final : int list;
  duration : int;
  verdict : (unit, Linearize.violation) result;
}

(* Everything an adversary may replace about a run: how the machine is
   built (cache geometry, Max_Tags), how the scheduling policy is derived
   from the seed (straggler pauses, mid-run fault triggers), and how keys
   are drawn (skewed / flash-crowd distributions). The defaults reproduce
   the historical uninstrumented run bit for bit — same machine, same
   policy, same PRNG consumption. *)
type hooks = {
  make_machine : obs:Mt_obs.Obs.t -> num_cores:int -> Machine.t;
  make_policy : machine:Machine.t -> seed:int -> max_delay:int -> Runtime.policy;
  draw_key : prng:Prng.t -> nth:int -> range:int -> int;
}

let default_hooks =
  {
    make_machine =
      (fun ~obs ~num_cores -> Machine.create ~obs (Config.default ~num_cores ()));
    make_policy =
      (fun ~machine:_ ~seed ~max_delay -> Runtime.random_policy ~max_delay ~seed ());
    draw_key = (fun ~prng ~nth:_ ~range -> Prng.int prng range);
  }

let run ?(obs = Mt_obs.Obs.null) ?(hooks = default_hooks)
    (module S : Mt_list.Set_intf.SET) ~params ~seed =
  let p = params in
  let m = hooks.make_machine ~obs ~num_cores:p.threads in
  let s = Harness.exec1 m (fun ctx -> S.create ctx) in
  if p.prefill > 0 then
    Harness.exec1 m (fun ctx ->
        let g = Prng.create ~seed:(seed lxor 0x9E11F1) in
        for _ = 1 to p.prefill do
          ignore (S.insert ctx s (Prng.int g p.range))
        done);
  let init = S.to_list_unsafe m s in
  let h = History.create () in
  let policy = hooks.make_policy ~machine:m ~seed ~max_delay:p.max_delay in
  let duration =
    Harness.exec m ~seed ~policy ~threads:p.threads (fun ctx ->
        let g = Ctx.prng ctx in
        for nth = 0 to p.ops - 1 do
          let k = hooks.draw_key ~prng:g ~nth ~range:p.range in
          ignore
            (match Prng.int g 4 with
            | 0 | 1 ->
                History.record h ctx (History.Insert k) (fun () ->
                    S.insert ctx s k)
            | 2 ->
                History.record h ctx (History.Delete k) (fun () ->
                    S.delete ctx s k)
            | _ ->
                History.record h ctx (History.Contains k) (fun () ->
                    S.contains ctx s k))
        done)
  in
  let final = S.to_list_unsafe m s in
  (* Every fuzzed run ends with a structural MESI/directory audit, so a
     cache or directory rewrite cannot silently break coherence even when
     the history still linearizes. Raises Failure on violation. *)
  Machine.check_coherence m;
  let history = History.events h in
  let verdict = Linearize.check_set ~init ~final history in
  { seed; history; init; final; duration; verdict }

(* Scan [lo, hi) in ascending order, stopping at the first violation. *)
let scan_range ~run ~lo ~hi =
  let rec go seed =
    if seed >= hi then None
    else
      let o : outcome = run ~seed in
      match o.verdict with Ok () -> go (seed + 1) | Error _ -> Some o
  in
  go lo

let sweep_with ?(jobs = 1) ?(start = 0) ~run ~seeds () =
  let hi = start + seeds in
  let first_failure =
    if jobs <= 1 || seeds <= 1 then scan_range ~run ~lo:start ~hi
    else begin
      (* Partition the seed space into contiguous ascending chunks, each
         scanned in order with early exit. The first chunk (in order)
         that reports a failure holds the globally smallest failing seed,
         so the verdict is identical to the sequential sweep — only
         wall-clock changes. Chunks outnumber domains for load balance. *)
      let chunks = min seeds (jobs * 4) in
      let ranges =
        List.init chunks (fun i ->
            (start + (i * seeds / chunks), start + ((i + 1) * seeds / chunks)))
      in
      Mt_par.Pool.map ~jobs (fun (lo, hi) -> scan_range ~run ~lo ~hi) ranges
      |> List.find_map Fun.id
    end
  in
  match first_failure with
  | None -> (seeds, None)
  | Some o -> (o.seed - start, Some o)

let sweep ?jobs ?start ?hooks (module S : Mt_list.Set_intf.SET) ~params ~seeds =
  sweep_with ?jobs ?start
    ~run:(fun ~seed -> run ?hooks (module S) ~params ~seed)
    ~seeds ()
