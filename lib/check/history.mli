(** Per-run operation histories.

    A recorder is a thin instrumentation layer over [Ctx]/[Harness]: each
    set operation is wrapped in {!record}, which logs its invocation and
    response timestamps (simulated cycles), the executing core, the
    operation and its result. Because the simulator is deterministic, the
    recorded history is a pure function of (workload seed, scheduling
    policy) — replaying a seed reproduces the history byte for byte.

    The runtime is single-OS-threaded and fibers are only preempted when
    they stall, so the recorder needs no synchronization of its own. *)

type op = Insert of int | Delete of int | Contains of int

type event = {
  core : int;  (** executing core / fiber id *)
  op : op;
  result : bool;
  t_inv : int;  (** simulated time at invocation *)
  t_res : int;  (** simulated time at response *)
}

type t

val create : unit -> t

(** [record t ctx op f] runs [f ()] (the real operation), logging its
    invocation/response interval, and passes its result through. *)
val record : t -> Mt_core.Ctx.t -> op -> (unit -> bool) -> bool

(** Number of events recorded so far. *)
val length : t -> int

(** All recorded events in canonical order (sorted by invocation time,
    then response time, then core). Call after the run completes. *)
val events : t -> event array

(** [key_of op] is the key the operation touches. *)
val key_of : op -> int

val pp_event : Format.formatter -> event -> unit

(** Render a history one event per line — the byte-for-byte replay format
    used by the fuzzer's determinism check. *)
val to_string : event array -> string
