(** A deliberately broken sorted linked list: the VAS list with its
    synchronization stripped (no tagging, no marking, no VAS — updates are
    plain writes after an unvalidated traversal). Sequentially correct,
    but concurrent updates race classically: two inserts after the same
    predecessor lose one, a delete overlapping an insert unlinks it, etc.

    Kept for ever as the fuzzer's canary: the schedule explorer plus the
    linearizability checker must catch it within a small seed budget
    (asserted in [test/test_check.ml]); if it ever stops being caught, the
    checker — not the list — has regressed. *)

include Mt_list.Set_intf.SET
