type ('state, 'op) model = { apply : 'state -> 'op -> bool * 'state }
type 'op entry = { op : 'op; result : bool; t_inv : int; t_res : int }

let sort_entries entries =
  let sorted = Array.copy entries in
  Array.sort (fun a b -> compare (a.t_inv, a.t_res) (b.t_inv, b.t_res)) sorted;
  sorted

(* Split a t_inv-sorted history at quiescent points: a boundary before
   entry [i] is sound iff every earlier response is strictly before
   entry [i]'s invocation, which forces all earlier ops first in any
   linearization. Returns non-empty contiguous slices. *)
let split_quiescent sorted =
  let n = Array.length sorted in
  if n = 0 then []
  else begin
    let segments = ref [] in
    let start = ref 0 in
    let max_res = ref sorted.(0).t_res in
    for i = 1 to n - 1 do
      if !max_res < sorted.(i).t_inv then begin
        segments := Array.sub sorted !start (i - !start) :: !segments;
        start := i
      end;
      if sorted.(i).t_res > !max_res then max_res := sorted.(i).t_res
    done;
    segments := Array.sub sorted !start (n - !start) :: !segments;
    List.rev !segments
  end

let bit_get bytes i = Char.code (Bytes.get bytes (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set bytes i v =
  let c = Char.code (Bytes.get bytes (i / 8)) in
  let mask = 1 lsl (i mod 8) in
  Bytes.set bytes (i / 8) (Char.chr (if v then c lor mask else c land lnot mask))

(* Memoized Wing–Gong exploration of one segment: all final states
   reachable by a legal linearization. [seg] is sorted by t_inv. *)
let segment_final_states model ~init seg =
  let n = Array.length seg in
  let finals = ref [] in
  let add_final s = if not (List.mem s !finals) then finals := s :: !finals in
  let taken = Bytes.make ((n + 7) / 8) '\000' in
  let visited = Hashtbl.create 64 in
  let rec go k state =
    if k = n then add_final state
    else begin
      let memo_key = (Bytes.to_string taken, state) in
      if not (Hashtbl.mem visited memo_key) then begin
        Hashtbl.add visited memo_key ();
        let min_res = ref max_int in
        for i = 0 to n - 1 do
          if (not (bit_get taken i)) && seg.(i).t_res < !min_res then
            min_res := seg.(i).t_res
        done;
        (* Candidates to linearize next: remaining ops invoked no later
           than every remaining response. Sorted order lets us stop at the
           first op invoked strictly after [min_res]. *)
        let i = ref 0 in
        let scanning = ref true in
        while !scanning && !i < n do
          let e = seg.(!i) in
          if e.t_inv > !min_res then scanning := false
          else begin
            if not (bit_get taken !i) then begin
              let r, state' = model.apply state e.op in
              if r = e.result then begin
                bit_set taken !i true;
                go (k + 1) state';
                bit_set taken !i false
              end
            end;
            incr i
          end
        done
      end
    end
  in
  go 0 init;
  !finals

let dedup states = List.sort_uniq compare states

let check model ~init entries =
  let segments = split_quiescent (sort_entries entries) in
  let rec loop states = function
    | [] -> Ok states
    | seg :: rest -> (
        let states' =
          dedup
            (List.concat_map
               (fun s -> segment_final_states model ~init:s seg)
               states)
        in
        match states' with [] -> Error seg | _ -> loop states' rest)
  in
  loop [ init ] segments

let final_states model ~init entries =
  match check model ~init entries with Ok states -> states | Error _ -> []

(* ------------------------------------------------------------------ *)
(* Set histories: per-key decomposition against a one-bit oracle. *)

type violation = { key : int; window : History.event list; reason : string }

let pp_violation ppf v =
  Format.fprintf ppf "@[<v 2>key %d: %s@,%a@]" v.key v.reason
    (Format.pp_print_list History.pp_event)
    v.window

(* The per-key oracle: ops are indices into the key's event array so a
   failing segment maps straight back to its events. *)
let event_model (evs : History.event array) : (bool, int) model =
  {
    apply =
      (fun present i ->
        match evs.(i).History.op with
        | History.Insert _ -> (not present, true)
        | History.Delete _ -> (present, false)
        | History.Contains _ -> (present, present));
  }

let check_set ?(init = []) ?final (events : History.event array) =
  let by_key : (int, History.event list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (e : History.event) ->
      let k = History.key_of e.History.op in
      Hashtbl.replace by_key k
        (e :: (Option.value ~default:[] (Hashtbl.find_opt by_key k))))
    events;
  let keys =
    dedup
      (Hashtbl.fold (fun k _ acc -> k :: acc) by_key []
      @ init
      @ Option.value ~default:[] final)
  in
  let check_key k =
    let evs =
      Array.of_list (List.rev (Option.value ~default:[] (Hashtbl.find_opt by_key k)))
    in
    let entries =
      Array.mapi
        (fun i (e : History.event) ->
          { op = i; result = e.History.result; t_inv = e.History.t_inv; t_res = e.History.t_res })
        evs
    in
    let init_present = List.mem k init in
    match check (event_model evs) ~init:init_present entries with
    | Error seg ->
        Error
          {
            key = k;
            window = List.map (fun en -> evs.(en.op)) (Array.to_list seg);
            reason = "no valid linearization for this window";
          }
    | Ok states -> (
        match final with
        | Some f when not (List.mem (List.mem k f) states) ->
            Error
              {
                key = k;
                window = Array.to_list evs;
                reason =
                  Printf.sprintf
                    "final membership %b unreachable by any linearization"
                    (List.mem k f);
              }
        | _ -> Ok ())
  in
  List.fold_left
    (fun acc k -> match acc with Error _ -> acc | Ok () -> check_key k)
    (Ok ()) keys
