(** A deliberately broken (a=2,b=4) HoH-tagged a-b tree: the real
    {!Mt_abtree.Abtree_hoh} with insert's IAS validation dropped (the
    commit is a blind store over a possibly-replaced window). A permanent
    canary mirroring {!Buggy_list} on the tree path: the checker battery
    and the adversarial fuzz sweeps must keep catching it — and the
    shrinker must reduce its failures to minimal repros. Never benchmark
    it. *)

include Mt_list.Set_intf.SET
