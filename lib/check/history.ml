type op = Insert of int | Delete of int | Contains of int

type event = {
  core : int;
  op : op;
  result : bool;
  t_inv : int;
  t_res : int;
}

type t = { mutable rev_events : event list; mutable n : int }

let create () = { rev_events = []; n = 0 }

let record t ctx op f =
  let t_inv = Mt_core.Ctx.now ctx in
  let result = f () in
  let t_res = Mt_core.Ctx.now ctx in
  t.rev_events <-
    { core = Mt_core.Ctx.core ctx; op; result; t_inv; t_res } :: t.rev_events;
  t.n <- t.n + 1;
  result

let length t = t.n

let compare_event a b =
  compare (a.t_inv, a.t_res, a.core, a.op) (b.t_inv, b.t_res, b.core, b.op)

let events t =
  let arr = Array.of_list t.rev_events in
  Array.sort compare_event arr;
  arr

let key_of = function Insert k | Delete k | Contains k -> k

let op_name = function
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Contains _ -> "contains"

let pp_event ppf e =
  Format.fprintf ppf "[core %d] %s(%d) = %b @@ %d..%d" e.core (op_name e.op)
    (key_of e.op) e.result e.t_inv e.t_res

let to_string arr =
  let buf = Buffer.create (Array.length arr * 40) in
  Array.iter
    (fun e ->
      Buffer.add_string buf (Format.asprintf "%a" pp_event e);
      Buffer.add_char buf '\n')
    arr;
  Buffer.contents buf
