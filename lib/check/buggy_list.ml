open Mt_core
module Node = Mt_list.Node

type t = { head : Ctx.addr }

let name = "buggy-list"

let create ctx =
  let tail = Node.alloc ctx ~key:max_int ~next:Mt_sim.Memory.null ~marked:false in
  let head = Node.alloc ctx ~key:min_int ~next:tail ~marked:false in
  { head }

(* Unvalidated traversal; never observes marks because nothing sets them. *)
let locate ctx t k =
  let rec advance pred curr =
    let ck = Node.key ctx curr in
    if ck >= k then (pred, curr, ck)
    else advance curr (Node.ptr_of (Node.next_packed ctx curr))
  in
  let first = Node.ptr_of (Node.next_packed ctx t.head) in
  advance t.head first

(* The bug: between [locate] and the plain write the fiber stalls on memory
   latency, so a concurrent update to the same neighbourhood is silently
   overwritten — no tag, no validation, no atomic swing. *)
let insert ctx t k =
  let pred, _curr, ck = locate ctx t k in
  if ck = k then false
  else begin
    let curr = Node.ptr_of (Node.next_packed ctx pred) in
    let node = Node.alloc ctx ~key:k ~next:curr ~marked:false in
    Ctx.write ctx (pred + Node.next_off) (Node.pack node ~marked:false);
    true
  end

let delete ctx t k =
  let pred, curr, ck = locate ctx t k in
  if ck <> k then false
  else begin
    let succ = Node.ptr_of (Node.next_packed ctx curr) in
    Ctx.write ctx (pred + Node.next_off) (Node.pack succ ~marked:false);
    true
  end

let contains ctx t k =
  let _, _, ck = locate ctx t k in
  ck = k

let to_list_unsafe machine t = Node.to_list_unsafe machine t.head
