(** Schedule exploration: run one set workload under many distinct,
    individually reproducible interleavings and linearizability-check each
    recorded history.

    One {!run} = one seed: a fresh machine, a fresh
    {!Mt_sim.Runtime.random_policy} built from the seed (yield injection +
    priority perturbation), thread PRNGs derived from the same seed, and a
    full history check against the sequential set oracle — including the
    structure's actual final contents. Everything is a pure function of
    the parameters, so a failing seed replays to a byte-identical
    history. *)

type params = {
  threads : int;
  ops : int;  (** operations per thread *)
  range : int;  (** keys drawn uniformly from [0, range) *)
  prefill : int;  (** random inserts performed sequentially before the run *)
  max_delay : int;  (** scheduler yield-injection bound, in cycles *)
}

val default_params : params

type outcome = {
  seed : int;
  history : History.event array;
  init : int list;  (** contents after prefill, before the measured run *)
  final : int list;  (** contents after the run, read off quiescent memory *)
  duration : int;  (** simulated cycles *)
  verdict : (unit, Linearize.violation) result;
}

(** [run ?obs (module S) ~params ~seed] — execute the workload under the
    seed's schedule and check the history. A recording [obs] captures the
    full simulator event stream of the run (tracing never perturbs the
    schedule, so a traced replay reproduces the untraced history). *)
val run :
  ?obs:Mt_obs.Obs.t ->
  (module Mt_list.Set_intf.SET) ->
  params:params ->
  seed:int ->
  outcome

(** [sweep ?jobs (module S) ~params ~seeds] — run seeds [0..seeds-1],
    stopping at the first violation. Returns the number of clean runs and
    the failing outcome, if any. With [jobs > 1] (default 1) the seed
    space is scanned by [jobs] OCaml domains over contiguous chunks; each
    seed is an independent simulation, and the first failure reported is
    still the globally smallest failing seed, so the result is identical
    to the sequential sweep — only faster. *)
val sweep :
  ?jobs:int ->
  (module Mt_list.Set_intf.SET) ->
  params:params ->
  seeds:int ->
  int * outcome option
