(** Schedule exploration: run one set workload under many distinct,
    individually reproducible interleavings and linearizability-check each
    recorded history.

    One {!run} = one seed: a fresh machine, a fresh
    {!Mt_sim.Runtime.random_policy} built from the seed (yield injection +
    priority perturbation), thread PRNGs derived from the same seed, and a
    full history check against the sequential set oracle — including the
    structure's actual final contents. Everything is a pure function of
    the parameters, so a failing seed replays to a byte-identical
    history.

    The {!hooks} record is the adversary seam ([lib/adversary]): it lets a
    caller replace how the machine is built, how the policy is derived
    from the seed, and how keys are drawn, while this module keeps
    ownership of the workload shape, the history recording, and the
    first-failure sweep contract. *)

type params = {
  threads : int;
  ops : int;  (** operations per thread *)
  range : int;  (** keys drawn from [0, range) *)
  prefill : int;  (** random inserts performed sequentially before the run *)
  max_delay : int;  (** scheduler yield-injection bound, in cycles *)
}

val default_params : params

type outcome = {
  seed : int;
  history : History.event array;
  init : int list;  (** contents after prefill, before the measured run *)
  final : int list;  (** contents after the run, read off quiescent memory *)
  duration : int;  (** simulated cycles *)
  verdict : (unit, Linearize.violation) result;
}

(** The injection points a scenario engine may replace. Every hook must be
    a pure function of its arguments and the seed it was built from —
    hooks are invoked in scheduler order, so seeded hook state keeps runs
    byte-identically replayable. [draw_key ~prng ~nth ~range] picks the
    [nth] (0-based, per thread) operation's key. *)
type hooks = {
  make_machine : obs:Mt_obs.Obs.t -> num_cores:int -> Mt_sim.Machine.t;
  make_policy :
    machine:Mt_sim.Machine.t -> seed:int -> max_delay:int -> Mt_sim.Runtime.policy;
  draw_key : prng:Mt_sim.Prng.t -> nth:int -> range:int -> int;
}

(** Default machine ({!Mt_sim.Config.default}), default policy
    ({!Mt_sim.Runtime.random_policy}), uniform keys — byte-identical to
    the historical hook-free behaviour. *)
val default_hooks : hooks

(** [run ?obs ?hooks (module S) ~params ~seed] — execute the workload
    under the seed's schedule and check the history. A recording [obs]
    captures the full simulator event stream of the run (tracing never
    perturbs the schedule, so a traced replay reproduces the untraced
    history — with or without injection hooks). *)
val run :
  ?obs:Mt_obs.Obs.t ->
  ?hooks:hooks ->
  (module Mt_list.Set_intf.SET) ->
  params:params ->
  seed:int ->
  outcome

(** [sweep_with ?jobs ?start ~run ~seeds ()] — the generic first-failure
    sweep over seeds [start .. start+seeds-1] (default [start = 0]),
    stopping at the first violation; [run ~seed] must be self-contained
    (fresh machine per call) so seeds may be evaluated on any domain.
    Returns the number of clean runs before the failure (= [seeds] if
    none) and the failing outcome, if any. With [jobs > 1] the seed space
    is scanned by [jobs] OCaml domains over contiguous ascending chunks;
    the first failure reported is still the globally smallest failing
    seed, so the result is identical to the sequential sweep — only
    faster. *)
val sweep_with :
  ?jobs:int ->
  ?start:int ->
  run:(seed:int -> outcome) ->
  seeds:int ->
  unit ->
  int * outcome option

(** [sweep ?jobs ?start ?hooks (module S) ~params ~seeds] —
    {!sweep_with} over {!run}. *)
val sweep :
  ?jobs:int ->
  ?start:int ->
  ?hooks:hooks ->
  (module Mt_list.Set_intf.SET) ->
  params:params ->
  seeds:int ->
  int * outcome option
