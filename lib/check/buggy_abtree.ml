(* The tree-shaped canary, mirroring [Buggy_list]: the real HoH-tagged
   (a,b)-tree with exactly one validation dropped — insert's pointer swing
   commits with a plain store instead of IAS, so the tagged descent window
   is never checked at commit time and a concurrent replacement of the
   parent slot is silently overwritten (a lost update). Delete and
   rebalancing keep their IAS, so runs terminate normally; only the
   history (and final contents) betray the bug. The fuzzer battery must
   keep catching this on the tree path, under plain and adversarial
   sweeps alike. *)

module T = Mt_abtree.Abtree_hoh.Make_gen (struct
  let a = 2
  let b = 4
  let validated_insert = false
end)

include T

let name = "buggy-abtree"
