(* Contention-management policies (DESIGN §14). Pure wait computation +
   per-core private state; charging the cycles and emitting Obs events is
   the caller's job (Mt_core.Ctx), so this layer depends only on the
   simulator's PRNG and stays usable from any level of the stack.

   Determinism: [Immediate] touches nothing — no PRNG draw, no state —
   so a run under the default policy is byte-identical to a build that
   never heard of this module. Backoff jitter comes only from the
   instance's private stream (split off the context's PRNG by Harness,
   and only when the policy actually needs it). Politeness derives waits
   purely from (core, now). *)

type spec =
  | Immediate
  | Backoff of { base : int; cap : int }
  | Politeness of { slot : int; slots : int }
  | Adaptive of {
      threshold : int;
      decay_cycles : int;
      base : int;
      cap : int;
      slot : int;
      slots : int;
    }

let default_base = 32
let default_cap = 4096
let default_slot = 192
let default_slots = 8

let immediate = Immediate

let backoff ?(base = default_base) ?(cap = default_cap) () =
  if base <= 0 || cap < base then invalid_arg "Cm.backoff: need cap >= base > 0";
  Backoff { base; cap }

let politeness ?(slot = default_slot) ?(slots = default_slots) () =
  if slot <= 0 || slots <= 0 then invalid_arg "Cm.politeness: need slot, slots > 0";
  Politeness { slot; slots }

let adaptive ?(threshold = 3) ?(decay_cycles = 2048) ?(base = default_base)
    ?(cap = default_cap) ?(slot = default_slot) ?(slots = default_slots) () =
  if threshold <= 0 then invalid_arg "Cm.adaptive: threshold";
  if decay_cycles <= 0 then invalid_arg "Cm.adaptive: decay_cycles";
  if base <= 0 || cap < base then invalid_arg "Cm.adaptive: need cap >= base > 0";
  if slot <= 0 || slots <= 0 then invalid_arg "Cm.adaptive: need slot, slots > 0";
  Adaptive { threshold; decay_cycles; base; cap; slot; slots }

let spec_name = function
  | Immediate -> "immediate"
  | Backoff _ -> "backoff"
  | Politeness _ -> "politeness"
  | Adaptive _ -> "adaptive"

let spec_of_string = function
  | "immediate" -> Ok Immediate
  | "backoff" -> Ok (backoff ())
  | "politeness" -> Ok (politeness ())
  | "adaptive" -> Ok (adaptive ())
  | s -> Error (Printf.sprintf "unknown contention policy %S" s)

(* min cap (base * 2^attempt) without overflow: base <= cap asr attempt
   iff base * 2^attempt <= cap (integer division truncates downward, and
   both sides are non-negative), so the shift only runs when it cannot
   wrap. The old Server clamp saturated at attempt 20 regardless of cap;
   this is exact for every attempt. *)
let capped_backoff ~base ~cap ~attempt =
  if base <= 0 || cap <= 0 then 0
  else if attempt >= 62 then cap
  else if base > cap asr attempt then cap
  else base lsl attempt

(* Per-location failure counters for Adaptive: a tiny fixed-size
   direct-mapped table keyed on site address. Collisions just merge two
   locations' heat — acceptable for a contention heuristic, and it keeps
   the hot path allocation-free. *)
type site_slot = {
  mutable s_site : int;  (* -1 = empty *)
  mutable s_count : int;
  mutable s_last : int;  (* sim time of the last recorded failure *)
}

type t = {
  spec : spec;
  core : int;
  prng : Mt_sim.Prng.t option;
  table : site_slot array;  (* non-empty only for Adaptive *)
}

let table_size = 64

let make ?prng spec ~core =
  let table =
    match spec with
    | Adaptive _ ->
        Array.init table_size (fun _ -> { s_site = -1; s_count = 0; s_last = 0 })
    | _ -> [||]
  in
  { spec; core; prng; table }

let spec t = t.spec
let is_immediate t = match t.spec with Immediate -> true | _ -> false

(* Half jitter: wait in [b/2, b] so contenders spread without ever
   collapsing to an immediate retry. Without a private stream the wait
   is the deterministic upper bound. *)
let backoff_wait t ~base ~cap ~attempt =
  let b = capped_backoff ~base ~cap ~attempt in
  if b <= 1 then b
  else
    match t.prng with
    | None -> b
    | Some g ->
        let lo = b / 2 in
        lo + Mt_sim.Prng.int g (b - lo + 1)

(* Wait until this core's next slot opens; retry immediately while inside
   our own slot. Pure function of (core, now) — byte-identical across
   --jobs because [now] is simulated time. *)
let politeness_wait t ~slot ~slots ~now =
  let period = slot * slots in
  let mine = t.core mod slots * slot in
  let pos = now mod period in
  let w = (mine - pos + period) mod period in
  if w = 0 || w > period - slot then 0 else w

let site_slot t site =
  (* Multiplicative hash (Fibonacci constant); table_size is a power of 2. *)
  let h = site * 0x9E3779B1 land max_int in
  t.table.(h land (table_size - 1))

let adaptive_wait t ~threshold ~decay_cycles ~base ~cap ~slot ~slots ~site
    ~attempt ~now =
  let s = site_slot t site in
  if s.s_site <> site then begin
    s.s_site <- site;
    s.s_count <- 0
  end
  else begin
    (* Time decay: halve the counter for every decay window since the
       last failure, so a location that cooled off re-earns its heat. *)
    let idle = now - s.s_last in
    if idle >= decay_cycles then begin
      let halvings = min 30 (idle / decay_cycles) in
      s.s_count <- s.s_count asr halvings
    end
  end;
  s.s_last <- now;
  s.s_count <- s.s_count + 1;
  if s.s_count <= threshold then 0
  else if s.s_count <= 4 * threshold then
    backoff_wait t ~base ~cap ~attempt:(min attempt 20)
  else politeness_wait t ~slot ~slots ~now

let wait t ~site ~attempt ~now =
  match t.spec with
  | Immediate -> 0
  | Backoff { base; cap } -> backoff_wait t ~base ~cap ~attempt:(min attempt 20)
  | Politeness { slot; slots } -> politeness_wait t ~slot ~slots ~now
  | Adaptive { threshold; decay_cycles; base; cap; slot; slots } ->
      adaptive_wait t ~threshold ~decay_cycles ~base ~cap ~slot ~slots ~site
        ~attempt ~now
