(** Pluggable contention management for optimistic retry loops.

    Every CAS/VAS/IAS failure and every structure/STM/kCAS/Store restart
    loop consults one policy object (threaded through [Mt_core.Ctx])
    instead of spinning. A policy computes a wait in {e simulated cycles};
    the context charges it through the existing stall path, so runs stay
    byte-identical for any [--jobs] value and with tracing on or off.

    The determinism baseline is {!Immediate}: it computes no waits, draws
    nothing from any PRNG, and keeps no state, so threading it through a
    retry loop is observationally a no-op — today's behavior exactly.
    Sites that already carried a hand-rolled backoff (the NOrec abort
    loop, [Store]'s shard retries) keep it as their site {e default},
    evaluated only under [Immediate]; any other policy replaces it.

    [Backoff] and [Politeness] follow Dice–Hendler–Mirsky ("Lightweight
    Contention Management for Efficient Compare-and-Swap Operations"):
    capped exponential backoff with seeded jitter, and time-division
    politeness — constant slots keyed on core id, so contending cores
    take turns instead of colliding. [Adaptive] keeps per-location
    failure counters with time decay and escalates immediate → backoff
    → politeness as a location heats up. *)

(** Policy specification — pure data, shared across cores; each core
    materializes its own {!t} (private jitter stream, private counters). *)
type spec =
  | Immediate
      (** Retry at once; the baseline. No waits, no PRNG draws, no state. *)
  | Backoff of { base : int; cap : int }
      (** Capped exponential: attempt [n] waits in
          [[b/2, b]] where [b = min cap (base * 2^n)], jitter drawn from
          the core's private PRNG stream. *)
  | Politeness of { slot : int; slots : int }
      (** Time-division: simulated time is divided into rounds of
          [slots] slots of [slot] cycles; a failing core waits until its
          own slot ([core mod slots]) comes around. Deterministic — no
          randomness at all. *)
  | Adaptive of {
      threshold : int;  (** failures before leaving immediate mode *)
      decay_cycles : int;  (** halve a location's counter per this many idle cycles *)
      base : int;
      cap : int;
      slot : int;
      slots : int;
    }
      (** Per-location failure counters with time decay: below
          [threshold] retry immediately; below [4 * threshold] use
          backoff; above, politeness. *)

val immediate : spec

(** Defaults: [base = 32], [cap = 4096]. *)
val backoff : ?base:int -> ?cap:int -> unit -> spec

(** Defaults: [slot = 192], [slots = 8]. *)
val politeness : ?slot:int -> ?slots:int -> unit -> spec

(** Defaults: [threshold = 3], [decay_cycles = 2048], backoff/politeness
    parameters as above. *)
val adaptive :
  ?threshold:int ->
  ?decay_cycles:int ->
  ?base:int ->
  ?cap:int ->
  ?slot:int ->
  ?slots:int ->
  unit ->
  spec

val spec_name : spec -> string

(** Parses the four bare policy names ([immediate], [backoff],
    [politeness], [adaptive]) to their default-parameter specs. *)
val spec_of_string : string -> (spec, string) result

(** {1 Per-core instances} *)

type t

(** [make spec ~core ~prng] materializes [spec] for one core. [prng]
    feeds backoff jitter and must be a private stream (split off the
    context's); it is unused — and may be omitted — for [Immediate] and
    [Politeness]. Without a PRNG, backoff waits are the deterministic
    upper bound [b]. *)
val make : ?prng:Mt_sim.Prng.t -> spec -> core:int -> t

val spec : t -> spec

(** True iff the policy is [Immediate]; retry sites use this to decide
    whether to run their hand-rolled default wait. *)
val is_immediate : t -> bool

(** [wait t ~site ~attempt ~now] is the number of simulated cycles to
    wait before retry number [attempt] (0-based) against the contended
    location [site] at simulated time [now]. [Immediate] always returns
    0. The caller charges the cycles and records the failure — this
    call itself updates only the policy's private state. *)
val wait : t -> site:int -> attempt:int -> now:int -> int

(** {1 Shared backoff arithmetic} *)

(** [capped_backoff ~base ~cap ~attempt] is
    [min cap (base * 2^attempt)] computed without overflow: correct for
    any [attempt >= 0] (including ones where the shift would wrap) and
    never negative. [Server]'s admission retry uses this directly. *)
val capped_backoff : base:int -> cap:int -> attempt:int -> int
