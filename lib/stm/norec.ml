open Mt_core

type addr = Ctx.addr

exception Abort = Stm_intf.Abort

type t = {
  seqlock : addr;
  mutable commits : int;
  mutable aborts : int;
  mutable vbv_passes : int;
}

type tx = {
  ctx : Ctx.t;
  stm : t;
  mutable snapshot : int;             (* V: last known-consistent even time *)
  mutable reads : (addr * int) list;  (* read set, newest first *)
  writes : (addr, int) Hashtbl.t;     (* write buffer *)
  mutable write_log : addr list;      (* write-back order (reversed) *)
}

let name = "norec"

(* Hook: record the abort (with its cause) on the aborting core's trace
   track; free when tracing is off. *)
let abort_event ctx reason =
  let o = Ctx.obs ctx in
  if Mt_obs.Obs.enabled o then
    Mt_obs.Obs.emit o ~core:(Ctx.core ctx) ~time:(Ctx.now ctx)
      (Mt_obs.Obs.Stm_abort { impl = name; reason })

let create ctx =
  let seqlock = Ctx.alloc ~label:"norec-seqlock" ctx ~words:1 in
  { seqlock; commits = 0; aborts = 0; vbv_passes = 0 }

let commits t = t.commits
let aborts t = t.aborts
let vbv_passes t = t.vbv_passes

let reset_stats t =
  t.commits <- 0;
  t.aborts <- 0;
  t.vbv_passes <- 0

(* Spin until the lock is free (even) and return the sequence number. *)
let rec read_sequence tx =
  let v = Ctx.read tx.ctx tx.stm.seqlock in
  if v land 1 = 1 then begin
    Ctx.work tx.ctx 2;
    read_sequence tx
  end
  else v

(* Value-based validation: raises Abort if the read set is inconsistent;
   otherwise updates the snapshot and returns it. *)
let rec validate tx =
  let time = read_sequence tx in
  tx.stm.vbv_passes <- tx.stm.vbv_passes + 1;
  let consistent =
    List.for_all (fun (a, v) -> Ctx.read tx.ctx a = v) tx.reads
  in
  if not consistent then begin
    abort_event tx.ctx "vbv-inconsistent";
    raise Abort
  end
  else if Ctx.read tx.ctx tx.stm.seqlock = time then begin
    tx.snapshot <- time;
    time
  end
  else validate tx

let read tx a =
  match Hashtbl.find_opt tx.writes a with
  | Some v -> v
  | None ->
      let v = ref (Ctx.read tx.ctx a) in
      while Ctx.read tx.ctx tx.stm.seqlock <> tx.snapshot do
        let (_ : int) = validate tx in
        v := Ctx.read tx.ctx a
      done;
      tx.reads <- (a, !v) :: tx.reads;
      !v

let ctx tx = tx.ctx

let write tx a v =
  if not (Hashtbl.mem tx.writes a) then tx.write_log <- a :: tx.write_log;
  Hashtbl.replace tx.writes a v

let commit tx =
  if Hashtbl.length tx.writes = 0 then ()  (* read-only: nothing to do *)
  else begin
    (* Acquire the sequence lock at our snapshot, validating on conflict. *)
    let rec acquire () =
      if
        not
          (Ctx.cas tx.ctx tx.stm.seqlock ~expected:tx.snapshot
             ~desired:(tx.snapshot + 1))
      then begin
        let (_ : int) = validate tx in
        acquire ()
      end
    in
    acquire ();
    List.iter
      (fun a -> Ctx.write tx.ctx a (Hashtbl.find tx.writes a))
      (List.rev tx.write_log);
    Ctx.write tx.ctx tx.stm.seqlock (tx.snapshot + 2)
  end

let atomically ctx stm body =
  let rec attempt n =
    let tx =
      {
        ctx;
        stm;
        snapshot = 0;
        reads = [];
        writes = Hashtbl.create 16;
        write_log = [];
      }
    in
    tx.snapshot <- read_sequence tx;
    match
      let result = body tx in
      commit tx;
      result
    with
    | result ->
        stm.commits <- stm.commits + 1;
        result
    | exception Abort ->
        stm.aborts <- stm.aborts + 1;
        (* Historical site default: randomized doubling backoff (prevents
           lock-step retry livelock), 16 * 2^n capped at 2048. Runs only
           under the [immediate] policy; otherwise the contention layer
           computes the wait. *)
        Ctx.cm_wait_default ~site:stm.seqlock ctx ~attempt:n
          ~default:(fun () ->
            Mt_sim.Prng.int (Ctx.prng ctx) (min 2048 (16 lsl min n 7)));
        attempt (n + 1)
  in
  attempt 0
