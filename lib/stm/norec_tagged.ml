open Mt_core

type addr = Ctx.addr

exception Abort = Stm_intf.Abort

type t = {
  seqlock : addr;
  mutable commits : int;
  mutable aborts : int;
  mutable vbv_passes : int;
  mutable fast_validations : int;  (* VBVs avoided by a local Validate *)
  mutable demotions : int;         (* attempts that fell off the fast path *)
}

type tx = {
  ctx : Ctx.t;
  stm : t;
  mutable snapshot : int;
  mutable tagged : bool;              (* fast path: read set tracked by tags *)
  mutable reads : (addr * int) list;  (* kept for the VBV fallback *)
  writes : (addr, int) Hashtbl.t;
  mutable write_log : addr list;
}

let name = "norec-tagged"

let obs_event ctx kind =
  let o = Ctx.obs ctx in
  if Mt_obs.Obs.enabled o then
    Mt_obs.Obs.emit o ~core:(Ctx.core ctx) ~time:(Ctx.now ctx) kind

let create ctx =
  let seqlock = Ctx.alloc ~label:"norec-tagged-seqlock" ctx ~words:1 in
  {
    seqlock;
    commits = 0;
    aborts = 0;
    vbv_passes = 0;
    fast_validations = 0;
    demotions = 0;
  }

let commits t = t.commits
let aborts t = t.aborts
let vbv_passes t = t.vbv_passes

let reset_stats t =
  t.commits <- 0;
  t.aborts <- 0;
  t.vbv_passes <- 0;
  t.fast_validations <- 0;
  t.demotions <- 0

let rec read_sequence tx =
  let v = Ctx.read tx.ctx tx.stm.seqlock in
  if v land 1 = 1 then begin
    Ctx.work tx.ctx 2;
    read_sequence tx
  end
  else v

(* NOrec value-based validation (the slow path). Raises Abort on an
   inconsistent read set; otherwise advances the snapshot. *)
let rec validate_vbv tx =
  let time = read_sequence tx in
  tx.stm.vbv_passes <- tx.stm.vbv_passes + 1;
  let consistent = List.for_all (fun (a, v) -> Ctx.read tx.ctx a = v) tx.reads in
  if not consistent then begin
    obs_event tx.ctx (Mt_obs.Obs.Stm_abort { impl = name; reason = "vbv-inconsistent" });
    raise Abort
  end
  else if Ctx.read tx.ctx tx.stm.seqlock = time then begin
    tx.snapshot <- time;
    time
  end
  else validate_vbv tx

(* Drop to the untagged slow path for the rest of this attempt. *)
let demote tx =
  tx.tagged <- false;
  tx.stm.demotions <- tx.stm.demotions + 1;
  obs_event tx.ctx Mt_obs.Obs.Stm_demote;
  Ctx.clear_tag_set tx.ctx

(* Fast revalidation after the tag set broke locally: re-tag the sequence
   lock at its current (even) value and check whether the data tags are
   still intact. If so the whole read set is known consistent *by tags*,
   with no value re-reads — the paper's replacement for VBV. Returns false
   after demoting (caller must go through validate_vbv / slow path). *)
let rec fast_revalidate tx =
  Ctx.remove_tag tx.ctx tx.stm.seqlock ~words:1;
  let v = Ctx.add_tag_read tx.ctx tx.stm.seqlock ~words:1 in
  if v land 1 = 1 then begin
    Ctx.work tx.ctx 2;
    fast_revalidate tx
  end
  else if Ctx.validate tx.ctx then begin
    tx.snapshot <- v;
    tx.stm.fast_validations <- tx.stm.fast_validations + 1;
    true
  end
  else begin
    demote tx;
    false
  end

let slow_read tx a =
  let v = ref (Ctx.read tx.ctx a) in
  while Ctx.read tx.ctx tx.stm.seqlock <> tx.snapshot do
    let (_ : int) = validate_vbv tx in
    v := Ctx.read tx.ctx a
  done;
  tx.reads <- (a, !v) :: tx.reads;
  !v

let read tx a =
  match Hashtbl.find_opt tx.writes a with
  | Some v -> v
  | None ->
      if tx.tagged then begin
        (* Tagged load; post-read validation is a free local check. *)
        let v = Ctx.add_tag_read tx.ctx a ~words:1 in
        if Ctx.validate tx.ctx then begin
          tx.reads <- (a, v) :: tx.reads;
          v
        end
        else if fast_revalidate tx then begin
          tx.reads <- (a, v) :: tx.reads;
          v
        end
        else begin
          (* Demoted: establish consistency by value, then re-read. *)
          let (_ : int) = validate_vbv tx in
          slow_read tx a
        end
      end
      else slow_read tx a

let ctx tx = tx.ctx

let write tx a v =
  if not (Hashtbl.mem tx.writes a) then tx.write_log <- a :: tx.write_log;
  Hashtbl.replace tx.writes a v

let rec acquire_slow tx =
  if
    not
      (Ctx.cas tx.ctx tx.stm.seqlock ~expected:tx.snapshot ~desired:(tx.snapshot + 1))
  then begin
    let (_ : int) = validate_vbv tx in
    acquire_slow tx
  end

(* Acquire the lock on the fast path: a VAS whose tag set covers the lock
   and the whole read set — one atomic step that both validates the reads
   and takes the lock, failing locally on conflict. *)
let rec acquire_fast tx =
  if Ctx.vas tx.ctx tx.stm.seqlock (tx.snapshot + 1) then ()
  else if fast_revalidate tx then acquire_fast tx
  else begin
    let (_ : int) = validate_vbv tx in
    acquire_slow tx
  end

let commit tx =
  if Hashtbl.length tx.writes = 0 then
    (* Read-only: the last successful validation (tag-based or VBV)
       already witnessed a consistent snapshot. *)
    ()
  else begin
    if tx.tagged then acquire_fast tx else acquire_slow tx;
    List.iter
      (fun a -> Ctx.write tx.ctx a (Hashtbl.find tx.writes a))
      (List.rev tx.write_log);
    Ctx.write tx.ctx tx.stm.seqlock (tx.snapshot + 2)
  end

let atomically ctx stm body =
  let rec attempt n =
    Ctx.clear_tag_set ctx;
    let tx =
      {
        ctx;
        stm;
        snapshot = 0;
        tagged = true;
        reads = [];
        writes = Hashtbl.create 16;
        write_log = [];
      }
    in
    (* TXBegin: tag the sequence lock; a writer commit anywhere makes the
       next Validate fail locally, with no lock re-read in the meantime. *)
    let rec tagged_begin () =
      let v = Ctx.add_tag_read ctx stm.seqlock ~words:1 in
      if v land 1 = 1 then begin
        Ctx.work ctx 2;
        Ctx.clear_tag_set ctx;
        tagged_begin ()
      end
      else v
    in
    tx.snapshot <- tagged_begin ();
    match
      let result = body tx in
      commit tx;
      result
    with
    | result ->
        Ctx.clear_tag_set ctx;
        stm.commits <- stm.commits + 1;
        result
    | exception Abort ->
        Ctx.clear_tag_set ctx;
        stm.aborts <- stm.aborts + 1;
        (* Historical site default (randomized doubling backoff); replaced
           by the contention policy when one is active. *)
        Ctx.cm_wait_default ~site:stm.seqlock ctx ~attempt:n
          ~default:(fun () ->
            Mt_sim.Prng.int (Ctx.prng ctx) (min 2048 (16 lsl min n 7)));
        attempt (n + 1)
  in
  attempt 0
