(** Runs a {!Spec} against any {!Mt_list.Set_intf.SET} implementation and
    extracts the three metrics the paper's figures report — throughput, L1
    miss rate, energy — plus per-operation latency percentiles and the
    abort-cause breakdown. *)

type result = {
  impl : string;
  spec : Spec.t;
  ops : int;                   (** operations completed in the window *)
  duration : int;              (** actual simulated cycles of the window *)
  throughput : float;          (** operations per 1000 cycles *)
  l1_miss_rate : float;        (** misses / accesses, in [0,1] *)
  energy : float;              (** total energy of the window (model units) *)
  energy_per_op : float;
  validates : int;
  validate_failures : int;
  validate_failures_spurious : int;
  cas_failures : int;
  latency : Mt_obs.Hist.t;     (** per-op latency of the measured window *)
  stats : Mt_sim.Stats.t;      (** full aggregated counters of the window *)
}

(** [run_set ?cfg ?obs ?make_policy ?series set spec] builds a fresh
    machine (default config sized to [spec.threads] cores unless [cfg] is
    given), populates the structure, runs a warmup window, resets
    counters, and measures. Deterministic in [spec.seed]. When [obs] is a
    recording sink it is attached to the machine (all simulator events)
    and each logical operation additionally appears as a span on its
    core's track.

    [make_policy] builds a custom scheduling policy from the machine
    (e.g. {!Mt_adversary.Scenario.make_policy} applied via a closure) —
    it drives the {e measured} phase only, so one-shot fault pulses are
    not consumed by warmup. [series] attaches windowed telemetry
    ({!Mt_obs.Series}) to the measured phase: the event tap and counter
    baseline are installed after warmup/reset, boundary snapshots fire
    from a scheduler tick, and the tail window is closed at the final
    clock. Requires a recording [obs] (a [retain:false] sink works — the
    series reads the live stream, not the rings).

    [cm] selects the contention-management policy consulted on every
    CAS/VAS/IAS failure and restart (see {!Mt_cm.Cm}); it applies to both
    warmup and measurement so the two phases see the same dynamics. The
    default, {!Mt_cm.Cm.immediate}, reproduces the historical behavior
    byte-for-byte. *)
val run_set :
  ?cfg:Mt_sim.Config.t ->
  ?obs:Mt_obs.Obs.t ->
  ?make_policy:(Mt_sim.Machine.t -> Mt_sim.Runtime.policy) ->
  ?series:Mt_obs.Series.t ->
  ?cm:Mt_cm.Cm.spec ->
  (module Mt_list.Set_intf.SET) ->
  Spec.t ->
  result

(** [run_custom ?cfg ?obs ?make_policy ?series ~name ~setup ~op spec] is
    the generic form used by the STM/vacation benchmarks: [setup] builds
    the shared state on core 0; [op] performs one logical operation (given
    the per-thread PRNG-equipped ctx and the state). Options as in
    {!run_set}. *)
val run_custom :
  ?cfg:Mt_sim.Config.t ->
  ?obs:Mt_obs.Obs.t ->
  ?make_policy:(Mt_sim.Machine.t -> Mt_sim.Runtime.policy) ->
  ?series:Mt_obs.Series.t ->
  ?cm:Mt_cm.Cm.spec ->
  name:string ->
  setup:(Mt_core.Ctx.t -> 'a) ->
  op:(Mt_core.Ctx.t -> 'a -> unit) ->
  Spec.t ->
  result

(** One human-readable row: throughput, L1 miss rate, energy/op, latency
    p50/p99, and the abort-cause breakdown (real vs spurious validation
    failures, CAS failures). *)
val pp_result : Format.formatter -> result -> unit

(** Stable machine-readable form of one point (the [BENCH_*.json] per-point
    schema): metrics, latency summary, abort breakdown, raw counters, and a
    fully self-describing ["spec"] object (key range, fill, mix, threads,
    warmup/measure windows, seed — everything needed to replay the point;
    [bin/json_check.exe --bench] enforces its presence for schema
    version >= 2). *)
val result_to_json : result -> Mt_obs.Json.t
