(* Metric-by-metric comparison of two BENCH JSON documents (the
   regression sentinel's engine; bin/bench_diff.exe is the CLI).

   The two documents are walked structurally in parallel. Three kinds of
   disagreement are distinguished:

   - {b structural}: a key present in the baseline is missing from the
     current document, a list changed length, or an identity field (an
     implementation name, a workload label, the "quick" flag) changed.
     The schema contract is extend-don't-remove, so any of these means
     the documents are not comparable — the diff fails loudly rather
     than reporting a half-comparison.

   - {b regression}: a known performance metric moved outside its
     tolerance band in the bad direction (throughput down, tail latency
     up, ...). Bands are generous by design: the sentinel exists to
     catch accidental order-of-magnitude damage (a lost optimization, a
     retry storm), not to freeze every third decimal — deterministic
     sim counters shift whenever any scheduling detail changes, and
     that churn must not block unrelated work.

   - {b improvement}: the same band test, passed in the good direction
     by more than the tolerance. Reported but never fatal (regenerating
     the committed baseline is still worthwhile so future regressions
     are measured from the better level).

   Every other leaf — raw event counts, histogram buckets, energy
   totals, spec echoes — is deliberately ignored: those drift with any
   behavioural change and carry no direction. *)

module Json = Mt_obs.Json

type direction = Higher_better | Lower_better

type band = {
  dir : direction;
  rel : float;  (** allowed relative drift in the bad direction *)
  abs : float;  (** absolute slack added on top (units of the metric) *)
}

(* The watched metrics, keyed by JSON field name wherever they appear in
   the document. Latency percentiles get absolute slack on top of the
   relative band: a p50 of 40 cycles doubling to 80 is noise, a p99 of
   40k cycles doubling is a saturation collapse. *)
let default_bands : (string * band) list =
  [
    ("throughput_per_kcycle", { dir = Higher_better; rel = 0.30; abs = 0.0 });
    ("goodput_per_kcycle", { dir = Higher_better; rel = 0.30; abs = 0.0 });
    ("measured_peak_speedup", { dir = Higher_better; rel = 0.30; abs = 0.0 });
    ("energy_per_op", { dir = Lower_better; rel = 0.30; abs = 0.0 });
    ("l1_miss_rate", { dir = Lower_better; rel = 0.0; abs = 0.02 });
    ("drop_rate", { dir = Lower_better; rel = 0.0; abs = 0.05 });
    ("p50", { dir = Lower_better; rel = 0.50; abs = 64.0 });
    ("p90", { dir = Lower_better; rel = 0.50; abs = 64.0 });
    ("p99", { dir = Lower_better; rel = 0.50; abs = 64.0 });
    ("p999", { dir = Lower_better; rel = 0.50; abs = 64.0 });
    ("mean", { dir = Lower_better; rel = 0.50; abs = 64.0 });
  ]

(* Fields whose change means the two documents describe different
   experiments, not different performance. *)
let identity_keys =
  [
    "impl"; "backend"; "comparison"; "workload"; "scenario"; "mode";
    "queues"; "admission"; "arrival"; "paper_claim"; "fault_spec";
    "generator"; "quick"; "skipped"; "calibration"; "policy"; "theta";
  ]

(* Subtrees that are host- or wall-clock-dependent by contract. *)
let skip_keys = [ "notes" ]

type finding = {
  path : string;
  metric : string;
  base : float;
  cur : float;
  allowed : float;  (** the band edge the bad direction is tested against *)
}

type report = {
  mutable compared : int;  (** watched metrics tested against their band *)
  mutable improved : finding list;
  mutable regressed : finding list;
  mutable structural : string list;
}

let path_str rev = String.concat "" (List.rev rev)

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let check_metric r ~path ~metric band base cur =
  r.compared <- r.compared + 1;
  let slack = (band.rel *. Float.abs base) +. band.abs in
  let bad_edge, good_edge =
    match band.dir with
    | Higher_better -> (base -. slack, base +. slack)
    | Lower_better -> (base +. slack, base -. slack)
  in
  let finding allowed = { path; metric; base; cur; allowed } in
  match band.dir with
  | Higher_better ->
      if cur < bad_edge then r.regressed <- finding bad_edge :: r.regressed
      else if cur > good_edge then r.improved <- finding good_edge :: r.improved
  | Lower_better ->
      if cur > bad_edge then r.regressed <- finding bad_edge :: r.regressed
      else if cur < good_edge then r.improved <- finding good_edge :: r.improved

let compare_docs ?(bands = default_bands) ~baseline ~current () =
  let r = { compared = 0; improved = []; regressed = []; structural = [] } in
  let structural rev fmt =
    Printf.ksprintf
      (fun s -> r.structural <- (path_str rev ^ ": " ^ s) :: r.structural)
      fmt
  in
  let field_of rev =
    match rev with
    | last :: _ when String.length last > 1 && last.[0] = '.' ->
        String.sub last 1 (String.length last - 1)
    | _ -> ""
  in
  let rec walk rev base cur =
    match (base, cur) with
    | Json.Obj bf, Json.Obj cf ->
        List.iter
          (fun (k, bv) ->
            if not (List.mem k skip_keys) then
              match List.assoc_opt k cf with
              | None -> structural (("." ^ k) :: rev) "missing from current"
              | Some cv -> walk (("." ^ k) :: rev) bv cv)
          bf
    | Json.List bl, Json.List cl ->
        let nb = List.length bl and nc = List.length cl in
        if nb <> nc then structural rev "list length changed (%d -> %d)" nb nc
        else
          List.iteri
            (fun i (b, c) -> walk (Printf.sprintf "[%d]" i :: rev) b c)
            (List.combine bl cl)
    | (Json.Int _ | Json.Float _), (Json.Int _ | Json.Float _) -> (
        let metric = field_of rev in
        let b = Option.get (number base) and c = Option.get (number cur) in
        match List.assoc_opt metric bands with
        | Some band -> check_metric r ~path:(path_str rev) ~metric band b c
        | None ->
            if List.mem metric identity_keys && b <> c then
              structural rev "identity value changed (%g -> %g)" b c)
    | Json.String b, Json.String c ->
        if List.mem (field_of rev) identity_keys && b <> c then
          structural rev "identity value changed (%S -> %S)" b c
    | Json.Bool b, Json.Bool c ->
        if List.mem (field_of rev) identity_keys && b <> c then
          structural rev "identity value changed (%b -> %b)" b c
    | Json.Null, Json.Null -> ()
    | _ -> structural rev "value kind changed"
  in
  walk [] baseline current;
  { r with improved = List.rev r.improved; regressed = List.rev r.regressed;
           structural = List.rev r.structural }

let ok r = r.regressed = [] && r.structural = []
