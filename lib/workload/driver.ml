open Mt_sim
open Mt_core
module Obs = Mt_obs.Obs
module Hist = Mt_obs.Hist
module Json = Mt_obs.Json
module Series = Mt_obs.Series

type result = {
  impl : string;
  spec : Spec.t;
  ops : int;
  duration : int;
  throughput : float;
  l1_miss_rate : float;
  energy : float;
  energy_per_op : float;
  validates : int;
  validate_failures : int;
  validate_failures_spurious : int;
  cas_failures : int;
  latency : Hist.t;
  stats : Stats.t;
}

let run_custom ?cfg ?(obs = Obs.null) ?make_policy ?series ?cm ~name ~setup
    ~op (spec : Spec.t) =
  let cfg =
    match cfg with Some c -> c | None -> Config.default ~num_cores:spec.threads ()
  in
  if cfg.Config.num_cores < spec.threads then
    invalid_arg "Driver: machine has fewer cores than spec threads";
  if series <> None && not (Obs.enabled obs) then
    invalid_arg "Driver: ?series needs a recording obs sink (retain:false ok)";
  let m = Machine.create ~obs cfg in
  let state = Harness.exec1 m ~seed:spec.seed (fun ctx -> setup ctx) in
  let counts = Array.make spec.threads 0 in
  let latency = Hist.create () in
  let phase ?policy ?tick ~seed ~horizon ~record () =
    Harness.exec m ~seed ?policy ?tick ?cm ~threads:spec.threads (fun ctx ->
        let core = Ctx.core ctx in
        let ops = ref 0 in
        while Ctx.now ctx < horizon do
          let t0 = Ctx.now ctx in
          if Obs.enabled obs then
            Obs.emit obs ~core ~time:t0 (Obs.Span_begin { name });
          op ctx state;
          let t1 = Ctx.now ctx in
          if Obs.enabled obs then
            Obs.emit obs ~core ~time:t1 (Obs.Span_end { name });
          if record then Hist.add latency (t1 - t0);
          incr ops
        done;
        if record then counts.(core) <- !ops)
  in
  let (_ : int) =
    phase ~seed:(spec.seed + 17) ~horizon:spec.warmup_cycles ~record:false ()
  in
  Machine.reset_stats m;
  (* The series observes the measured phase only: the tap attaches after
     warmup and the counter baseline is the post-reset state. A custom
     policy (fault injection) likewise only drives the measured phase —
     one-shot squeeze pulses must not be consumed by warmup. *)
  let snap () = Stats.series_counters (Machine.total_stats m) in
  (match series with
  | Some s ->
      Series.set_baseline s (snap ());
      Obs.set_tap obs (Some (Series.feed s))
  | None -> ());
  let policy = Option.map (fun f -> f m) make_policy in
  let tick =
    Option.map
      (fun s ->
        (Series.window_cycles s, fun ~now -> Series.snapshot s ~time:now (snap ())))
      series
  in
  let duration =
    phase ?policy ?tick ~seed:(spec.seed + 31) ~horizon:spec.measure_cycles
      ~record:true ()
  in
  (match series with
  | Some s ->
      Series.finish s ~time:duration (snap ());
      Obs.set_tap obs None
  | None -> ());
  let stats = Machine.total_stats m in
  let ops = Array.fold_left ( + ) 0 counts in
  let energy = Stats.energy cfg stats ~cycles:(duration * spec.threads) in
  {
    impl = name;
    spec;
    ops;
    duration;
    throughput = (if duration = 0 then 0.0 else 1000.0 *. float_of_int ops /. float_of_int duration);
    l1_miss_rate = Stats.l1_miss_rate stats;
    energy;
    energy_per_op = (if ops = 0 then 0.0 else energy /. float_of_int ops);
    validates = stats.Stats.validates;
    validate_failures = stats.Stats.validate_failures;
    validate_failures_spurious = stats.Stats.validate_failures_spurious;
    cas_failures = stats.Stats.cas_failures;
    latency;
    stats;
  }

let run_set ?cfg ?obs ?make_policy ?series ?cm
    (module S : Mt_list.Set_intf.SET) (spec : Spec.t) =
  let setup ctx =
    let s = S.create ctx in
    let g = Prng.create ~seed:(spec.seed + 1) in
    for k = 0 to spec.key_range - 1 do
      if Prng.float g < spec.init_fill then ignore (S.insert ctx s k)
    done;
    s
  in
  let op ctx s =
    let g = Ctx.prng ctx in
    let k = Prng.int g spec.key_range in
    let r = Prng.int g 100 in
    if r < spec.insert_pct then ignore (S.insert ctx s k)
    else if r < spec.insert_pct + spec.delete_pct then ignore (S.delete ctx s k)
    else ignore (S.contains ctx s k)
  in
  run_custom ?cfg ?obs ?make_policy ?series ?cm ~name:S.name ~setup ~op spec

let pp_result ppf r =
  Format.fprintf ppf
    "%-14s %-22s ops %7d  thr %8.2f/kcyc  L1miss %5.2f%%  E/op %8.1f  lat p50/p99 %d/%d  \
     aborts: vfail %d (real %d, spurious %d) casfail %d"
    r.impl (Spec.to_string r.spec) r.ops r.throughput (100.0 *. r.l1_miss_rate)
    r.energy_per_op
    (Hist.percentile r.latency 50.0)
    (Hist.percentile r.latency 99.0)
    r.validate_failures
    (r.validate_failures - r.validate_failures_spurious)
    r.validate_failures_spurious r.cas_failures

(* Stable machine-readable form: one benchmark point. Field set and order
   are part of the BENCH_*.json schema — extend, don't reorder. *)
let result_to_json r =
  let s = r.stats in
  Json.Obj
    [
      ("impl", Json.String r.impl);
      ("workload", Json.String (Spec.to_string r.spec));
      ("threads", Json.Int r.spec.Spec.threads);
      ("key_range", Json.Int r.spec.Spec.key_range);
      ("seed", Json.Int r.spec.Spec.seed);
      (* Fully self-describing spec: everything needed to replay the point. *)
      ("spec",
       Json.Obj
         [
           ("key_range", Json.Int r.spec.Spec.key_range);
           ("init_fill", Json.Float r.spec.Spec.init_fill);
           ("insert_pct", Json.Int r.spec.Spec.insert_pct);
           ("delete_pct", Json.Int r.spec.Spec.delete_pct);
           ("threads", Json.Int r.spec.Spec.threads);
           ("warmup_cycles", Json.Int r.spec.Spec.warmup_cycles);
           ("measure_cycles", Json.Int r.spec.Spec.measure_cycles);
           ("seed", Json.Int r.spec.Spec.seed);
         ]);
      ("ops", Json.Int r.ops);
      ("duration_cycles", Json.Int r.duration);
      ("throughput_per_kcycle", Json.Float r.throughput);
      ("l1_miss_rate", Json.Float r.l1_miss_rate);
      ("energy", Json.Float r.energy);
      ("energy_per_op", Json.Float r.energy_per_op);
      ("latency_cycles", Hist.to_json r.latency);
      ("aborts",
       Json.Obj
         [
           ("validates", Json.Int r.validates);
           ("validate_failures", Json.Int r.validate_failures);
           ("validate_failures_real",
            Json.Int (r.validate_failures - r.validate_failures_spurious));
           ("validate_failures_spurious", Json.Int r.validate_failures_spurious);
           ("cas_failures", Json.Int r.cas_failures);
           ("vas_failures", Json.Int s.Stats.vas_failures);
           ("ias_failures", Json.Int s.Stats.ias_failures);
           ("tag_overflows", Json.Int s.Stats.tag_overflows);
         ]);
      ("counters",
       Json.Obj
         [
           ("loads", Json.Int s.Stats.loads);
           ("stores", Json.Int s.Stats.stores);
           ("cas_ops", Json.Int s.Stats.cas_ops);
           ("vas_ops", Json.Int s.Stats.vas_ops);
           ("ias_ops", Json.Int s.Stats.ias_ops);
           ("l1_hits", Json.Int s.Stats.l1_hits);
           ("l1_misses", Json.Int s.Stats.l1_misses);
           ("l2_hits", Json.Int s.Stats.l2_hits);
           ("l2_misses", Json.Int s.Stats.l2_misses);
           ("invalidations_sent", Json.Int s.Stats.invalidations_sent);
           ("invalidations_received", Json.Int s.Stats.invalidations_received);
           ("downgrades_received", Json.Int s.Stats.downgrades_received);
           ("writebacks", Json.Int s.Stats.writebacks);
           ("coherence_msgs", Json.Int s.Stats.coherence_msgs);
           ("tag_adds", Json.Int s.Stats.tag_adds);
           ("tag_removes", Json.Int s.Stats.tag_removes);
         ]);
    ]
