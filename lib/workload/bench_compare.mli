(** The regression sentinel's engine: metric-by-metric comparison of two
    BENCH JSON documents ([bin/bench_diff.exe] is the CLI).

    The baseline and current documents are walked structurally in
    parallel. Watched performance metrics (throughput, goodput, latency
    percentiles, drop and miss rates, peak speedups) are tested against
    per-metric tolerance {!band}s; a move outside the band in the bad
    direction is a {e regression}, in the good direction an {e
    improvement} (reported, never fatal). A baseline key missing from the
    current document, a changed list length, or a changed identity field
    (implementation name, workload label, ...) is a {e structural}
    failure — the documents are not comparable. All other leaves (raw
    counters, histogram buckets, spec echoes) are ignored: they drift
    with any behavioural change and carry no better/worse direction. The
    host-dependent ["notes"] subtree is skipped by contract. *)

module Json = Mt_obs.Json

type direction = Higher_better | Lower_better

type band = {
  dir : direction;
  rel : float;  (** allowed relative drift in the bad direction *)
  abs : float;  (** absolute slack added on top (units of the metric) *)
}

(** Field name -> band for every watched metric (latency percentiles get
    absolute slack so small-count histograms don't trip the relative
    band). Override per metric via the [?bands] argument or the CLI's
    [--tol]. *)
val default_bands : (string * band) list

type finding = {
  path : string;  (** dotted path of the leaf in the document *)
  metric : string;  (** the watched field name *)
  base : float;
  cur : float;
  allowed : float;  (** the band edge the bad direction is tested against *)
}

type report = {
  mutable compared : int;  (** watched metrics tested against their band *)
  mutable improved : finding list;
  mutable regressed : finding list;
  mutable structural : string list;  (** human-readable mismatch messages *)
}

(** [compare_docs ?bands ~baseline ~current ()] — walk both documents
    and classify every disagreement. Never raises on well-formed JSON. *)
val compare_docs :
  ?bands:(string * band) list -> baseline:Json.t -> current:Json.t -> unit ->
  report

(** No regressions and no structural mismatches (improvements are ok). *)
val ok : report -> bool
