(** Multi-word compare-and-swap after Harris, Fraser and Pratt (DISC 2002),
    built on RDCSS descriptors in simulated memory, plus the tag-based
    accelerations the paper sketches in Section 1: cheap lock-free
    snapshots of a set of locations, and a fail-fast kCAS that detects a
    doomed operation locally before writing any descriptor.

    kCAS words hold {e encoded} client values (2 tag bits are reserved to
    distinguish descriptors), so cells managed by this module must be
    written through {!set}/{!kcas} and read through {!get}. Client values
    must fit in 60 bits and be non-negative. *)

type addr = Mt_core.Ctx.addr

(** An update of one word: [addr] from [expected] to [desired]. *)
type update = { addr : addr; expected : int; desired : int }

(** [init ctx addr v] initialises a kCAS-managed cell (unsynchronized;
    use before the cell is shared). *)
val init : Mt_core.Ctx.t -> addr -> int -> unit

(** [get ctx addr] reads a kCAS-managed cell, helping any operation in
    progress there. *)
val get : Mt_core.Ctx.t -> addr -> int

(** [get_tagged ctx addr] — like {!get}, but the read is a tagged load
    (fused AddTag + read), so the caller's next [Ctx.validate] certifies
    the cell unchanged since this read. The caller owns the tag set. *)
val get_tagged : Mt_core.Ctx.t -> addr -> int

(** [cas ctx addr ~expected ~desired] — single-word CAS on a kCAS-managed
    cell (the degenerate 1-CAS, no descriptor): helps any operation in
    progress, then succeeds iff the cell holds [expected]. *)
val cas : Mt_core.Ctx.t -> addr -> expected:int -> desired:int -> bool

(** [kcas ctx updates] atomically applies all updates iff every cell holds
    its expected value. Lock-free (helps conflicting operations).
    Duplicate addresses are invalid. *)
val kcas : Mt_core.Ctx.t -> update list -> bool

(** [kcas_tagged ctx updates] — same semantics, with the MemTags fast
    path: all target cells are tagged and compared first; a mismatch or a
    broken tag fails/retries locally before any descriptor is installed,
    avoiding the coherence traffic of doomed install CASes. *)
val kcas_tagged : Mt_core.Ctx.t -> update list -> bool

(** [snapshot ctx addrs] — an atomic snapshot of the cells obtained by
    tagging, reading, and validating (retrying on conflict); the paper's
    "cheap lock-free snapshots". Returns [None] if [addrs] exceeds the
    tag capacity. *)
val snapshot : Mt_core.Ctx.t -> addr list -> int list option
