open Mt_core

type addr = Ctx.addr

type update = { addr : addr; expected : int; desired : int }

(* Word encoding: plain values carry tag 00 (value lsl 2); an RDCSS
   descriptor pointer carries tag 01; an MCAS descriptor pointer tag 10.
   Descriptor addresses are word addresses, so shifting loses nothing. *)
let enc v =
  if v < 0 || v >= 1 lsl 60 then invalid_arg "Kcas: value out of range";
  v lsl 2

let dec w = w lsr 2
let rdcss_ptr d = (d lsl 2) lor 1
let mcas_ptr d = (d lsl 2) lor 2
let is_rdcss w = w land 3 = 1
let is_mcas w = w land 3 = 2
let desc_of w = w lsr 2

(* MCAS descriptor layout: [0] status, [1] n, then n triples
   (addr, expected, desired) — expected/desired already encoded. *)
let undecided = 0
let succeeded = 1
let failed = 2

(* RDCSS descriptor: [0] status_addr (a1), [1] expected_status (o1),
   [2] target (a2), [3] expected (o2), [4] new value (n2). *)

let init ctx a v = Ctx.write ctx a (enc v)

(* Complete an RDCSS whose descriptor is installed at its target: keep the
   new value iff the MCAS is still undecided, else roll back. *)
let rdcss_complete ctx d =
  let a1 = Ctx.read ctx d in
  let o1 = Ctx.read ctx (d + 1) in
  let a2 = Ctx.read ctx (d + 2) in
  let o2 = Ctx.read ctx (d + 3) in
  let n2 = Ctx.read ctx (d + 4) in
  let v = Ctx.read ctx a1 in
  if v = o1 then ignore (Ctx.cas ctx a2 ~expected:(rdcss_ptr d) ~desired:n2)
  else ignore (Ctx.cas ctx a2 ~expected:(rdcss_ptr d) ~desired:o2)

(* RDCSS(a1, o1, a2, o2, n2): write n2 into a2 iff a2 = o2 and a1 = o1. *)
let rdcss ctx ~a1 ~o1 ~a2 ~o2 ~n2 =
  let d = Ctx.alloc ~label:"rdcss-desc" ctx ~words:5 in
  Ctx.write ctx d a1;
  Ctx.write ctx (d + 1) o1;
  Ctx.write ctx (d + 2) a2;
  Ctx.write ctx (d + 3) o2;
  Ctx.write ctx (d + 4) n2;
  let rec install () =
    let ok = Ctx.cas ctx a2 ~expected:o2 ~desired:(rdcss_ptr d) in
    if ok then begin
      rdcss_complete ctx d;
      o2
    end
    else begin
      let r = Ctx.read ctx a2 in
      if is_rdcss r then begin
        rdcss_complete ctx (desc_of r);
        install ()
      end
      else if r = o2 then install () (* changed back between CAS and read *)
      else r
    end
  in
  install ()

(* Hook: a thread found a competing MCAS descriptor installed and is
   helping it complete — the contention signal of the lock-free protocol. *)
let help_event ctx d =
  let o = Ctx.obs ctx in
  if Mt_obs.Obs.enabled o then
    Mt_obs.Obs.emit o ~core:(Ctx.core ctx) ~time:(Ctx.now ctx)
      (Mt_obs.Obs.Kcas_help { addr = d })

let rec mcas_help ctx d =
  let n = Ctx.read ctx (d + 1) in
  let entry i = (Ctx.read ctx (d + 2 + (3 * i)), Ctx.read ctx (d + 3 + (3 * i))) in
  (* Phase 1: install the descriptor into every target via RDCSS, helping
     or deciding FAILED on a genuine value mismatch. *)
  let rec install i =
    if i >= n then ignore (Ctx.cas ctx d ~expected:undecided ~desired:succeeded)
    else begin
      let a, e = entry i in
      let r = rdcss ctx ~a1:d ~o1:undecided ~a2:a ~o2:e ~n2:(mcas_ptr d) in
      if r = e || r = mcas_ptr d then install (i + 1)
      else if is_mcas r then begin
        help_event ctx (desc_of r);
        ignore (mcas_help ctx (desc_of r));
        install i
      end
      else ignore (Ctx.cas ctx d ~expected:undecided ~desired:failed)
    end
  in
  if Ctx.read ctx d = undecided then install 0;
  (* Phase 2: resolve every slot according to the decision. *)
  let final = Ctx.read ctx d in
  for i = 0 to n - 1 do
    let a, e = entry i in
    let desired = if final = succeeded then Ctx.read ctx (d + 4 + (3 * i)) else e in
    ignore (Ctx.cas ctx a ~expected:(mcas_ptr d) ~desired)
  done;
  final = succeeded

let check_updates updates =
  if updates = [] then invalid_arg "Kcas.kcas: no updates";
  let addrs = List.map (fun u -> u.addr) updates in
  if List.length (List.sort_uniq compare addrs) <> List.length addrs then
    invalid_arg "Kcas.kcas: duplicate addresses"

let build_descriptor ctx updates =
  (* Sorted by address: the canonical deadlock/livelock avoidance. *)
  let updates = List.sort (fun u1 u2 -> compare u1.addr u2.addr) updates in
  let n = List.length updates in
  let d = Ctx.alloc ~label:"mcas-desc" ctx ~words:(2 + (3 * n)) in
  Ctx.write ctx d undecided;
  Ctx.write ctx (d + 1) n;
  List.iteri
    (fun i u ->
      Ctx.write ctx (d + 2 + (3 * i)) u.addr;
      Ctx.write ctx (d + 3 + (3 * i)) (enc u.expected);
      Ctx.write ctx (d + 4 + (3 * i)) (enc u.desired))
    updates;
  d

let kcas ctx updates =
  check_updates updates;
  mcas_help ctx (build_descriptor ctx updates)

let rec get ctx a =
  let w = Ctx.read ctx a in
  if is_rdcss w then begin
    rdcss_complete ctx (desc_of w);
    get ctx a
  end
  else if is_mcas w then begin
    help_event ctx (desc_of w);
    ignore (mcas_help ctx (desc_of w));
    get ctx a
  end
  else dec w

(* Fused AddTag + read of one kCAS-managed cell: the caller's next
   [Ctx.validate] covers it. Descriptors caught mid-flight are helped to
   completion first (helping writes the cell, so the re-read re-tags). *)
let rec get_tagged ctx a =
  let w = Ctx.add_tag_read ctx a ~words:1 in
  if is_rdcss w then begin
    rdcss_complete ctx (desc_of w);
    get_tagged ctx a
  end
  else if is_mcas w then begin
    help_event ctx (desc_of w);
    ignore (mcas_help ctx (desc_of w));
    get_tagged ctx a
  end
  else dec w

(* Single-word CAS on a kCAS-managed cell: the degenerate 1-CAS, without
   descriptor allocation. Helps any operation in progress, then decides on
   the plain value. *)
let cas ctx a ~expected ~desired =
  (* Helping rounds re-enter at the same attempt (they make progress);
     only a lost CAS race counts as a contention failure. *)
  let rec go attempt =
    let w = Ctx.read ctx a in
    if is_rdcss w then begin
      rdcss_complete ctx (desc_of w);
      go attempt
    end
    else if is_mcas w then begin
      help_event ctx (desc_of w);
      ignore (mcas_help ctx (desc_of w));
      go attempt
    end
    else if w <> enc expected then false
    else if Ctx.cas ctx a ~expected:w ~desired:(enc desired) then true
    else begin
      Ctx.cm_wait ~site:a ctx ~attempt;
      go (attempt + 1)
    end
  in
  go 0

(* Fail-fast front end: tag + compare all cells first. A clean mismatch is
   a local failure with zero writes; tag breakage means contention, so we
   just fall through to the robust path. *)
let kcas_tagged ctx updates =
  check_updates updates;
  let all_match =
    List.for_all
      (fun u -> Ctx.add_tag_read ctx u.addr ~words:1 = enc u.expected)
      updates
  in
  if (not all_match) && Ctx.validate ctx then begin
    (* Some cell definitely holds a non-expected value (it may be a
       descriptor in progress — then we are not sure, keep going). *)
    let descriptor_seen =
      List.exists
        (fun u ->
          let w = Ctx.read ctx u.addr in
          is_rdcss w || is_mcas w)
        updates
    in
    Ctx.clear_tag_set ctx;
    if descriptor_seen then kcas ctx updates else false
  end
  else begin
    Ctx.clear_tag_set ctx;
    kcas ctx updates
  end

(* Hooks: one event per snapshot attempt, one per failed validation, so
   scan/snapshot retry storms show up in abort breakdowns next to STM
   aborts and kCAS helping. *)
let snap_event ctx kind =
  let o = Ctx.obs ctx in
  if Mt_obs.Obs.enabled o then
    Mt_obs.Obs.emit o ~core:(Ctx.core ctx) ~time:(Ctx.now ctx) kind

let snapshot ctx addrs =
  let max_tags = (Mt_sim.Machine.cfg (Ctx.machine ctx)).Mt_sim.Config.max_tags in
  let cells = List.length addrs in
  if cells > max_tags then None
  else begin
    let site = match addrs with a :: _ -> a | [] -> 0 in
    let rec attempt n =
      snap_event ctx (Mt_obs.Obs.Snap_attempt { cells });
      Ctx.clear_tag_set ctx;
      let values = List.map (fun a -> Ctx.add_tag_read ctx a ~words:1) addrs in
      if
        Ctx.validate ctx
        && List.for_all (fun w -> not (is_rdcss w || is_mcas w)) values
      then begin
        Ctx.clear_tag_set ctx;
        Some (List.map dec values)
      end
      else begin
        snap_event ctx (Mt_obs.Obs.Snap_invalid { cells });
        (* Help any operation we caught mid-flight, then retry. *)
        List.iter
          (fun w ->
            if is_rdcss w then rdcss_complete ctx (desc_of w)
            else if is_mcas w then ignore (mcas_help ctx (desc_of w)))
          values;
        Ctx.cm_wait ~site ctx ~attempt:n;
        attempt (n + 1)
      end
    in
    attempt 0
  end
