(** The simulated multi-core machine.

    Functional memory contents live in {!Memory}; this module layers the
    timing model on top: per-core private L1/L2 caches, a MESI directory,
    and the per-core MemTag units. Every operation records the latency it
    cost in cycles, readable as {!last_latency} immediately after the call
    (operations whose only interesting result {e is} the latency return it
    directly as well); the caller (normally {!Memtags.Ctx} in [lib/core])
    is responsible for stalling its fiber by that amount, which is what
    makes coherence traffic translate into lost throughput. Returning the
    value bare rather than as a [(value, latency)] pair keeps the per-access
    hot path allocation-free (DESIGN §12).

    All operations are atomic with respect to the fiber scheduler (fibers
    are only preempted when they stall), so [cas]/[vas]/[ias] need no
    further synchronization — exactly like single instructions in
    Graphite's interleaving. *)

type t

(** [create ?obs cfg] — [obs] (default {!Mt_obs.Obs.null}) is the machine's
    observability sink; every coherence, tag and validation action emits a
    structured event into it when recording is enabled, at zero cost
    otherwise (one branch per hook, no allocation). *)
val create : ?obs:Mt_obs.Obs.t -> Config.t -> t

val cfg : t -> Config.t
val memory : t -> Memory.t
val num_cores : t -> int

(** The sink passed at creation (or the null sink). *)
val obs : t -> Mt_obs.Obs.t

(** Latency in cycles of the most recent operation on this machine (any
    core). Read it before issuing the next operation. *)
val last_latency : t -> int

(** Per-core counters; [core] must be in [0 .. num_cores-1]. *)
val stats : t -> core:int -> Stats.t

(** Aggregate of all cores' counters (fresh copy). *)
val total_stats : t -> Stats.t

(** Zero all counters (used to discard warmup). *)
val reset_stats : t -> unit

(** [alloc ?label t ~words] allocates zeroed, line-aligned simulated
    memory. [label] attributes the lines to an owning structure in the
    hot-line contention profiler (recorded only when tracing is on). *)
val alloc : ?label:string -> t -> words:int -> Memory.addr

(** {1 Plain memory operations} — results are bare values; latency via
    {!last_latency}. *)

val read : t -> core:int -> Memory.addr -> int

(** Returns the charged (store-buffered) latency, which is also what
    {!last_latency} reports. *)
val write : t -> core:int -> Memory.addr -> int -> int

(** [cas t ~core addr ~expected ~desired] — a failed CAS still acquires the
    line exclusively (that is the coherence cost VAS avoids). *)
val cas : t -> core:int -> Memory.addr -> expected:int -> desired:int -> bool

(** Fetch-and-add; returns the previous value. *)
val faa : t -> core:int -> Memory.addr -> int -> int

(** {1 MemTags operations} (paper Section 3). *)

(** [add_tag t ~core addr ~words] tags every line overlapping the range,
    fetching each line (read rights) as a side effect. Returns the total
    latency. *)
val add_tag : t -> core:int -> Memory.addr -> words:int -> int

(** [add_tag_read t ~core addr ~words] tags the range and returns the word
    at [addr] in the same access — modelling a load that carries a tag
    annotation, the common pattern "AddTag(x); read x" fused into one
    memory operation. *)
val add_tag_read : t -> core:int -> Memory.addr -> words:int -> int

val remove_tag : t -> core:int -> Memory.addr -> words:int -> int

(** [validate t ~core] — succeeds iff no tagged line was invalidated or
    evicted since tagging and the tag set never overflowed. Purely local:
    generates no coherence traffic. Does not modify the tag set. *)
val validate : t -> core:int -> bool

val clear_tag_set : t -> core:int -> int

(** Validate-and-swap. On validation failure, fails locally without any
    coherence traffic. On success, acquires the target line exclusively
    (invalidating remote copies and their tags) and stores. *)
val vas : t -> core:int -> Memory.addr -> int -> bool

(** Invalidate-and-swap. On success, additionally acquires {e every}
    currently tagged line exclusively, invalidating remote copies — the
    "transient marking" that aborts concurrent tagged traversals — then
    stores to the target. Each remote tagger interrogated counts as a tag
    probe ({!Stats.t.tag_probes_sent}/[received]) whether or not it still
    held a cached copy; [invalidations_sent/received] count only the
    probes that killed one. *)
val ias : t -> core:int -> Memory.addr -> int -> bool

(** Number of lines currently tracked by the core's tag unit. *)
val tag_count : t -> core:int -> int

(** {1 Fault-injection hooks} (adversarial scenario engine, [lib/adversary]). *)

(** [set_max_tags t n] retargets every core's tag-capacity ceiling mid-run
    — the adversary's Max_Tags-shrink fault. A core whose tag set already
    exceeds [n] latches overflow and fails its next validation spuriously
    (it recovers at its next [clear_tag_set]). No coherence traffic, no
    latency, no events: architectural state only, so an injected run stays
    a pure function of its seed. *)
val set_max_tags : t -> int -> unit

(** The current (possibly injected) ceiling; cores always agree. *)
val max_tags : t -> int

(** Direct read of simulated memory without touching the timing model
    (for assertions, invariant checkers and tests only). *)
val peek : t -> Memory.addr -> int

(** Direct write bypassing the timing model (test setup only). *)
val poke : t -> Memory.addr -> int -> unit

(** [check_coherence t] walks every cache, the directory and the tag units
    and raises [Failure] with a description on the first violated MESI
    invariant: L1 ⊆ L2 inclusion (same state at both levels), every
    resident line known to the directory with matching rights (which gives
    at-most-one M/E owner), and no phantom directory holders. For tests
    and fuzzing — never on the hot path. *)
val check_coherence : t -> unit
