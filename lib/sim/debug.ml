(* Global switch for the simulator's internal sanity checks (memory bounds
   checks, cache insertion asserts). Off by default: the checks sit on the
   per-access hot path and the fuzz/test harnesses — which hunt for the
   bugs the checks would catch — turn them on explicitly. *)

let enabled =
  ref
    (match Sys.getenv_opt "MEMTAG_DEBUG_CHECKS" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let set b = enabled := b
let on () = !enabled
