(** Cooperative fiber runtime driven by simulated time.

    Each simulated thread runs as an OCaml 5 effect-handled fiber pinned to
    one simulated core. Whenever a fiber incurs simulated latency it
    performs {!stall}; the scheduler then resumes whichever fiber has the
    smallest local clock (ties broken by fiber id), giving a deterministic
    interleaving at memory-access granularity — the granularity at which
    coherence races occur on real hardware and in Graphite.

    The runtime is single-OS-threaded; at most one [run] may be active at a
    time per process (enforced). *)

type t

(** A scheduling policy decides how ready fibers are ordered. The default
    resumes the fiber with the smallest local clock, ties broken by fiber
    id — the "hardware-faithful" schedule. Alternative policies perturb
    that order to explore other coherence interleavings of the same
    program; every policy is deterministic given its construction
    parameters, so any schedule can be replayed exactly from its seed. *)
type policy

(** The historical schedule: no injected delay, ties broken by fiber id. *)
val default_policy : policy

(** [random_policy ?max_delay ~seed ()] builds a fresh seeded exploration
    policy: every stall is lengthened by a uniform random delay in
    [0, max_delay] cycles (modelling preemption/jitter) and readiness ties
    are broken by random priorities. Two policies built with the same
    arguments drive byte-identical schedules; a policy value is stateful
    and must not be reused across runs if replayability matters — build a
    fresh one per run. *)
val random_policy : ?max_delay:int -> seed:int -> unit -> policy

(** Human-readable description of a policy (for logs and reports). *)
val policy_name : policy -> string

val create : unit -> t

(** [spawn t body] registers a fiber. Fibers start at simulated time 0 in
    spawn order. Must be called before {!run}. *)
val spawn : t -> (unit -> unit) -> unit

(** [run ?policy ?obs t] executes all fibers to completion under [policy]
    (default {!default_policy}). Exceptions escaping a fiber abort the
    whole run and are re-raised. When [obs] is a recording sink, every
    scheduling step emits fiber stall/resume events onto the stalling
    fiber's core track (simulated timestamps only — tracing never perturbs
    the schedule). *)
val run : ?policy:policy -> ?obs:Mt_obs.Obs.t -> t -> unit

(** [stall n] suspends the calling fiber for [n >= 0] simulated cycles.
    Must be called from within a fiber. *)
val stall : int -> unit

(** [now ()] is the calling fiber's local clock. Outside any fiber it is
    the final time of the last completed run. *)
val now : unit -> int

(** [fiber_id ()] is the id (spawn index) of the calling fiber. Raises
    [Invalid_argument] outside a fiber. *)
val fiber_id : unit -> int
