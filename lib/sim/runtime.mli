(** Cooperative fiber runtime driven by simulated time.

    Each simulated thread runs as an OCaml 5 effect-handled fiber pinned to
    one simulated core. Whenever a fiber incurs simulated latency it
    performs {!stall}; the scheduler then resumes whichever fiber has the
    smallest local clock (ties broken by fiber id), giving a deterministic
    interleaving at memory-access granularity — the granularity at which
    coherence races occur on real hardware and in Graphite.

    {b Concurrency contract}: all scheduler state lives in the {!t} value,
    so independent runtimes (each driving its own machine) may run
    concurrently on different OCaml domains — one active [run] per domain,
    enforced. {!now} and {!fiber_id} resolve against the domain's active
    run. Nothing may be shared between simulations running on different
    domains: one machine, one runtime, one domain. *)

type t

(** Raised {e inside} still-suspended fibers when a run is torn down
    because another fiber's exception escaped: each pending continuation
    is resumed with [Aborted] at its stall point so cleanup handlers run
    and nothing leaks. Fiber code normally lets it propagate. *)
exception Aborted

(** A scheduling policy decides how ready fibers are ordered. The default
    resumes the fiber with the smallest local clock, ties broken by fiber
    id — the "hardware-faithful" schedule. Alternative policies perturb
    that order to explore other coherence interleavings of the same
    program; every policy is deterministic given its construction
    parameters, so any schedule can be replayed exactly from its seed. *)
type policy

(** The historical schedule: no injected delay, ties broken by fiber id. *)
val default_policy : policy

(** [random_policy ?max_delay ~seed ()] builds a fresh seeded exploration
    policy: every stall is lengthened by a uniform random delay in
    [0, max_delay] cycles (modelling preemption/jitter) and readiness ties
    are broken by random priorities. Two policies built with the same
    arguments drive byte-identical schedules; a policy value is stateful
    and must not be reused across runs if replayability matters — build a
    fresh one per run. *)
val random_policy : ?max_delay:int -> seed:int -> unit -> policy

(** [make_policy ?name ?extra_delay ?tie_of ()] builds a custom policy
    from raw hooks. [extra_delay ~tid ~now] is consulted at every stall of
    fiber [tid], where [now] is the fiber's local clock {e before} the
    stall is applied; the returned extra latency is added to the stall.
    [tie_of ~tid] breaks readiness ties (it must never return the same key
    for two distinct ready fibers; keep [tid] in the low bits). Hooks may
    carry state (e.g. a seeded PRNG, fault injectors): they are invoked in
    scheduler order, which is deterministic, so a policy whose hooks are a
    pure function of their construction seed drives replayable schedules.
    Defaults are the {!default_policy} hooks. *)
val make_policy :
  ?name:string ->
  ?extra_delay:(tid:int -> now:int -> int) ->
  ?tie_of:(tid:int -> int) ->
  unit ->
  policy

(** [decorate_policy base ~name ~extra_delay] wraps [base]: readiness ties
    are still broken by [base], and every stall first consults [base]'s
    delay (so [base]'s PRNG stream is consumed identically), then passes it
    to the decorator as [~base]. This is how fault injectors stack on top
    of {!random_policy} without disturbing its draw sequence. *)
val decorate_policy :
  policy ->
  name:string ->
  extra_delay:(tid:int -> now:int -> base:int -> int) ->
  policy

(** Human-readable description of a policy (for logs and reports). *)
val policy_name : policy -> string

val create : unit -> t

(** [spawn t body] registers a fiber. Fibers spawned before {!run} start
    at simulated time 0 in spawn order. Spawning while [t] is running —
    from a fiber or a tick callback of that same run — enqueues the new
    fiber into the live schedule: it gets the next fiber id and starts at
    the current simulated time (and, like any registered fiber, from time
    0 in subsequent runs of the same [t]). Raises [Invalid_argument] if
    [t] is running on a different domain. *)
val spawn : t -> (unit -> unit) -> unit

(** [run ?policy ?obs t] executes all fibers to completion under [policy]
    (default {!default_policy}). At most one run may be active per domain
    at a time, and a given [t] can only run on one domain at a time (both
    enforced). An exception escaping a fiber aborts the whole run: every
    still-suspended fiber is discontinued with {!Aborted} (so its cleanup
    handlers run and its continuation is not leaked), the ready queue is
    left empty, and the original exception is re-raised — the runtime and
    the domain remain usable for subsequent runs. When [obs] is a
    recording sink, every scheduling step emits fiber stall/resume events
    onto the stalling fiber's core track (simulated timestamps only —
    tracing never perturbs the schedule).

    [tick] is a periodic scheduler hook [(interval, f)]: [f ~now:(k *
    interval)] fires once for every boundary the simulated clock reaches
    or crosses, in boundary order, from scheduler context between fiber
    steps. The callback must only observe (snapshot counters, sample
    state) — it runs outside any fiber and must not stall or spawn.
    Boundaries beyond the final clock never fire; the window telemetry
    layer closes the tail explicitly. Ticking never perturbs the
    schedule. *)
val run :
  ?policy:policy ->
  ?obs:Mt_obs.Obs.t ->
  ?tick:int * (now:int -> unit) ->
  t ->
  unit

(** [stall n] suspends the calling fiber for [n >= 0] simulated cycles.
    Must be called from within a fiber. *)
val stall : int -> unit

(** [stall_on t n] is [stall n] resolving the runtime through [t] instead
    of domain-local state — the hot path for code that already holds the
    runtime it runs under (one lookup saved per simulated access). The
    caller must be a fiber of [t]'s active run on the current domain;
    passing any other runtime is undefined. *)
val stall_on : t -> int -> unit

(** [clock t] is [t]'s simulated clock: the current time while [t] is
    running, the final time of its last run otherwise. *)
val clock : t -> int

(** [now ()] is the calling fiber's local clock, resolved against the
    domain's active run. Outside any run it is the final time of the last
    run completed on this domain. *)
val now : unit -> int

(** [fiber_id ()] is the id (spawn index) of the calling fiber. Raises
    [Invalid_argument] outside a fiber. *)
val fiber_id : unit -> int
