(** Per-core MemTags state (the paper's Section 3 mechanism at L1).

    The unit tracks a bounded set of {e tagged} cache lines. A tagged line
    moves to the {e evicted} set when the L1 loses it — either because a
    remote core invalidated it (a real [Conflict]) or because it fell out of
    the L1 by replacement ([Capacity], the source of spurious failures).
    [validate] succeeds iff no tagged line has been evicted and the tag set
    never exceeded [max_tags] since the last [clear]. *)

type cause = Conflict | Capacity

type t

val create : max_tags:int -> t

(** [add t line] tags [line]; re-tagging an evicted line leaves it evicted.
    Sets the (latched) overflow flag when capacity is exceeded. *)
val add : t -> int -> unit

(** [remove t line] drops the line's entry. Conflict evidence is {e
    sticky}: if the line was already conflict-evicted, the recorded
    conflict survives the removal and {!check} keeps returning
    [Fail_conflict] until {!clear} — the remote write hit the line while
    the tag was held, so reads made under it may be torn whether or not
    the tag is later withdrawn. A pending [Capacity] record is dropped
    with the entry (removing the tag withdraws the claim it protected,
    so no spurious failure needs reporting). No-op if untagged. *)
val remove : t -> int -> unit

(** [is_tagged t line] is true if the line is currently tracked (tagged or
    evicted). *)
val is_tagged : t -> int -> bool

(** [live t line] is true if the line is tagged and not yet evicted — the
    tags whose loss an eviction event should report. *)
val live : t -> int -> bool

(** Called by the cache model when the L1 loses a line. *)
val on_evict : t -> int -> cause -> unit

type verdict = Ok | Fail_conflict | Fail_spurious

(** [check t] classifies the current tag set: [Ok] if validation would
    succeed; [Fail_conflict] if a tagged line was invalidated remotely;
    [Fail_spurious] if the only failure causes are capacity evictions or
    overflow. Does not modify state. *)
val check : t -> verdict

val overflowed : t -> bool
val count : t -> int

(** Current capacity ceiling (initially the [max_tags] of {!create}). *)
val max_tags : t -> int

(** [set_max_tags t n] retargets the capacity ceiling mid-run (fault
    injection: tag-capacity pressure). If more than [n] lines are already
    tracked the overflow flag latches immediately, so the next validation
    fails spuriously; {!clear} resets the latch as usual. *)
val set_max_tags : t -> int -> unit
val clear : t -> unit

(** Currently tracked lines (tagged or evicted), unordered. Allocates;
    the hot path uses {!iter_lines}. *)
val lines : t -> int list

(** [iter_lines t f] calls [f] on every tracked line (tagged or evicted),
    in unspecified but deterministic order, without allocating. *)
val iter_lines : t -> (int -> unit) -> unit

(** [fill_lines t a] writes the tracked lines into [a] (which must have at
    least {!count} slots) and returns how many were written — the
    closure-free form of {!iter_lines} for the IAS hot path. *)
val fill_lines : t -> int array -> int
