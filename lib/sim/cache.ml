type state = I | S | E | M

(* Flat parallel planes (DESIGN §12): slot [set * ways + way] of [lines]
   holds the resident line (-1 when empty), [sts] its MESI state as an int
   (0=I 1=S 2=E 3=M), [lrus] its LRU stamp from the global [tick]. No
   per-way records to chase — a probe is a short scan over contiguous
   ints, and the hot path addresses a hit by slot index so it never scans
   twice. *)
type t = {
  sets_log2 : int;
  ways : int;
  lines : int array;
  sts : int array;
  lrus : int array;
  mutable tick : int;
}

let[@inline] int_of_st = function I -> 0 | S -> 1 | E -> 2 | M -> 3
let[@inline] st_of_int = function 0 -> I | 1 -> S | 2 -> E | _ -> M

let create ~sets_log2 ~ways =
  if sets_log2 < 0 || ways <= 0 then invalid_arg "Cache.create";
  let slots = (1 lsl sets_log2) * ways in
  {
    sets_log2;
    ways;
    lines = Array.make slots (-1);
    sts = Array.make slots 0;
    lrus = Array.make slots 0;
    tick = 0;
  }

(* Hot slot-addressed interface ---------------------------------------- *)

(* Slot index of [line] if resident (state <> I), else -1. All slot
   arithmetic stays within [lines] by construction, so the scans use
   unchecked reads. *)
let[@inline] probe t line =
  let base = (line land ((1 lsl t.sets_log2) - 1)) * t.ways in
  let lim = base + t.ways in
  let rec go i =
    if i >= lim then -1
    else if
      Array.unsafe_get t.lines i = line && Array.unsafe_get t.sts i <> 0
    then i
    else go (i + 1)
  in
  go base

let[@inline] state_at t slot = st_of_int (Array.unsafe_get t.sts slot)

let[@inline] bump t slot =
  t.tick <- t.tick + 1;
  Array.unsafe_set t.lrus slot t.tick

let[@inline] touch_at t slot = bump t slot

(* [st] must not be [I] (removal goes through [remove]/[set_state]). *)
let[@inline] set_state_at t slot st =
  Array.unsafe_set t.sts slot (int_of_st st);
  bump t slot

(* Line-addressed interface -------------------------------------------- *)

let find t line =
  let slot = probe t line in
  if slot < 0 then I else state_at t slot

let touch t line =
  let slot = probe t line in
  if slot >= 0 then bump t slot

let set_state t line st =
  let slot = probe t line in
  if slot >= 0 then
    if st = I then begin
      t.lines.(slot) <- -1;
      t.sts.(slot) <- 0
    end
    else begin
      t.sts.(slot) <- int_of_st st;
      bump t slot
    end

let remove t line = set_state t line I

let insert t line st =
  if st = I then invalid_arg "Cache.insert: cannot insert in state I";
  if Debug.on () && find t line <> I then
    invalid_arg "Cache.insert: line already resident";
  let base = (line land ((1 lsl t.sets_log2) - 1)) * t.ways in
  (* Prefer an empty way; otherwise evict the LRU way. LRU stamps are
     drawn from the global tick, so non-empty stamps are distinct. *)
  let victim = ref base in
  let empty = ref (-1) in
  for i = base to base + t.ways - 1 do
    if Array.unsafe_get t.sts i = 0 then begin
      if !empty < 0 then empty := i
    end
    else if
      Array.unsafe_get t.lrus i < Array.unsafe_get t.lrus !victim
      || Array.unsafe_get t.sts !victim = 0
    then victim := i
  done;
  if !empty >= 0 then begin
    let i = !empty in
    t.lines.(i) <- line;
    t.sts.(i) <- int_of_st st;
    bump t i;
    None
  end
  else begin
    let i = !victim in
    let evicted = (t.lines.(i), st_of_int t.sts.(i)) in
    t.lines.(i) <- line;
    t.sts.(i) <- int_of_st st;
    bump t i;
    Some evicted
  end

let iter t f =
  for i = 0 to Array.length t.lines - 1 do
    if t.sts.(i) <> 0 then f t.lines.(i) (st_of_int t.sts.(i))
  done

let population t =
  let n = ref 0 in
  for i = 0 to Array.length t.sts - 1 do
    if t.sts.(i) <> 0 then incr n
  done;
  !n

let pp_state ppf st =
  Format.pp_print_string ppf (match st with I -> "I" | S -> "S" | E -> "E" | M -> "M")
