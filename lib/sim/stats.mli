(** Per-core event counters and the derived energy model.

    The caches and directory only track coherence {e state}; the actual data
    always lives in {!Memory}. Consequently performance numbers are derived
    purely from these counters plus the simulated clock. *)

type t = {
  mutable loads : int;
  mutable stores : int;
  mutable cas_ops : int;
  mutable cas_failures : int;
  mutable vas_ops : int;
  mutable vas_failures : int;          (** VAS that failed validation locally *)
  mutable ias_ops : int;
  mutable ias_failures : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;             (** accesses that went to the directory *)
  mutable invalidations_sent : int;    (** lines invalidated at remote cores *)
  mutable invalidations_received : int;
  mutable tag_probes_sent : int;
      (** remote tag units interrogated by this core's IAS invalidation
          rounds — one per remote tagger probed, whether or not the victim
          still held a cached copy. [lat_inval_per_sharer] is charged per
          probe, so this is the counter the IAS latency formula follows;
          [invalidations_sent] only counts probes that also killed a cached
          copy. *)
  mutable tag_probes_received : int;
      (** IAS probes that reached this core's tag unit *)
  mutable downgrades_received : int;
  mutable writebacks : int;
  mutable coherence_msgs : int;        (** directory transactions + remote hops *)
  mutable tag_adds : int;
  mutable tag_removes : int;
  mutable validates : int;
  mutable validate_failures : int;
  mutable validate_failures_spurious : int;
      (** validation failures caused only by capacity evictions or tag-set
          overflow, never by a real remote conflict *)
  mutable tag_overflows : int;
  mutable busy_cycles : int;           (** cycles this core spent stalled/working *)
  mutable cm_waits : int;
      (** contention-policy waits imposed on this core (non-immediate
          policies only; the [Immediate] baseline never counts here) *)
  mutable cm_wait_cycles : int;        (** total cycles of those waits *)
}

val create : unit -> t

val reset : t -> unit

(** [add acc t] accumulates [t] into [acc]. *)
val add : t -> t -> unit

(** [sum ts] is a fresh aggregate of all counters. *)
val sum : t array -> t

(** Cumulative counters in the shape {!Mt_obs.Series} snapshots at window
    boundaries; [c_heat] is the adversary's contention temperature. *)
val series_counters : t -> Mt_obs.Series.counters

(** Total L1 accesses (hits + misses). *)
val l1_accesses : t -> int

(** L1 miss rate in [0,1]; 0 if there were no accesses. *)
val l1_miss_rate : t -> float

(** [energy cfg t ~cycles] evaluates the event-count energy model of
    {!Config}: dynamic energy per L1/L2/directory access and per coherence
    message, plus static leakage over [cycles] core-cycles. *)
val energy : Config.t -> t -> cycles:int -> float

val pp : Format.formatter -> t -> unit
