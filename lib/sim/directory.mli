(** Global MESI directory.

    Tracks, for every cache line, which cores' private hierarchies hold it
    and whether one of them holds it exclusively ([E]/[M]). The directory is
    the serialization point for coherence transactions.

    Internally the sharer set is a flat per-line bitmask (two 32-bit planes,
    cores 0–31 and 32–63) plus an exclusivity word, so the hot coherence
    path never allocates (DESIGN §12). The [sharing] variant view below is
    kept for tests and diagnostics. *)

type sharing =
  | Uncached
  | Shared of int list  (** core ids holding the line in S; non-empty, sorted *)
  | Excl of int         (** one core holds the line in E or M *)

type t

val create : unit -> t

val sharing : t -> int -> sharing

(** [set t line sharing] installs the new sharing state. [Shared []] is
    normalised to [Uncached]. *)
val set : t -> int -> sharing -> unit

(** [add_sharer t line core] transitions [Uncached -> Shared [core]] or adds
    [core] to an existing sharer set. Raises [Invalid_argument] if the line
    is currently [Excl] of another core. *)
val add_sharer : t -> int -> int -> unit

(** [drop t line core] removes [core] from the line's sharers/owner (used
    when a private cache silently evicts the line). *)
val drop : t -> int -> int -> unit

(** [others t line core] lists every core other than [core] currently
    holding the line, in ascending id order. Allocates; tests only — the
    hot path uses {!iter_others}/{!others_count}. *)
val others : t -> int -> int -> int list

(** {2 Allocation-free accessors (hot path)} *)

(** No core holds the line. *)
val is_uncached : t -> int -> bool

(** Owner core id if the line is held [E]/[M], else [-1]. *)
val excl_owner : t -> int -> int

val set_uncached : t -> int -> unit

(** [set_excl t line core] makes [core] the sole (exclusive) holder. *)
val set_excl : t -> int -> int -> unit

(** [set_shared_pair t line a b] makes exactly [a] and [b] the (shared)
    holders — the owner-downgrade transition on a read miss to an [Excl]
    line. *)
val set_shared_pair : t -> int -> int -> int -> unit

(** Number of holders other than [core]. *)
val others_count : t -> int -> int -> int

(** [iter_others t line core f] calls [f] on every holder other than
    [core], in ascending id order (the order [others] returns). *)
val iter_others : t -> int -> int -> (int -> unit) -> unit

(** [iter_lines t f] calls [f line] for every line with at least one
    holder (coherence invariant checker; not on the hot path). *)
val iter_lines : t -> (int -> unit) -> unit
