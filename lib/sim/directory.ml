type sharing = Uncached | Shared of int list | Excl of int

(* Flat bitmask representation (DESIGN §12). Lines are dense small ints
   (memory is bump-allocated), so the directory is three parallel int
   arrays indexed by line:

     lo.(line)  sharer bits for cores 0..31
     hi.(line)  sharer bits for cores 32..63
     ex.(line)  owner id + 1 when the line is held E/M, else 0

   Invariant: [ex.(line) > 0] implies lo/hi hold exactly the owner's bit.
   [Config.default] caps num_cores at 64, so two 32-bit planes always
   suffice within OCaml's 63-bit ints. Reads past the current capacity
   mean Uncached; only writes grow the arrays. *)
type t = {
  mutable lo : int array;
  mutable hi : int array;
  mutable ex : int array;
}

let initial_lines = 4096

let create () =
  {
    lo = Array.make initial_lines 0;
    hi = Array.make initial_lines 0;
    ex = Array.make initial_lines 0;
  }

let grow t line =
  let cap = Array.length t.lo in
  let n = max (line + 1) (2 * cap) in
  let widen a =
    let a' = Array.make n 0 in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.lo <- widen t.lo;
  t.hi <- widen t.hi;
  t.ex <- widen t.ex

let[@inline] ensure t line = if line >= Array.length t.lo then grow t line

(* Index of the (single) set bit of [b], a power of two < 2^32. *)
let[@inline] bit_index b =
  let i = ref 0 and b = ref b in
  if !b land 0xFFFF = 0 then begin i := 16; b := !b lsr 16 end;
  if !b land 0xFF = 0 then begin i := !i + 8; b := !b lsr 8 end;
  if !b land 0xF = 0 then begin i := !i + 4; b := !b lsr 4 end;
  if !b land 0x3 = 0 then begin i := !i + 2; b := !b lsr 2 end;
  if !b land 0x1 = 0 then incr i;
  !i

let[@inline] popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (* OCaml ints are 63-bit: the product's bytes above bit 31 survive the
     shift (no uint32 truncation), so extract the one byte that holds the
     total. *)
  (x * 0x01010101) lsr 24 land 0xFF

(* Ascending-core iteration over a plane, so [iter_others]/[others] visit
   cores in the same sorted order the old list representation produced. *)
let[@inline] iter_bits base m f =
  let m = ref m in
  while !m <> 0 do
    let b = !m land (- !m) in
    f (base + bit_index b);
    m := !m lxor b
  done

(* Hot accessors -------------------------------------------------------- *)

let[@inline] is_uncached t line =
  line >= Array.length t.lo
  || (t.ex.(line) = 0 && t.lo.(line) = 0 && t.hi.(line) = 0)

(* Owner core id if the line is held E/M, else -1. *)
let[@inline] excl_owner t line =
  if line >= Array.length t.lo then -1 else t.ex.(line) - 1

let set_uncached t line =
  if line < Array.length t.lo then begin
    t.lo.(line) <- 0;
    t.hi.(line) <- 0;
    t.ex.(line) <- 0
  end

let set_excl t line core =
  ensure t line;
  if core < 32 then begin
    t.lo.(line) <- 1 lsl core;
    t.hi.(line) <- 0
  end
  else begin
    t.lo.(line) <- 0;
    t.hi.(line) <- 1 lsl (core - 32)
  end;
  t.ex.(line) <- core + 1

let[@inline] set_bit t line core =
  if core < 32 then t.lo.(line) <- t.lo.(line) lor (1 lsl core)
  else t.hi.(line) <- t.hi.(line) lor (1 lsl (core - 32))

let set_shared_pair t line a b =
  ensure t line;
  t.lo.(line) <- 0;
  t.hi.(line) <- 0;
  t.ex.(line) <- 0;
  set_bit t line a;
  set_bit t line b

let add_sharer t line core =
  ensure t line;
  let e = t.ex.(line) in
  if e = 0 then set_bit t line core
  else if e - 1 <> core then
    invalid_arg "Directory.add_sharer: line is exclusively owned"

let drop t line core =
  if line < Array.length t.lo then begin
    let e = t.ex.(line) in
    if e = 0 then begin
      if core < 32 then t.lo.(line) <- t.lo.(line) land lnot (1 lsl core)
      else t.hi.(line) <- t.hi.(line) land lnot (1 lsl (core - 32))
    end
    else if e - 1 = core then begin
      t.lo.(line) <- 0;
      t.hi.(line) <- 0;
      t.ex.(line) <- 0
    end
  end

let[@inline] masks_without t line core =
  let lo = t.lo.(line) and hi = t.hi.(line) in
  if core < 32 then (lo land lnot (1 lsl core), hi)
  else (lo, hi land lnot (1 lsl (core - 32)))

let others_count t line core =
  if line >= Array.length t.lo then 0
  else begin
    let lo, hi = masks_without t line core in
    popcount32 lo + popcount32 hi
  end

let iter_others t line core f =
  if line < Array.length t.lo then begin
    let lo, hi = masks_without t line core in
    iter_bits 0 lo f;
    iter_bits 32 hi f
  end

(* Variant-based compatibility API (tests, diagnostics) ----------------- *)

let sharing t line =
  if line >= Array.length t.lo then Uncached
  else begin
    let e = t.ex.(line) in
    if e > 0 then Excl (e - 1)
    else if t.lo.(line) = 0 && t.hi.(line) = 0 then Uncached
    else begin
      let acc = ref [] in
      iter_bits 32 t.hi.(line) (fun c -> acc := c :: !acc);
      iter_bits 0 t.lo.(line) (fun c -> acc := c :: !acc);
      Shared !acc
    end
  end

let set t line s =
  match s with
  | Uncached | Shared [] -> set_uncached t line
  | Shared cores ->
      ensure t line;
      t.lo.(line) <- 0;
      t.hi.(line) <- 0;
      t.ex.(line) <- 0;
      List.iter (fun c -> set_bit t line c) cores
  | Excl owner -> set_excl t line owner

let others t line core =
  let acc = ref [] in
  if line < Array.length t.lo then begin
    let lo, hi = masks_without t line core in
    iter_bits 32 hi (fun c -> acc := c :: !acc);
    iter_bits 0 lo (fun c -> acc := c :: !acc)
  end;
  !acc

let iter_lines t f =
  for line = 0 to Array.length t.lo - 1 do
    if not (t.ex.(line) = 0 && t.lo.(line) = 0 && t.hi.(line) = 0) then f line
  done
