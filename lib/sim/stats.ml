type t = {
  mutable loads : int;
  mutable stores : int;
  mutable cas_ops : int;
  mutable cas_failures : int;
  mutable vas_ops : int;
  mutable vas_failures : int;
  mutable ias_ops : int;
  mutable ias_failures : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable invalidations_sent : int;
  mutable invalidations_received : int;
  mutable tag_probes_sent : int;
  mutable tag_probes_received : int;
  mutable downgrades_received : int;
  mutable writebacks : int;
  mutable coherence_msgs : int;
  mutable tag_adds : int;
  mutable tag_removes : int;
  mutable validates : int;
  mutable validate_failures : int;
  mutable validate_failures_spurious : int;
  mutable tag_overflows : int;
  mutable busy_cycles : int;
  mutable cm_waits : int;
  mutable cm_wait_cycles : int;
}

let create () =
  {
    loads = 0;
    stores = 0;
    cas_ops = 0;
    cas_failures = 0;
    vas_ops = 0;
    vas_failures = 0;
    ias_ops = 0;
    ias_failures = 0;
    l1_hits = 0;
    l1_misses = 0;
    l2_hits = 0;
    l2_misses = 0;
    invalidations_sent = 0;
    invalidations_received = 0;
    tag_probes_sent = 0;
    tag_probes_received = 0;
    downgrades_received = 0;
    writebacks = 0;
    coherence_msgs = 0;
    tag_adds = 0;
    tag_removes = 0;
    validates = 0;
    validate_failures = 0;
    validate_failures_spurious = 0;
    tag_overflows = 0;
    busy_cycles = 0;
    cm_waits = 0;
    cm_wait_cycles = 0;
  }

let reset t =
  t.loads <- 0;
  t.stores <- 0;
  t.cas_ops <- 0;
  t.cas_failures <- 0;
  t.vas_ops <- 0;
  t.vas_failures <- 0;
  t.ias_ops <- 0;
  t.ias_failures <- 0;
  t.l1_hits <- 0;
  t.l1_misses <- 0;
  t.l2_hits <- 0;
  t.l2_misses <- 0;
  t.invalidations_sent <- 0;
  t.invalidations_received <- 0;
  t.tag_probes_sent <- 0;
  t.tag_probes_received <- 0;
  t.downgrades_received <- 0;
  t.writebacks <- 0;
  t.coherence_msgs <- 0;
  t.tag_adds <- 0;
  t.tag_removes <- 0;
  t.validates <- 0;
  t.validate_failures <- 0;
  t.validate_failures_spurious <- 0;
  t.tag_overflows <- 0;
  t.busy_cycles <- 0;
  t.cm_waits <- 0;
  t.cm_wait_cycles <- 0

let add acc t =
  acc.loads <- acc.loads + t.loads;
  acc.stores <- acc.stores + t.stores;
  acc.cas_ops <- acc.cas_ops + t.cas_ops;
  acc.cas_failures <- acc.cas_failures + t.cas_failures;
  acc.vas_ops <- acc.vas_ops + t.vas_ops;
  acc.vas_failures <- acc.vas_failures + t.vas_failures;
  acc.ias_ops <- acc.ias_ops + t.ias_ops;
  acc.ias_failures <- acc.ias_failures + t.ias_failures;
  acc.l1_hits <- acc.l1_hits + t.l1_hits;
  acc.l1_misses <- acc.l1_misses + t.l1_misses;
  acc.l2_hits <- acc.l2_hits + t.l2_hits;
  acc.l2_misses <- acc.l2_misses + t.l2_misses;
  acc.invalidations_sent <- acc.invalidations_sent + t.invalidations_sent;
  acc.invalidations_received <- acc.invalidations_received + t.invalidations_received;
  acc.tag_probes_sent <- acc.tag_probes_sent + t.tag_probes_sent;
  acc.tag_probes_received <- acc.tag_probes_received + t.tag_probes_received;
  acc.downgrades_received <- acc.downgrades_received + t.downgrades_received;
  acc.writebacks <- acc.writebacks + t.writebacks;
  acc.coherence_msgs <- acc.coherence_msgs + t.coherence_msgs;
  acc.tag_adds <- acc.tag_adds + t.tag_adds;
  acc.tag_removes <- acc.tag_removes + t.tag_removes;
  acc.validates <- acc.validates + t.validates;
  acc.validate_failures <- acc.validate_failures + t.validate_failures;
  acc.validate_failures_spurious <-
    acc.validate_failures_spurious + t.validate_failures_spurious;
  acc.tag_overflows <- acc.tag_overflows + t.tag_overflows;
  acc.busy_cycles <- acc.busy_cycles + t.busy_cycles;
  acc.cm_waits <- acc.cm_waits + t.cm_waits;
  acc.cm_wait_cycles <- acc.cm_wait_cycles + t.cm_wait_cycles

let sum ts =
  let acc = create () in
  Array.iter (fun t -> add acc t) ts;
  acc

(* The counter shape the windowed telemetry layer snapshots at window
   boundaries. [c_heat] matches the adversary's contention temperature
   (Scenario.heat): failed validations + failed primitives + inbound
   invalidations. *)
let series_counters t : Mt_obs.Series.counters =
  {
    Mt_obs.Series.c_l1_hits = t.l1_hits;
    c_l1_misses = t.l1_misses;
    c_coherence_msgs = t.coherence_msgs;
    c_invalidations = t.invalidations_received;
    c_writebacks = t.writebacks;
    c_tag_overflows = t.tag_overflows;
    c_heat =
      t.validate_failures + t.cas_failures + t.vas_failures + t.ias_failures
      + t.invalidations_received;
  }

let l1_accesses t = t.l1_hits + t.l1_misses

let l1_miss_rate t =
  let total = l1_accesses t in
  if total = 0 then 0.0 else float_of_int t.l1_misses /. float_of_int total

let energy (cfg : Config.t) t ~cycles =
  let f = float_of_int in
  (cfg.energy_l1 *. f (l1_accesses t))
  +. (cfg.energy_l2 *. f (t.l2_hits + t.l2_misses))
  +. (cfg.energy_dir *. f t.l2_misses)
  +. (cfg.energy_msg *. f (t.coherence_msgs + t.invalidations_sent + t.writebacks))
  +. (cfg.energy_static_per_cycle *. f cycles)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>loads %d  stores %d  cas %d (fail %d)  vas %d (fail %d)  ias %d (fail %d)@,\
     L1 %d/%d (miss %.2f%%)  L2 hits %d  dir %d@,\
     inval sent %d recv %d  downgrades %d  wb %d  msgs %d@,\
     tags + %d - %d  validates %d (fail %d, spurious %d)  overflows %d@]"
    t.loads t.stores t.cas_ops t.cas_failures t.vas_ops t.vas_failures t.ias_ops
    t.ias_failures t.l1_hits (l1_accesses t)
    (100.0 *. l1_miss_rate t)
    t.l2_hits t.l2_misses t.invalidations_sent t.invalidations_received
    t.downgrades_received t.writebacks t.coherence_msgs t.tag_adds t.tag_removes
    t.validates t.validate_failures t.validate_failures_spurious t.tag_overflows
