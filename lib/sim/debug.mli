(** Simulator-internal sanity checks (DESIGN §12).

    When on, {!Memory} validates every address against the allocator
    frontier (catching null/wild/uninitialised accesses) and {!Cache}
    asserts its insertion precondition. When off — the default — those
    checks vanish from the per-access hot path and a bad address silently
    reads simulated zeroes, exactly like stray loads on real hardware.

    The test suites and the fuzzer enable the flag at startup; benches run
    with it off. Also settable via the [MEMTAG_DEBUG_CHECKS=1] environment
    variable. The flag is global (not per-machine): flipping it never
    changes simulated behavior of correct programs, only whether incorrect
    ones trap. *)

val set : bool -> unit
val on : unit -> bool
