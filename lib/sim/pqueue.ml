type 'a entry = { time : int; tie : int; value : 'a }

(* Slots hold [entry option] so vacated positions can be reset to [None]:
   a popped entry (and whatever its value closes over — in the scheduler,
   a whole fiber continuation) must not stay reachable through the array,
   and [grow]/initial fill never pin an arbitrary live entry as filler. *)
type 'a t = { mutable data : 'a entry option array; mutable size : int }

let create () = { data = [||]; size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let less a b = a.time < b.time || (a.time = b.time && a.tie < b.tie)

let get t i =
  match t.data.(i) with Some e -> e | None -> assert false

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let data = Array.make ncap None in
    Array.blit t.data 0 data 0 cap;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get t i) (get t parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less (get t l) (get t !smallest) then smallest := l;
  if r < t.size && less (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~time ~tie value =
  grow t;
  t.data.(t.size) <- Some { time; tie; value };
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then invalid_arg "Pqueue.pop_min: empty";
  let min = get t 0 in
  t.size <- t.size - 1;
  t.data.(0) <- t.data.(t.size);
  t.data.(t.size) <- None;
  sift_down t 0;
  (min.time, min.tie, min.value)

let min_time t = if t.size = 0 then None else Some (get t 0).time
