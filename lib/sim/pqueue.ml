(* Parallel-plane binary min-heap (DESIGN §12). Keys live in one unboxed
   interleaved int plane — entry [i] holds [time; tie; aux] at stride
   [4 * i] (the stride is a power of two so slot addressing is a shift),
   keeping a near-full scheduler heap inside a couple of cache lines.
   Values live in an [Obj.t] plane so that [add] never allocates an entry
   record. The comparison/swap sequence is exactly the classic sift-up /
   sift-down of the previous record-based heap; keys are strict total
   orders at every call site (ties embed the fiber id), so pop order —
   and hence the whole simulation schedule — is a pure function of the
   key multiset and none of the layout changes are observable.

   Vacated value slots are reset to [filler]: a popped value (in the
   scheduler, a whole fiber continuation) must not stay reachable through
   the array, and [grow] never pins an arbitrary live value as filler.

   Safety of [Obj]: the value plane only ever holds values of the heap's
   ['a] (written by [add]/[add_aux]/[exchange], read back by [pop]/
   [exchange]); [filler] is an immediate and is never returned. [Obj.repr
   0] also keeps the plane a generic (non-float) array. Unchecked array
   accesses are all at slots below [size], which both planes accommodate
   by construction ([grow] keeps them in lockstep). *)

type 'a t = {
  mutable keys : int array;  (* stride 4: time, tie, aux, unused *)
  mutable vals : Obj.t array;
  mutable size : int;
  mutable x_time : int;  (* key/aux of the last [exchange]d-out entry *)
  mutable x_aux : int;
}

let filler = Obj.repr 0

let create () = { keys = [||]; vals = [||]; size = 0; x_time = 0; x_aux = 0 }

let is_empty t = t.size = 0
let length t = t.size

let[@inline] less t i j =
  let k = t.keys in
  let ti = Array.unsafe_get k (i lsl 2) and tj = Array.unsafe_get k (j lsl 2) in
  ti < tj
  || (ti = tj
     && Array.unsafe_get k ((i lsl 2) + 1) < Array.unsafe_get k ((j lsl 2) + 1))

let[@inline] swap t i j =
  let k = t.keys in
  let bi = i lsl 2 and bj = j lsl 2 in
  let x = Array.unsafe_get k bi in
  Array.unsafe_set k bi (Array.unsafe_get k bj);
  Array.unsafe_set k bj x;
  let x = Array.unsafe_get k (bi + 1) in
  Array.unsafe_set k (bi + 1) (Array.unsafe_get k (bj + 1));
  Array.unsafe_set k (bj + 1) x;
  let x = Array.unsafe_get k (bi + 2) in
  Array.unsafe_set k (bi + 2) (Array.unsafe_get k (bj + 2));
  Array.unsafe_set k (bj + 2) x;
  let v = t.vals in
  let x = Array.unsafe_get v i in
  Array.unsafe_set v i (Array.unsafe_get v j);
  Array.unsafe_set v j x

let grow t =
  let cap = Array.length t.vals in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let keys = Array.make (ncap lsl 2) 0 in
    Array.blit t.keys 0 keys 0 (cap lsl 2);
    t.keys <- keys;
    let vals = Array.make ncap filler in
    Array.blit t.vals 0 vals 0 cap;
    t.vals <- vals
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t l !smallest then smallest := l;
  if r < t.size && less t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add_aux t ~time ~tie ~aux value =
  grow t;
  let i = t.size in
  let b = i lsl 2 in
  t.keys.(b) <- time;
  t.keys.(b + 1) <- tie;
  t.keys.(b + 2) <- aux;
  t.vals.(i) <- Obj.repr value;
  t.size <- i + 1;
  sift_up t i

let add t ~time ~tie value = add_aux t ~time ~tie ~aux:0 value

let top_time t = t.keys.(0)
let top_tie t = t.keys.(1)
let top_aux t = t.keys.(2)

let pop (type a) (t : a t) : a =
  if t.size = 0 then invalid_arg "Pqueue.pop: empty";
  let v = t.vals.(0) in
  let last = t.size - 1 in
  t.size <- last;
  let b = last lsl 2 in
  t.keys.(0) <- t.keys.(b);
  t.keys.(1) <- t.keys.(b + 1);
  t.keys.(2) <- t.keys.(b + 2);
  t.vals.(0) <- t.vals.(last);
  t.vals.(last) <- filler;
  sift_down t 0;
  (Obj.obj v : a)

let pop_min t =
  if t.size = 0 then invalid_arg "Pqueue.pop_min: empty";
  let time = top_time t and tie = top_tie t in
  let v = pop t in
  (time, tie, v)

(* Fused pop-then-add for the scheduler's suspension path: the incoming
   key is ≥ the minimum's (that is exactly the slow-path condition), so
   popping the root and sifting the new entry down from the root slot is
   equivalent to [add_aux] followed by [pop] — one sift instead of two.
   Keys form a strict total order, so the (possibly different) internal
   arrangement is unobservable through pop order. *)
let exchange (type a) (t : a t) ~time ~tie ~aux (value : a) : a =
  if t.size = 0 then invalid_arg "Pqueue.exchange: empty";
  let v = t.vals.(0) in
  t.x_time <- t.keys.(0);
  t.x_aux <- t.keys.(2);
  t.keys.(0) <- time;
  t.keys.(1) <- tie;
  t.keys.(2) <- aux;
  t.vals.(0) <- Obj.repr value;
  sift_down t 0;
  (Obj.obj v : a)

let xchg_time t = t.x_time
let xchg_aux t = t.x_aux

let min_time t = if t.size = 0 then None else Some t.keys.(0)
