(** A set-associative cache array with LRU replacement.

    This is a pure state-tracking structure (which lines are resident and in
    which MESI state); data contents live in {!Memory}. One instance models
    one level (L1 or L2) of one core's private hierarchy. *)

type state = I | S | E | M

type t

val create : sets_log2:int -> ways:int -> t

(** [find t line] is the line's current state, [I] if not resident. *)
val find : t -> int -> state

(** Slot-addressed hot-path interface: [probe] locates a resident line's
    slot with one scan; the [_at] accessors then read or update it
    without scanning again. Slot indices are only valid until the next
    [insert]/[remove]/[set_state] on the same cache. *)

(** [probe t line] is the line's slot index, or -1 if not resident. *)
val probe : t -> int -> int

(** [state_at t slot] is the resident state at [slot] (never [I]). *)
val state_at : t -> int -> state

(** [touch_at t slot] refreshes the slot's LRU position. *)
val touch_at : t -> int -> unit

(** [set_state_at t slot st] updates the resident line at [slot] to
    [st <> I] and refreshes its LRU position. *)
val set_state_at : t -> int -> state -> unit

(** [touch t line] refreshes the line's LRU position (no-op if absent). *)
val touch : t -> int -> unit

(** [set_state t line st] updates a resident line's state. Setting [I]
    removes the line. No-op if the line is absent. *)
val set_state : t -> int -> state -> unit

(** [insert t line st] makes the line resident in state [st], evicting the
    set's LRU victim if the set is full. Returns the victim [(line, state)]
    if one was evicted. The line must not already be resident (checked,
    and raising, only when {!Debug.on}). *)
val insert : t -> int -> state -> (int * state) option

(** [remove t line] drops the line (external invalidation or inclusion
    victim). No-op if absent. *)
val remove : t -> int -> unit

(** [iter t f] calls [f line state] for every resident line, in set/way
    order (coherence invariant checker; not on the hot path). *)
val iter : t -> (int -> state -> unit) -> unit

(** Number of resident lines (diagnostics / tests). *)
val population : t -> int

val pp_state : Format.formatter -> state -> unit
