open Effect
open Effect.Deep

(* The effect is nullary: the stalling fiber's (new local clock, readiness
   tie) are precomputed by [stall] and parked in the runtime's [pend_time]/
   [pend_tie] fields, so a suspension allocates nothing beyond the
   continuation itself. The effect is the slow path: [stall] performs it
   only when another fiber is scheduled next (see the fast path below). *)
type _ Effect.t += Stall : unit Effect.t

exception Aborted

type policy = {
  policy_name : string;
  (* Both default hooks are pure and stateless, so when [is_default] the
     scheduler may skip calling them entirely (no PRNG stream to keep in
     sync) — the hot path uses [delay = n] and [tie = tid] directly. *)
  is_default : bool;
  extra_delay : tid:int -> now:int -> int;
  tie_of : tid:int -> int;
}

let default_policy =
  {
    policy_name = "fifo";
    is_default = true;
    extra_delay = (fun ~tid:_ ~now:_ -> 0);
    tie_of = (fun ~tid -> tid);
  }

(* Seeded schedule perturbation: every stall gets an extra random delay in
   [0, max_delay], and readiness ties are broken by a random priority
   instead of the fiber id. Both draws come from one private PRNG stream,
   consumed in scheduler order — itself deterministic — so a given seed
   always produces the same interleaving. The tie key keeps the fiber id
   in its low bits so distinct fibers never compare equal. *)
let random_policy ?(max_delay = 64) ~seed () =
  if max_delay < 0 then invalid_arg "Runtime.random_policy: negative max_delay";
  let g = Prng.create ~seed:(seed lxor 0x5CEDC0DE) in
  {
    policy_name = Printf.sprintf "random(seed=%d,max_delay=%d)" seed max_delay;
    is_default = false;
    extra_delay =
      (fun ~tid:_ ~now:_ -> if max_delay = 0 then 0 else Prng.int g (max_delay + 1));
    tie_of = (fun ~tid -> (Prng.int g 0x4000 lsl 16) lor (tid land 0xFFFF));
  }

let make_policy ?(name = "custom") ?extra_delay ?tie_of () =
  {
    policy_name = name;
    (* Hooks left unset are literally the default hooks, so the scheduler
       may treat the policy as default (skipping the calls is
       unobservable). *)
    is_default = (match (extra_delay, tie_of) with None, None -> true | _ -> false);
    extra_delay = Option.value extra_delay ~default:default_policy.extra_delay;
    tie_of = Option.value tie_of ~default:default_policy.tie_of;
  }

let decorate_policy base ~name ~extra_delay =
  {
    policy_name = name;
    is_default = false;
    extra_delay =
      (fun ~tid ~now ->
        let b = base.extra_delay ~tid ~now in
        extra_delay ~tid ~now ~base:b);
    tie_of = base.tie_of;
  }

let policy_name p = p.policy_name

(* A ready-queue entry is either a fiber that has not started yet (a plain
   thunk — there is no continuation to unwind) or one suspended mid-stall,
   whose continuation must be [discontinue]d if the run is torn down. The
   kind rides in the low bit of the queue's int side-channel ([aux =
   (tid lsl 1) lor kind], kind 1 = suspended continuation, 0 = start
   thunk) and the value plane holds the thunk or continuation untagged,
   so enqueueing a suspension allocates nothing at all. *)
let null_tick ~now:_ = ()

type t = {
  mutable bodies : (unit -> unit) list;  (* reversed spawn order *)
  mutable n_fibers : int;
  ready : Obj.t Pqueue.t;  (* aux = (fiber id lsl 1) lor is_continuation *)
  (* Scheduler state, scoped to this runtime so independent machines can
     run concurrently on different domains. [current_fiber] is -1 outside
     any fiber; [active] guards against the same value being run twice
     concurrently (e.g. shared across domains by mistake). The remaining
     fields are run-scoped (installed by [run], reset on finish); they
     live here rather than in [run]'s closure so that [stall]'s fast path
     and mid-run [spawn] can reach them. *)
  mutable clock : int;
  mutable current_fiber : int;
  mutable active : bool;
  mutable draining : bool;  (* tear-down in progress: stalls must suspend *)
  mutable clocks : int array;  (* per-fiber local clocks, grown on demand *)
  mutable policy : policy;
  mutable obs : Mt_obs.Obs.t;
  mutable obs_on : bool;  (* Obs.enabled obs, cached off the stall path *)
  mutable pend_time : int;  (* Stall payload: stalling fiber's new clock *)
  mutable pend_tie : int;  (* … and its readiness tie *)
  (* The suspension handler pops the next task while it inserts the
     suspending one (a single fused heap sift) and parks it here; the
     scheduler loop runs a parked task before consulting the heap.
     [handoff_aux < 0] = nothing parked. *)
  mutable handoff_time : int;
  mutable handoff_aux : int;
  mutable handoff_task : Obj.t;
  (* Preallocated effect-handler branch: returning the same closure for
     every [Stall] keeps the suspension path allocation-free. Set once in
     [create] (it captures the runtime itself). *)
  mutable on_stall : ((unit, unit) continuation -> unit) option;
  mutable tick_interval : int;  (* 0 = no tick hook *)
  mutable next_tick : int;  (* max_int = no tick hook: one compare gates *)
  mutable tick_fn : now:int -> unit;
}

(* The runtime currently executing on *this* domain, plus the final clock
   of the domain's last completed run (what [now ()] reports between runs).
   Domain-local by construction: runs on other domains are invisible here,
   which is precisely the one-machine-per-domain concurrency contract. *)
let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let last_clock_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let create () =
  let t =
    {
      bodies = [];
      n_fibers = 0;
      ready = Pqueue.create ();
      clock = 0;
      current_fiber = -1;
      active = false;
      draining = false;
      clocks = [||];
      policy = default_policy;
      obs = Mt_obs.Obs.null;
      obs_on = false;
      pend_time = 0;
      pend_tie = 0;
      handoff_time = 0;
      handoff_aux = -1;
      handoff_task = Obj.repr 0;
      on_stall = None;
      tick_interval = 0;
      next_tick = max_int;
      tick_fn = null_tick;
    }
  in
  t.on_stall <-
    Some
      (fun k ->
        let aux = (t.current_fiber lsl 1) lor 1 in
        if t.draining then
          (* Tear-down: just park the re-suspended fiber in the queue for
             [drain_aborted]'s sweep — no task may bypass it. *)
          Pqueue.add_aux t.ready ~time:t.pend_time ~tie:t.pend_tie ~aux
            (Obj.repr k)
        else begin
          let v =
            Pqueue.exchange t.ready ~time:t.pend_time ~tie:t.pend_tie ~aux
              (Obj.repr k)
          in
          t.handoff_time <- Pqueue.xchg_time t.ready;
          t.handoff_aux <- Pqueue.xchg_aux t.ready;
          t.handoff_task <- v
        end);
  t

let current () = Domain.DLS.get current_key

let clock t = t.clock

let now () =
  match current () with
  | Some t -> t.clock
  | None -> Domain.DLS.get last_clock_key

let fiber_id () =
  match current () with
  | Some t when t.current_fiber >= 0 -> t.current_fiber
  | _ -> invalid_arg "Runtime.fiber_id: not inside a fiber"

let ensure_clocks t tid =
  if tid >= Array.length t.clocks then begin
    let n = max (tid + 1) (max 1 (2 * Array.length t.clocks)) in
    let clocks = Array.make n 0 in
    Array.blit t.clocks 0 clocks 0 (Array.length t.clocks);
    t.clocks <- clocks
  end

let start t body () =
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = (fun exn -> raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Stall -> (t.on_stall : ((a, unit) continuation -> unit) option)
          | _ -> None);
    }

let[@inline never] tie_for t tid =
  if t.policy.is_default then tid else t.policy.tie_of ~tid

let spawn t body =
  if t.active then begin
    (* Mid-run spawn: the new fiber joins the live run, starting at the
       current simulated time. Only the run's own domain may do this. *)
    (match current () with
    | Some rt when rt == t -> ()
    | _ -> invalid_arg "Runtime.spawn: runtime is running on another domain");
    let tid = t.n_fibers in
    t.bodies <- body :: t.bodies;
    t.n_fibers <- tid + 1;
    ensure_clocks t tid;
    t.clocks.(tid) <- t.clock;
    Pqueue.add_aux t.ready ~time:t.clock ~tie:(tie_for t tid) ~aux:(tid lsl 1)
      (Obj.repr (start t body))
  end
  else begin
    t.bodies <- body :: t.bodies;
    t.n_fibers <- t.n_fibers + 1
  end

(* Callers gate on [upto >= t.next_tick] (a single compare; [next_tick]
   is [max_int] when no hook is installed) so the loop is off the fast
   path. *)
let run_ticks t upto =
  while t.next_tick <= upto do
    t.tick_fn ~now:t.next_tick;
    t.next_tick <- t.next_tick + t.tick_interval
  done

(* [stall_on t n]: as [stall n], but resolving the runtime through the
   caller instead of domain-local state — the hot path for code (Ctx)
   that already holds the runtime it runs under. The caller must be a
   fiber of [t]'s active run. *)
let stall_on t n =
  if n < 0 then invalid_arg "Runtime.stall: negative latency";
  let tid = t.current_fiber in
  if tid < 0 then invalid_arg "Runtime.stall: not inside a fiber";
  let p = t.policy in
  let delay, tie =
    if p.is_default then (n, tid)
    else begin
      (* Hook order (delay draw, then tie draw) is part of a stateful
         policy's PRNG stream contract — both are consulted at every
         stall, suspending or not. *)
      let d = n + p.extra_delay ~tid ~now:(Array.unsafe_get t.clocks tid) in
      if t.obs_on then
        Mt_obs.Obs.emit t.obs ~core:tid ~time:t.clock
          (Mt_obs.Obs.Fiber_stall { cycles = d });
      (d, p.tie_of ~tid)
    end
  in
  if p.is_default && t.obs_on then
    Mt_obs.Obs.emit t.obs ~core:tid ~time:t.clock
      (Mt_obs.Obs.Fiber_stall { cycles = delay });
  (* [tid] is a live fiber of this run, so it indexes [clocks]. *)
  let nc = Array.unsafe_get t.clocks tid + delay in
  Array.unsafe_set t.clocks tid nc;
  let q = t.ready in
  if
    (not t.draining)
    && (Pqueue.is_empty q
       || nc < Pqueue.top_time q
       || (nc = Pqueue.top_time q && tie < Pqueue.top_tie q))
  then begin
    (* Fast path: this fiber's new key is still the schedule minimum,
       so enqueueing and popping it would resume it immediately. Skip
       the effect suspension entirely and replay what the scheduler
       loop would have done: advance the global clock, fire crossed
       tick boundaries, emit the resume event. Byte-identical to the
       slow path by construction. *)
    t.clock <- nc;
    if nc >= t.next_tick then run_ticks t nc;
    if t.obs_on then
      Mt_obs.Obs.emit t.obs ~core:tid ~time:nc Mt_obs.Obs.Fiber_resume
  end
  else begin
    t.pend_time <- nc;
    t.pend_tie <- tie;
    perform Stall
  end

let stall n =
  match current () with
  | Some t when t.current_fiber >= 0 -> stall_on t n
  | _ -> invalid_arg "Runtime.stall: not inside a fiber"

(* Tear-down after a fiber exception: every still-suspended fiber is
   resumed with [Aborted] raised at its stall point, so closures release
   their resources (Fun.protect finalizers run) and the continuations are
   not abandoned. A fiber that traps [Aborted] and stalls again simply
   re-enters the queue and is aborted again at its next suspension. *)
let drain_aborted t =
  t.draining <- true;
  (* A task parked in the handoff slot is as live as a queued one; sweep
     it first (a trapped-and-restalled fiber re-enters the queue via the
     draining branch of [on_stall] and is caught by the loop below). *)
  if t.handoff_aux >= 0 then begin
    let aux = t.handoff_aux in
    let task = t.handoff_task in
    t.handoff_aux <- -1;
    t.handoff_task <- Obj.repr 0;
    if aux land 1 = 1 then begin
      t.current_fiber <- aux lsr 1;
      try discontinue (Obj.obj task : (unit, unit) continuation) Aborted
      with _ -> ()
    end
  end;
  while not (Pqueue.is_empty t.ready) do
    let aux = Pqueue.top_aux t.ready in
    let task = Pqueue.pop t.ready in
    if aux land 1 = 1 then begin
      (* suspended mid-stall: unwind it *)
      t.current_fiber <- aux lsr 1;
      try discontinue (Obj.obj task : (unit, unit) continuation) Aborted
      with _ -> ()
    end
    (* else: never ran, nothing to unwind *)
  done;
  t.draining <- false

let run ?(policy = default_policy) ?(obs = Mt_obs.Obs.null) ?tick t =
  (match current () with
  | Some _ -> invalid_arg "Runtime.run: a run is already active on this domain"
  | None -> ());
  if t.active then
    invalid_arg "Runtime.run: this runtime is already running on another domain";
  t.active <- true;
  t.clock <- 0;
  t.current_fiber <- -1;
  t.policy <- policy;
  t.obs <- obs;
  t.obs_on <- Mt_obs.Obs.enabled obs;
  (* Periodic scheduler hook: [f ~now:k*interval] fires once per window
     boundary the clock reaches or crosses, in boundary order, from
     scheduler context (between fibers — the callback must observe, not
     stall). Boundaries the run never reaches do not fire. *)
  (match tick with
  | None ->
      t.tick_interval <- 0;
      t.next_tick <- max_int;
      t.tick_fn <- null_tick
  | Some (interval, f) ->
      if interval <= 0 then invalid_arg "Runtime.run: tick interval";
      t.tick_interval <- interval;
      t.next_tick <- interval;
      t.tick_fn <- f);
  if Array.length t.clocks < max 1 t.n_fibers then
    t.clocks <- Array.make (max 1 t.n_fibers) 0
  else Array.fill t.clocks 0 (Array.length t.clocks) 0;
  Domain.DLS.set current_key (Some t);
  List.iteri
    (fun i body ->
      let tid = t.n_fibers - 1 - i in
      Pqueue.add_aux t.ready ~time:0 ~tie:(tie_for t tid) ~aux:(tid lsl 1)
        (Obj.repr (start t body)))
    t.bodies;
  let finish () =
    t.active <- false;
    t.current_fiber <- -1;
    t.policy <- default_policy;
    t.obs <- Mt_obs.Obs.null;
    t.obs_on <- false;
    t.tick_interval <- 0;
    t.next_tick <- max_int;
    t.tick_fn <- null_tick;
    Domain.DLS.set last_clock_key t.clock;
    Domain.DLS.set current_key None
  in
  (* Trampoline: a suspension's handler parks the next task in the
     handoff slot and returns (the [continue]/thunk call below then
     returns normally), so [dispatch]'s recursive [drive] is a tail call
     and the native stack does not grow with schedule length. *)
  let rec drive () =
    if t.handoff_aux >= 0 then begin
      let time = t.handoff_time and aux = t.handoff_aux in
      let task = t.handoff_task in
      t.handoff_aux <- -1;
      t.handoff_task <- Obj.repr 0;
      dispatch time aux task
    end
    else if not (Pqueue.is_empty t.ready) then begin
      let time = Pqueue.top_time t.ready in
      let aux = Pqueue.top_aux t.ready in
      let task = Pqueue.pop t.ready in
      dispatch time aux task
    end
  and dispatch time aux task =
    t.clock <- time;
    if time >= t.next_tick then run_ticks t time;
    let tid = aux lsr 1 in
    t.current_fiber <- tid;
    if t.obs_on then
      Mt_obs.Obs.emit t.obs ~core:tid ~time Mt_obs.Obs.Fiber_resume;
    if aux land 1 = 1 then
      continue (Obj.obj task : (unit, unit) continuation) ()
    else (Obj.obj task : unit -> unit) ();
    drive ()
  in
  (try drive ()
   with exn ->
     drain_aborted t;
     finish ();
     raise exn);
  finish ()
