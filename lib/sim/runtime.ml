open Effect
open Effect.Deep

type _ Effect.t += Stall : int -> unit Effect.t

exception Aborted

type policy = {
  policy_name : string;
  extra_delay : tid:int -> now:int -> int;
  tie_of : tid:int -> int;
}

let default_policy =
  {
    policy_name = "fifo";
    extra_delay = (fun ~tid:_ ~now:_ -> 0);
    tie_of = (fun ~tid -> tid);
  }

(* Seeded schedule perturbation: every stall gets an extra random delay in
   [0, max_delay], and readiness ties are broken by a random priority
   instead of the fiber id. Both draws come from one private PRNG stream,
   consumed in scheduler order — itself deterministic — so a given seed
   always produces the same interleaving. The tie key keeps the fiber id
   in its low bits so distinct fibers never compare equal. *)
let random_policy ?(max_delay = 64) ~seed () =
  if max_delay < 0 then invalid_arg "Runtime.random_policy: negative max_delay";
  let g = Prng.create ~seed:(seed lxor 0x5CEDC0DE) in
  {
    policy_name = Printf.sprintf "random(seed=%d,max_delay=%d)" seed max_delay;
    extra_delay =
      (fun ~tid:_ ~now:_ -> if max_delay = 0 then 0 else Prng.int g (max_delay + 1));
    tie_of = (fun ~tid -> (Prng.int g 0x4000 lsl 16) lor (tid land 0xFFFF));
  }

let make_policy ?(name = "custom") ?extra_delay ?tie_of () =
  {
    policy_name = name;
    extra_delay = Option.value extra_delay ~default:default_policy.extra_delay;
    tie_of = Option.value tie_of ~default:default_policy.tie_of;
  }

let decorate_policy base ~name ~extra_delay =
  {
    policy_name = name;
    extra_delay =
      (fun ~tid ~now ->
        let b = base.extra_delay ~tid ~now in
        extra_delay ~tid ~now ~base:b);
    tie_of = base.tie_of;
  }

let policy_name p = p.policy_name

(* A ready-queue entry is either a fiber that has not started yet (a plain
   thunk — there is no continuation to unwind) or one suspended mid-stall,
   whose continuation must be [discontinue]d if the run is torn down. *)
type task =
  | Start of (unit -> unit)
  | Suspended of (unit, unit) continuation

type t = {
  mutable bodies : (unit -> unit) list;  (* reversed spawn order *)
  mutable n_fibers : int;
  ready : (int * task) Pqueue.t;  (* (fiber id, work) *)
  (* Scheduler state, scoped to this runtime so independent machines can
     run concurrently on different domains. [current_fiber] is -1 outside
     any fiber; [active] guards against the same value being run twice
     concurrently (e.g. shared across domains by mistake). *)
  mutable clock : int;
  mutable current_fiber : int;
  mutable active : bool;
}

(* The runtime currently executing on *this* domain, plus the final clock
   of the domain's last completed run (what [now ()] reports between runs).
   Domain-local by construction: runs on other domains are invisible here,
   which is precisely the one-machine-per-domain concurrency contract. *)
let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let last_clock_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let create () =
  {
    bodies = [];
    n_fibers = 0;
    ready = Pqueue.create ();
    clock = 0;
    current_fiber = -1;
    active = false;
  }

let spawn t body =
  t.bodies <- body :: t.bodies;
  t.n_fibers <- t.n_fibers + 1

let current () = Domain.DLS.get current_key

let in_fiber () =
  match current () with Some t -> t.current_fiber >= 0 | None -> false

let stall n =
  if n < 0 then invalid_arg "Runtime.stall: negative latency";
  if not (in_fiber ()) then invalid_arg "Runtime.stall: not inside a fiber";
  perform (Stall n)

let clock t = t.clock

let now () =
  match current () with
  | Some t -> t.clock
  | None -> Domain.DLS.get last_clock_key

let fiber_id () =
  match current () with
  | Some t when t.current_fiber >= 0 -> t.current_fiber
  | _ -> invalid_arg "Runtime.fiber_id: not inside a fiber"

(* Tear-down after a fiber exception: every still-suspended fiber is
   resumed with [Aborted] raised at its stall point, so closures release
   their resources (Fun.protect finalizers run) and the continuations are
   not abandoned. A fiber that traps [Aborted] and stalls again simply
   re-enters the queue and is aborted again at its next suspension. *)
let drain_aborted t =
  while not (Pqueue.is_empty t.ready) do
    let _, _, (tid, task) = Pqueue.pop_min t.ready in
    match task with
    | Start _ -> ()  (* never ran: nothing to unwind *)
    | Suspended k -> (
        t.current_fiber <- tid;
        try discontinue k Aborted with _ -> ())
  done

let run ?(policy = default_policy) ?(obs = Mt_obs.Obs.null) ?tick t =
  (match current () with
  | Some _ -> invalid_arg "Runtime.run: a run is already active on this domain"
  | None -> ());
  if t.active then
    invalid_arg "Runtime.run: this runtime is already running on another domain";
  t.active <- true;
  t.clock <- 0;
  t.current_fiber <- -1;
  Domain.DLS.set current_key (Some t);
  let clocks = Array.make (max 1 t.n_fibers) 0 in
  let start tid body () =
    match_with body ()
      {
        retc = (fun () -> ());
        exnc = (fun exn -> raise exn);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Stall n ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let delay = n + policy.extra_delay ~tid ~now:clocks.(tid) in
                    if Mt_obs.Obs.enabled obs then
                      Mt_obs.Obs.emit obs ~core:tid ~time:t.clock
                        (Mt_obs.Obs.Fiber_stall { cycles = delay });
                    clocks.(tid) <- clocks.(tid) + delay;
                    Pqueue.add t.ready ~time:clocks.(tid)
                      ~tie:(policy.tie_of ~tid)
                      (tid, Suspended k))
            | _ -> None);
      }
  in
  List.iteri
    (fun i body ->
      let tid = t.n_fibers - 1 - i in
      Pqueue.add t.ready ~time:0 ~tie:(policy.tie_of ~tid)
        (tid, Start (start tid body)))
    t.bodies;
  let finish () =
    t.active <- false;
    t.current_fiber <- -1;
    Domain.DLS.set last_clock_key t.clock;
    Domain.DLS.set current_key None
  in
  (* Periodic scheduler hook: [f ~now:k*interval] fires once per window
     boundary the clock reaches or crosses, in boundary order, from
     scheduler context (between fibers — the callback must observe, not
     stall). Boundaries the run never reaches do not fire. *)
  let tick_interval, tick_fn =
    match tick with
    | None -> (0, fun ~now:_ -> ())
    | Some (interval, f) ->
        if interval <= 0 then invalid_arg "Runtime.run: tick interval";
        (interval, f)
  in
  let next_tick = ref tick_interval in
  (try
     while not (Pqueue.is_empty t.ready) do
       let time, _tie, (tid, task) = Pqueue.pop_min t.ready in
       t.clock <- time;
       if tick_interval > 0 then
         while !next_tick <= time do
           tick_fn ~now:!next_tick;
           next_tick := !next_tick + tick_interval
         done;
       t.current_fiber <- tid;
       if Mt_obs.Obs.enabled obs then
         Mt_obs.Obs.emit obs ~core:tid ~time Mt_obs.Obs.Fiber_resume;
       match task with Start f -> f () | Suspended k -> continue k ()
     done
   with exn ->
     drain_aborted t;
     finish ();
     raise exn);
  finish ()
