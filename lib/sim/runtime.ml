open Effect
open Effect.Deep

type _ Effect.t += Stall : int -> unit Effect.t

type policy = {
  policy_name : string;
  extra_delay : tid:int -> int;
  tie_of : tid:int -> int;
}

let default_policy =
  {
    policy_name = "fifo";
    extra_delay = (fun ~tid:_ -> 0);
    tie_of = (fun ~tid -> tid);
  }

(* Seeded schedule perturbation: every stall gets an extra random delay in
   [0, max_delay], and readiness ties are broken by a random priority
   instead of the fiber id. Both draws come from one private PRNG stream,
   consumed in scheduler order — itself deterministic — so a given seed
   always produces the same interleaving. The tie key keeps the fiber id
   in its low bits so distinct fibers never compare equal. *)
let random_policy ?(max_delay = 64) ~seed () =
  if max_delay < 0 then invalid_arg "Runtime.random_policy: negative max_delay";
  let g = Prng.create ~seed:(seed lxor 0x5CEDC0DE) in
  {
    policy_name = Printf.sprintf "random(seed=%d,max_delay=%d)" seed max_delay;
    extra_delay = (fun ~tid:_ -> if max_delay = 0 then 0 else Prng.int g (max_delay + 1));
    tie_of = (fun ~tid -> (Prng.int g 0x4000 lsl 16) lor (tid land 0xFFFF));
  }

let policy_name p = p.policy_name

type t = {
  mutable bodies : (unit -> unit) list;  (* reversed spawn order *)
  mutable n_fibers : int;
  ready : (int * (unit -> unit)) Pqueue.t;  (* (fiber id, resume) *)
}

(* Scheduler-global state. The runtime is single-threaded and non-reentrant,
   so plain refs suffice; [current_*] identify the running fiber. *)
let clock = ref 0
let current_fiber = ref (-1)
let active = ref false

let create () = { bodies = []; n_fibers = 0; ready = Pqueue.create () }

let spawn t body =
  t.bodies <- body :: t.bodies;
  t.n_fibers <- t.n_fibers + 1

let stall n =
  if n < 0 then invalid_arg "Runtime.stall: negative latency";
  if !current_fiber < 0 then invalid_arg "Runtime.stall: not inside a fiber";
  perform (Stall n)

let now () = !clock

let fiber_id () =
  if !current_fiber < 0 then invalid_arg "Runtime.fiber_id: not inside a fiber";
  !current_fiber

let run ?(policy = default_policy) ?(obs = Mt_obs.Obs.null) t =
  if !active then invalid_arg "Runtime.run: a run is already active";
  active := true;
  clock := 0;
  let clocks = Array.make (max 1 t.n_fibers) 0 in
  let start tid body () =
    match_with body ()
      {
        retc = (fun () -> ());
        exnc = (fun exn -> raise exn);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Stall n ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let delay = n + policy.extra_delay ~tid in
                    if Mt_obs.Obs.enabled obs then
                      Mt_obs.Obs.emit obs ~core:tid ~time:!clock
                        (Mt_obs.Obs.Fiber_stall { cycles = delay });
                    clocks.(tid) <- clocks.(tid) + delay;
                    Pqueue.add t.ready ~time:clocks.(tid)
                      ~tie:(policy.tie_of ~tid)
                      (tid, fun () -> continue k ()))
            | _ -> None);
      }
  in
  List.iteri
    (fun i body ->
      let tid = t.n_fibers - 1 - i in
      Pqueue.add t.ready ~time:0 ~tie:(policy.tie_of ~tid) (tid, start tid body))
    t.bodies;
  let finish () =
    active := false;
    current_fiber := -1
  in
  (try
     while not (Pqueue.is_empty t.ready) do
       let time, _tie, (tid, resume) = Pqueue.pop_min t.ready in
       clock := time;
       current_fiber := tid;
       if Mt_obs.Obs.enabled obs then
         Mt_obs.Obs.emit obs ~core:tid ~time Mt_obs.Obs.Fiber_resume;
       resume ()
     done
   with exn ->
     finish ();
     raise exn);
  finish ()
