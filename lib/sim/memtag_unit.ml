type cause = Conflict | Capacity

type entry = Tagged | Evicted of cause

type t = {
  tbl : (int, entry) Hashtbl.t;
  mutable max_tags : int;
  mutable overflow : bool;
  mutable evicted_conflict : int;
  mutable evicted_capacity : int;
}

let create ~max_tags =
  if max_tags <= 0 then invalid_arg "Memtag_unit.create: max_tags must be positive";
  {
    tbl = Hashtbl.create 64;
    max_tags;
    overflow = false;
    evicted_conflict = 0;
    evicted_capacity = 0;
  }

let add t line =
  match Hashtbl.find_opt t.tbl line with
  | Some _ -> ()
  | None ->
      Hashtbl.replace t.tbl line Tagged;
      if Hashtbl.length t.tbl > t.max_tags then t.overflow <- true

let remove t line =
  match Hashtbl.find_opt t.tbl line with
  | None -> ()
  | Some Tagged -> Hashtbl.remove t.tbl line
  | Some (Evicted Conflict) ->
      t.evicted_conflict <- t.evicted_conflict - 1;
      Hashtbl.remove t.tbl line
  | Some (Evicted Capacity) ->
      t.evicted_capacity <- t.evicted_capacity - 1;
      Hashtbl.remove t.tbl line

let is_tagged t line = Hashtbl.mem t.tbl line

let live t line = Hashtbl.find_opt t.tbl line = Some Tagged

let on_evict t line cause =
  match Hashtbl.find_opt t.tbl line with
  | None | Some (Evicted Conflict) -> ()
  | Some (Evicted Capacity) ->
      (* A conflict supersedes a capacity record: the failure is real. *)
      if cause = Conflict then begin
        t.evicted_capacity <- t.evicted_capacity - 1;
        t.evicted_conflict <- t.evicted_conflict + 1;
        Hashtbl.replace t.tbl line (Evicted Conflict)
      end
  | Some Tagged ->
      Hashtbl.replace t.tbl line (Evicted cause);
      if cause = Conflict then t.evicted_conflict <- t.evicted_conflict + 1
      else t.evicted_capacity <- t.evicted_capacity + 1

type verdict = Ok | Fail_conflict | Fail_spurious

let check t =
  if t.evicted_conflict > 0 then Fail_conflict
  else if t.evicted_capacity > 0 || t.overflow then Fail_spurious
  else Ok

let overflowed t = t.overflow

let max_tags t = t.max_tags

(* Fault-injection hook: retargets the capacity ceiling mid-run. Shrinking
   below the number of currently tracked lines latches the overflow flag —
   the hardware analogue of a capacity the tag set already exceeds — so
   the victim's next validation fails spuriously and it retries under the
   new, tighter budget (after [clear] resets the latch). *)
let set_max_tags t n =
  if n <= 0 then invalid_arg "Memtag_unit.set_max_tags: must be positive";
  t.max_tags <- n;
  if Hashtbl.length t.tbl > n then t.overflow <- true

let count t = Hashtbl.length t.tbl

let clear t =
  Hashtbl.reset t.tbl;
  t.overflow <- false;
  t.evicted_conflict <- 0;
  t.evicted_capacity <- 0

let lines t = Hashtbl.fold (fun line _ acc -> line :: acc) t.tbl []
