type cause = Conflict | Capacity

(* Open-addressed int table (DESIGN §12): one slot word per tracked line,
   linear probing with tombstones. Slot encoding:

     0                         empty
     1                         tombstone
     ((line+1) lsl 2) lor st   occupied; st: 0 Tagged, 1 Evicted Conflict,
                                             2 Evicted Capacity

   [line + 1 >= 1] keeps every occupied word >= 4, so line 0 can never
   collide with the sentinels. [journal] records each slot that became
   occupied since the last [clear], so [clear] zeroes O(inserts) slots
   instead of the whole array. *)

let st_tagged = 0
let st_conflict = 1
let st_capacity = 2

type t = {
  mutable slots : int array;        (* power-of-two length *)
  mutable journal : int array;
  mutable journal_len : int;
  mutable len : int;                (* occupied slots (tagged or evicted) *)
  mutable used : int;               (* occupied + tombstones *)
  mutable max_tags : int;
  mutable overflow : bool;
  mutable evicted_conflict : int;
  mutable evicted_capacity : int;
}

let initial_slots = 128

let create ~max_tags =
  if max_tags <= 0 then invalid_arg "Memtag_unit.create: max_tags must be positive";
  {
    slots = Array.make initial_slots 0;
    journal = Array.make initial_slots 0;
    journal_len = 0;
    len = 0;
    used = 0;
    max_tags;
    overflow = false;
    evicted_conflict = 0;
    evicted_capacity = 0;
  }

let[@inline] hash line mask = (line * 0x9E3779B1) land mask

(* Slot index of [line], or -1 if absent. *)
let[@inline] find_slot t line =
  let mask = Array.length t.slots - 1 in
  let key = line + 1 in
  let i = ref (hash line mask) in
  let r = ref (-2) in
  while !r = -2 do
    let v = t.slots.(!i) in
    if v = 0 then r := -1
    else if v >= 4 && v lsr 2 = key then r := !i
    else i := (!i + 1) land mask
  done;
  !r

let journal_push t slot =
  if t.journal_len = Array.length t.journal then begin
    let j = Array.make (2 * t.journal_len) 0 in
    Array.blit t.journal 0 j 0 t.journal_len;
    t.journal <- j
  end;
  t.journal.(t.journal_len) <- slot;
  t.journal_len <- t.journal_len + 1

(* Rebuild without tombstones, doubling if the table is genuinely full. *)
let rehash t =
  let old = t.slots in
  let cap = Array.length old in
  let cap' = if t.len * 4 > cap then 2 * cap else cap in
  t.slots <- Array.make cap' 0;
  t.journal_len <- 0;
  t.used <- t.len;
  let mask = cap' - 1 in
  Array.iter
    (fun v ->
      if v >= 4 then begin
        let i = ref (hash (v lsr 2 - 1) mask) in
        while t.slots.(!i) <> 0 do
          i := (!i + 1) land mask
        done;
        t.slots.(!i) <- v;
        journal_push t !i
      end)
    old

let add t line =
  let mask = Array.length t.slots - 1 in
  let key = line + 1 in
  let i = ref (hash line mask) in
  let tomb = ref (-1) in
  let state = ref (-2) in
  (* -2 probing; -1 absent (insert); >= 0 present *)
  while !state = -2 do
    let v = t.slots.(!i) in
    if v = 0 then state := -1
    else if v = 1 then begin
      if !tomb < 0 then tomb := !i;
      i := (!i + 1) land mask
    end
    else if v lsr 2 = key then state := v land 3
    else i := (!i + 1) land mask
  done;
  if !state = -1 then begin
    (if !tomb >= 0 then t.slots.(!tomb) <- key lsl 2
     else begin
       t.slots.(!i) <- key lsl 2;
       t.used <- t.used + 1;
       journal_push t !i
     end);
    t.len <- t.len + 1;
    if t.len > t.max_tags then t.overflow <- true;
    if 4 * (t.used + 1) > 3 * Array.length t.slots then rehash t
  end

(* Conflict evidence is sticky: a concurrent writer hit the line *while
   the tag was held*, so the reads made under that tag may be torn
   whether or not the tag is later withdrawn — [evicted_conflict] must
   survive until [clear] (the next validation boundary). A capacity
   record, by contrast, only predicts a *spurious* failure; removing the
   tag withdraws the claim it was protecting, so that evidence is
   dropped with the entry. *)
let remove t line =
  let i = find_slot t line in
  if i >= 0 then begin
    (match t.slots.(i) land 3 with
    | 2 -> t.evicted_capacity <- t.evicted_capacity - 1
    | _ -> ());
    t.slots.(i) <- 1;
    t.len <- t.len - 1
  end

let is_tagged t line = find_slot t line >= 0

let live t line =
  let i = find_slot t line in
  i >= 0 && t.slots.(i) land 3 = st_tagged

let on_evict t line cause =
  let i = find_slot t line in
  if i >= 0 then begin
    let key_bits = t.slots.(i) land lnot 3 in
    match t.slots.(i) land 3 with
    | 1 (* Evicted Conflict *) -> ()
    | 2 (* Evicted Capacity *) ->
        (* A conflict supersedes a capacity record: the failure is real. *)
        if cause = Conflict then begin
          t.evicted_capacity <- t.evicted_capacity - 1;
          t.evicted_conflict <- t.evicted_conflict + 1;
          t.slots.(i) <- key_bits lor st_conflict
        end
    | _ (* Tagged *) ->
        if cause = Conflict then begin
          t.evicted_conflict <- t.evicted_conflict + 1;
          t.slots.(i) <- key_bits lor st_conflict
        end
        else begin
          t.evicted_capacity <- t.evicted_capacity + 1;
          t.slots.(i) <- key_bits lor st_capacity
        end
  end

type verdict = Ok | Fail_conflict | Fail_spurious

let check t =
  if t.evicted_conflict > 0 then Fail_conflict
  else if t.evicted_capacity > 0 || t.overflow then Fail_spurious
  else Ok

let overflowed t = t.overflow

let max_tags t = t.max_tags

(* Fault-injection hook: retargets the capacity ceiling mid-run. Shrinking
   below the number of currently tracked lines latches the overflow flag —
   the hardware analogue of a capacity the tag set already exceeds — so
   the victim's next validation fails spuriously and it retries under the
   new, tighter budget (after [clear] resets the latch). *)
let set_max_tags t n =
  if n <= 0 then invalid_arg "Memtag_unit.set_max_tags: must be positive";
  t.max_tags <- n;
  if t.len > n then t.overflow <- true

let count t = t.len

let clear t =
  for k = 0 to t.journal_len - 1 do
    t.slots.(t.journal.(k)) <- 0
  done;
  t.journal_len <- 0;
  t.len <- 0;
  t.used <- 0;
  t.overflow <- false;
  t.evicted_conflict <- 0;
  t.evicted_capacity <- 0

let fill_lines t a =
  let n = ref 0 in
  for k = 0 to t.journal_len - 1 do
    let v = t.slots.(t.journal.(k)) in
    if v >= 4 then begin
      a.(!n) <- (v lsr 2) - 1;
      incr n
    end
  done;
  !n

let iter_lines t f =
  for k = 0 to t.journal_len - 1 do
    let v = t.slots.(t.journal.(k)) in
    if v >= 4 then f (v lsr 2 - 1)
  done

let lines t =
  let acc = ref [] in
  iter_lines t (fun line -> acc := line :: !acc);
  !acc
