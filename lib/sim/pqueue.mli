(** A binary min-heap keyed by [(time, tie)] used by the fiber scheduler.

    Ties on [time] are broken by the secondary integer key so that the
    scheduling order — and hence the whole simulation — is deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

val add : 'a t -> time:int -> tie:int -> 'a -> unit

(** [pop_min t] removes and returns the minimum entry as
    [(time, tie, value)]. Raises [Invalid_argument] if empty. The popped
    value is no longer reachable from the queue (vacated slots are
    cleared, so fiber closures are not pinned for the heap's lifetime). *)
val pop_min : 'a t -> int * int * 'a

(** [min_time t] is the earliest key without removing it. *)
val min_time : 'a t -> int option
