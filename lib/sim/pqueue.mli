(** A binary min-heap keyed by [(time, tie)] used by the fiber scheduler.

    Ties on [time] are broken by the secondary integer key so that the
    scheduling order — and hence the whole simulation — is deterministic.

    Keys (and an optional caller-owned int side-channel, [aux]) live in
    unboxed int planes, so [add]/[pop] allocate nothing (DESIGN §12). The
    allocation-free reading protocol is: check {!is_empty}, read
    {!top_time}/{!top_tie}/{!top_aux}, then {!pop}. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

val add : 'a t -> time:int -> tie:int -> 'a -> unit

(** [add_aux] additionally stores an int in the entry's side-channel
    ([add] stores 0). The aux value travels with the entry and is read
    back via {!top_aux}. *)
val add_aux : 'a t -> time:int -> tie:int -> aux:int -> 'a -> unit

(** Key/aux of the minimum entry. Unspecified (may raise) if the heap is
    empty — callers check {!is_empty} first. *)
val top_time : 'a t -> int

val top_tie : 'a t -> int
val top_aux : 'a t -> int

(** [pop t] removes the minimum entry and returns its value alone — read
    {!top_time}/{!top_tie}/{!top_aux} before popping. Raises
    [Invalid_argument] if empty. The popped value is no longer reachable
    from the queue (vacated slots are cleared, so fiber closures are not
    pinned for the heap's lifetime). *)
val pop : 'a t -> 'a

(** [pop_min t] is [(top_time, top_tie, pop)] as a tuple (allocates;
    tests and non-hot callers). *)
val pop_min : 'a t -> int * int * 'a

(** [exchange t ~time ~tie ~aux v] pops the minimum entry and adds the
    new one in a single sift, returning the popped value; the popped
    key's time and aux are readable via {!xchg_time}/{!xchg_aux} until
    the next [exchange]. The incoming key must compare ≥ the minimum's —
    the scheduler's suspension-path precondition — and keys must form a
    strict total order (equal keys would make the fused form's pop order
    unspecified). Raises [Invalid_argument] if empty. *)
val exchange : 'a t -> time:int -> tie:int -> aux:int -> 'a -> 'a

val xchg_time : 'a t -> int
val xchg_aux : 'a t -> int

(** [min_time t] is the earliest key without removing it. *)
val min_time : 'a t -> int option
