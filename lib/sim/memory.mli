(** Simulated flat memory.

    The functional contents of memory live here; the caches and directory
    only model {e timing} and coherence state. Addresses are word indices
    (one word = one OCaml [int]). Address [0] is reserved as the null
    pointer and is never handed out by the allocator. *)

type t

type addr = int

(** The null pointer. Dereferencing it raises [Invalid_argument]. *)
val null : addr

val create : Config.t -> t

(** [alloc t ~words] bump-allocates [words] zero-initialised words aligned
    to a cache-line boundary, so that distinct allocations never share a
    line (the paper maps each node to its own line to avoid false
    sharing). Raises [Invalid_argument] if [words <= 0]. *)
val alloc : t -> words:int -> addr

(** Number of words allocated so far (diagnostics). *)
val allocated_words : t -> int

(** Word read/write. Address validation (null, unallocated) is gated on
    {!Debug.on}: with checks enabled an out-of-bounds access raises
    [Invalid_argument]; with checks off (the default, for bench speed) the
    access silently touches zero-filled backing store. *)
val get : t -> addr -> int

val set : t -> addr -> int -> unit
