module Obs = Mt_obs.Obs

type core = {
  id : int;
  l1 : Cache.t;
  l2 : Cache.t;
  tags : Memtag_unit.t;
  stats : Stats.t;
}

type t = {
  cfg : Config.t;
  mem : Memory.t;
  dir : Directory.t;
  cores : core array;
  obs : Obs.t;
}

let create ?(obs = Obs.null) cfg =
  {
    cfg;
    mem = Memory.create cfg;
    dir = Directory.create ();
    cores =
      Array.init cfg.num_cores (fun id ->
          {
            id;
            l1 = Cache.create ~sets_log2:cfg.l1_sets_log2 ~ways:cfg.l1_ways;
            l2 = Cache.create ~sets_log2:cfg.l2_sets_log2 ~ways:cfg.l2_ways;
            tags = Memtag_unit.create ~max_tags:cfg.max_tags;
            stats = Stats.create ();
          });
    obs;
  }

let cfg t = t.cfg
let memory t = t.mem
let num_cores t = Array.length t.cores
let obs t = t.obs

(* Hook helper: every call site guards with [Obs.enabled] so a disabled
   sink never allocates an event. Timestamps are the simulated clock. *)
let ev t core kind = Obs.emit t.obs ~core ~time:(Runtime.now ()) kind
let on t = Obs.enabled t.obs

let core t core =
  if core < 0 || core >= Array.length t.cores then
    invalid_arg (Printf.sprintf "Machine: bad core id %d" core);
  t.cores.(core)

let stats t ~core:c = (core t c).stats
let total_stats t = Stats.sum (Array.map (fun c -> c.stats) t.cores)
let reset_stats t = Array.iter (fun c -> Stats.reset c.stats) t.cores

let alloc ?label t ~words =
  let addr = Memory.alloc t.mem ~words in
  (match label with
  | Some label when on t ->
      Obs.label_lines t.obs
        ~line_lo:(Config.line_of_addr t.cfg addr)
        ~line_hi:(Config.line_of_addr t.cfg (addr + words - 1))
        label
  | _ -> ());
  addr
let peek t addr = Memory.get t.mem addr
let poke t addr v = Memory.set t.mem addr v

(* ------------------------------------------------------------------ *)
(* Coherence actions on remote cores.                                  *)

(* Remove [line] from [victim]'s whole private hierarchy: a remote core is
   taking exclusive ownership. Kills any tag the victim held on the line. *)
let invalidate_remote t victim line =
  let v = t.cores.(victim) in
  let dirty = Cache.find v.l2 line = M in
  Cache.remove v.l1 line;
  Cache.remove v.l2 line;
  if dirty then v.stats.writebacks <- v.stats.writebacks + 1;
  if on t then begin
    ev t victim (Obs.Inval_received { line });
    if dirty then ev t victim (Obs.Writeback { line });
    if Memtag_unit.live v.tags line then
      ev t victim (Obs.Tag_evict { line; conflict = true })
  end;
  Memtag_unit.on_evict v.tags line Memtag_unit.Conflict;
  v.stats.invalidations_received <- v.stats.invalidations_received + 1;
  Directory.drop t.dir line victim

(* Demote [line] to S at [victim]: a remote core wants read access. Tags
   survive — a downgrade is not an invalidation. *)
let downgrade_remote t victim line =
  let v = t.cores.(victim) in
  let dirty = Cache.find v.l2 line = M in
  if dirty then v.stats.writebacks <- v.stats.writebacks + 1;
  if on t then begin
    ev t victim (Obs.Downgrade { line; victim });
    if dirty then ev t victim (Obs.Writeback { line })
  end;
  Cache.set_state v.l2 line Cache.S;
  Cache.set_state v.l1 line Cache.S;
  v.stats.downgrades_received <- v.stats.downgrades_received + 1

(* ------------------------------------------------------------------ *)
(* Fills with victim handling.                                         *)

(* L1 victim stays in L2 (inclusive hierarchy), but its tag dies: MemTags
   live at the L1 level, so falling out of L1 is a (spurious) eviction. *)
let l1_insert t c line st =
  match Cache.insert c.l1 line st with
  | None -> ()
  | Some (vline, _vst) ->
      if on t && Memtag_unit.live c.tags vline then
        ev t c.id (Obs.Tag_evict { line = vline; conflict = false });
      Memtag_unit.on_evict c.tags vline Memtag_unit.Capacity

(* An L2 victim leaves the whole hierarchy: back-invalidate the L1 copy
   (inclusion), write back if dirty, and tell the directory. *)
let l2_insert t c line st =
  match Cache.insert c.l2 line st with
  | None -> ()
  | Some (vline, vst) ->
      if Cache.find c.l1 vline <> Cache.I then begin
        Cache.remove c.l1 vline;
        if on t && Memtag_unit.live c.tags vline then
          ev t c.id (Obs.Tag_evict { line = vline; conflict = false });
        Memtag_unit.on_evict c.tags vline Memtag_unit.Capacity
      end;
      if vst = Cache.M then begin
        c.stats.writebacks <- c.stats.writebacks + 1;
        if on t then ev t c.id (Obs.Writeback { line = vline })
      end;
      Directory.drop t.dir vline c.id

(* ------------------------------------------------------------------ *)
(* The central access routine: make [line] resident in [c]'s L1 with read
   rights ([excl = false]) or exclusive rights ([excl = true]); drive the
   MESI transitions, count events, and return the latency in cycles. *)

let inval_round_lat cfg n_sharers =
  if n_sharers = 0 then 0
  else cfg.Config.lat_inval + (cfg.Config.lat_inval_per_sharer * n_sharers)

let upgrade_from_shared t c line =
  let cfg = t.cfg in
  let others = Directory.others t.dir line c.id in
  List.iter
    (fun o ->
      if on t then ev t c.id (Obs.Inval_sent { line; victim = o });
      invalidate_remote t o line;
      c.stats.invalidations_sent <- c.stats.invalidations_sent + 1)
    others;
  Directory.set t.dir line (Directory.Excl c.id);
  c.stats.coherence_msgs <- c.stats.coherence_msgs + 1;
  cfg.lat_dir + inval_round_lat cfg (List.length others)

let acquire t c line ~excl =
  let cfg = t.cfg in
  match Cache.find c.l1 line with
  | Cache.M ->
      Cache.touch c.l1 line;
      c.stats.l1_hits <- c.stats.l1_hits + 1;
      cfg.lat_l1
  | Cache.E ->
      if excl then begin
        (* silent E -> M promotion *)
        Cache.set_state c.l1 line Cache.M;
        Cache.set_state c.l2 line Cache.M
      end
      else Cache.touch c.l1 line;
      c.stats.l1_hits <- c.stats.l1_hits + 1;
      cfg.lat_l1
  | Cache.S when not excl ->
      Cache.touch c.l1 line;
      c.stats.l1_hits <- c.stats.l1_hits + 1;
      cfg.lat_l1
  | Cache.S ->
      (* S -> M upgrade: permission round through the directory. *)
      c.stats.l1_hits <- c.stats.l1_hits + 1;
      let lat = upgrade_from_shared t c line in
      Cache.set_state c.l1 line Cache.M;
      Cache.set_state c.l2 line Cache.M;
      cfg.lat_l1 + lat
  | Cache.I -> begin
      c.stats.l1_misses <- c.stats.l1_misses + 1;
      if on t then ev t c.id (Obs.L1_miss { line });
      match Cache.find c.l2 line with
      | (Cache.M | Cache.E) as st2 ->
          c.stats.l2_hits <- c.stats.l2_hits + 1;
          let st = if excl then Cache.M else st2 in
          if excl && st2 = Cache.E then Cache.set_state c.l2 line Cache.M;
          l1_insert t c line st;
          cfg.lat_l2
      | Cache.S when not excl ->
          c.stats.l2_hits <- c.stats.l2_hits + 1;
          l1_insert t c line Cache.S;
          cfg.lat_l2
      | Cache.S ->
          c.stats.l2_hits <- c.stats.l2_hits + 1;
          let lat = upgrade_from_shared t c line in
          Cache.set_state c.l2 line Cache.M;
          l1_insert t c line Cache.M;
          cfg.lat_l2 + lat
      | Cache.I ->
          (* Full miss: directory transaction. *)
          c.stats.l2_misses <- c.stats.l2_misses + 1;
          c.stats.coherence_msgs <- c.stats.coherence_msgs + 1;
          if on t then ev t c.id (Obs.L2_miss { line });
          let lat = ref cfg.lat_dir in
          let st =
            if excl then begin
              (match Directory.sharing t.dir line with
              | Directory.Uncached -> lat := !lat + cfg.lat_mem
              | Directory.Excl o ->
                  assert (o <> c.id);
                  if on t then ev t c.id (Obs.Inval_sent { line; victim = o });
                  invalidate_remote t o line;
                  c.stats.invalidations_sent <- c.stats.invalidations_sent + 1;
                  lat := !lat + cfg.lat_remote
              | Directory.Shared cores ->
                  List.iter
                    (fun o ->
                      if on t then ev t c.id (Obs.Inval_sent { line; victim = o });
                      invalidate_remote t o line;
                      c.stats.invalidations_sent <- c.stats.invalidations_sent + 1)
                    cores;
                  lat := !lat + cfg.lat_mem + inval_round_lat cfg (List.length cores));
              Directory.set t.dir line (Directory.Excl c.id);
              Cache.M
            end
            else begin
              match Directory.sharing t.dir line with
              | Directory.Uncached ->
                  Directory.set t.dir line (Directory.Excl c.id);
                  lat := !lat + cfg.lat_mem;
                  Cache.E
              | Directory.Excl o ->
                  assert (o <> c.id);
                  downgrade_remote t o line;
                  Directory.set t.dir line (Directory.Shared [ o; c.id ]);
                  lat := !lat + cfg.lat_remote;
                  Cache.S
              | Directory.Shared cores ->
                  Directory.set t.dir line (Directory.Shared (c.id :: cores));
                  lat := !lat + cfg.lat_mem;
                  Cache.S
            end
          in
          l2_insert t c line st;
          l1_insert t c line st;
          !lat
    end

(* Kill [line] at every other core that has it *tagged* (IAS invalidation
   step, tag-targeted variant). Returns the latency charged to the issuer:
   a directory interrogation plus one invalidation round if any remote
   tagger existed. *)
let invalidate_taggers t c line =
  let hit = ref 0 in
  Array.iter
    (fun v ->
      if v.id <> c.id && Memtag_unit.is_tagged v.tags line then begin
        incr hit;
        if Cache.find v.l2 line <> Cache.I || Cache.find v.l1 line <> Cache.I
        then begin
          if Cache.find v.l2 line = Cache.M then begin
            v.stats.writebacks <- v.stats.writebacks + 1;
            if on t then ev t v.id (Obs.Writeback { line })
          end;
          Cache.remove v.l1 line;
          Cache.remove v.l2 line;
          Directory.drop t.dir line v.id;
          v.stats.invalidations_received <- v.stats.invalidations_received + 1;
          c.stats.invalidations_sent <- c.stats.invalidations_sent + 1;
          if on t then begin
            ev t c.id (Obs.Inval_sent { line; victim = v.id });
            ev t v.id (Obs.Inval_received { line })
          end
        end;
        if on t && Memtag_unit.live v.tags line then
          ev t v.id (Obs.Tag_evict { line; conflict = true });
        Memtag_unit.on_evict v.tags line Memtag_unit.Conflict
      end)
    t.cores;
  c.stats.coherence_msgs <- c.stats.coherence_msgs + 1;
  t.cfg.lat_dir + inval_round_lat t.cfg !hit

(* ------------------------------------------------------------------ *)
(* Word-level operations.                                              *)

let line_of t addr = Config.line_of_addr t.cfg addr

let read t ~core:cid addr =
  let c = core t cid in
  let lat = acquire t c (line_of t addr) ~excl:false in
  c.stats.loads <- c.stats.loads + 1;
  (Memory.get t.mem addr, lat)

let write t ~core:cid addr v =
  let c = core t cid in
  let lat = acquire t c (line_of t addr) ~excl:true in
  c.stats.stores <- c.stats.stores + 1;
  Memory.set t.mem addr v;
  (* The store buffer hides the miss from the pipeline; coherence side
     effects above still happened in full. *)
  min lat t.cfg.lat_store_buffered

let cas t ~core:cid addr ~expected ~desired =
  let c = core t cid in
  let lat = acquire t c (line_of t addr) ~excl:true in
  c.stats.cas_ops <- c.stats.cas_ops + 1;
  let old = Memory.get t.mem addr in
  if old = expected then begin
    Memory.set t.mem addr desired;
    (true, lat)
  end
  else begin
    c.stats.cas_failures <- c.stats.cas_failures + 1;
    (false, lat)
  end

let faa t ~core:cid addr delta =
  let c = core t cid in
  let lat = acquire t c (line_of t addr) ~excl:true in
  let old = Memory.get t.mem addr in
  Memory.set t.mem addr (old + delta);
  c.stats.stores <- c.stats.stores + 1;
  (old, lat)

(* ------------------------------------------------------------------ *)
(* MemTags operations.                                                 *)

let add_tag t ~core:cid addr ~words =
  let c = core t cid in
  let lines = Config.lines_of_range t.cfg addr words in
  List.fold_left
    (fun lat line ->
      let l = acquire t c line ~excl:false in
      Memtag_unit.add c.tags line;
      c.stats.tag_adds <- c.stats.tag_adds + 1;
      if on t then ev t c.id (Obs.Tag_add { line });
      lat + l + t.cfg.lat_tag_op)
    0 lines

let add_tag_read t ~core:cid addr ~words =
  let c = core t cid in
  let lines = Config.lines_of_range t.cfg addr words in
  let lat =
    List.fold_left
      (fun lat line ->
        let l = acquire t c line ~excl:false in
        Memtag_unit.add c.tags line;
        c.stats.tag_adds <- c.stats.tag_adds + 1;
        if on t then ev t c.id (Obs.Tag_add { line });
        lat + l + t.cfg.lat_tag_op)
      0 lines
  in
  c.stats.loads <- c.stats.loads + 1;
  (Memory.get t.mem addr, lat)

let remove_tag t ~core:cid addr ~words =
  let c = core t cid in
  let lines = Config.lines_of_range t.cfg addr words in
  List.fold_left
    (fun lat line ->
      Memtag_unit.remove c.tags line;
      c.stats.tag_removes <- c.stats.tag_removes + 1;
      if on t then ev t c.id (Obs.Tag_remove { line });
      lat + t.cfg.lat_tag_op)
    0 lines

let record_verdict t c (verdict : Memtag_unit.verdict) =
  c.stats.validates <- c.stats.validates + 1;
  (match verdict with
  | Memtag_unit.Ok -> ()
  | Memtag_unit.Fail_conflict ->
      c.stats.validate_failures <- c.stats.validate_failures + 1
  | Memtag_unit.Fail_spurious ->
      c.stats.validate_failures <- c.stats.validate_failures + 1;
      c.stats.validate_failures_spurious <- c.stats.validate_failures_spurious + 1);
  if Memtag_unit.overflowed c.tags then c.stats.tag_overflows <- c.stats.tag_overflows + 1;
  if on t then
    ev t c.id
      (Obs.Validate
         {
           ok = verdict = Memtag_unit.Ok;
           spurious = verdict = Memtag_unit.Fail_spurious;
         });
  verdict = Memtag_unit.Ok

let validate t ~core:cid =
  let c = core t cid in
  (record_verdict t c (Memtag_unit.check c.tags), t.cfg.lat_validate)

let clear_tag_set t ~core:cid =
  let c = core t cid in
  (* The bulk release ends the attempt's tag footprint in one step; the
     event carries the live count so occupancy accounting stays exact. *)
  (if on t then
     let count = Memtag_unit.count c.tags in
     if count > 0 then ev t c.id (Obs.Tag_clear { count }));
  Memtag_unit.clear c.tags;
  t.cfg.lat_tag_op

let tag_count t ~core:cid = Memtag_unit.count (core t cid).tags

(* Fault-injection hook: retarget every core's tag-capacity ceiling at
   once (mid-run Max_Tags shrink / restore). Purely architectural state —
   no coherence traffic, no latency, no events. *)
let set_max_tags t n = Array.iter (fun c -> Memtag_unit.set_max_tags c.tags n) t.cores

let max_tags t = Memtag_unit.max_tags t.cores.(0).tags

let vas t ~core:cid addr v =
  let c = core t cid in
  c.stats.vas_ops <- c.stats.vas_ops + 1;
  if not (record_verdict t c (Memtag_unit.check c.tags)) then begin
    (* Fail-fast: purely local, no coherence traffic at all. *)
    c.stats.vas_failures <- c.stats.vas_failures + 1;
    if on t then ev t c.id (Obs.Vas { ok = false });
    (false, t.cfg.lat_validate)
  end
  else begin
    let lat = acquire t c (line_of t addr) ~excl:true in
    (* The fill above may itself have capacity-evicted a tagged line, so
       re-check; own writes never evict own tags. *)
    if Memtag_unit.check c.tags <> Memtag_unit.Ok then begin
      c.stats.vas_failures <- c.stats.vas_failures + 1;
      if on t then ev t c.id (Obs.Vas { ok = false });
      (false, t.cfg.lat_validate + lat)
    end
    else begin
      Memory.set t.mem addr v;
      if on t then ev t c.id (Obs.Vas { ok = true });
      (true, t.cfg.lat_validate + lat)
    end
  end

let ias t ~core:cid addr v =
  let c = core t cid in
  c.stats.ias_ops <- c.stats.ias_ops + 1;
  if not (record_verdict t c (Memtag_unit.check c.tags)) then begin
    c.stats.ias_failures <- c.stats.ias_failures + 1;
    if on t then ev t c.id (Obs.Ias { ok = false });
    (false, t.cfg.lat_validate)
  end
  else begin
    let lines = List.sort compare (Memtag_unit.lines c.tags) in
    let target = line_of t addr in
    let lat =
      if t.cfg.ias_tag_targeted then
        (* Minimal semantics: kill each tagged line only at cores that have
           it tagged. Untagged sharers keep their (byte-identical) copies;
           only the target line's write invalidates everyone. *)
        List.fold_left
          (fun lat line ->
            if line = target then lat
            else lat + invalidate_taggers t c line)
          0 lines
      else
        (* Conservative implementation: elevate every tagged line to M. *)
        List.fold_left
          (fun lat line ->
            if line = target then lat else lat + acquire t c line ~excl:true)
          0 lines
    in
    let lat = lat + acquire t c target ~excl:true in
    if Memtag_unit.check c.tags <> Memtag_unit.Ok then begin
      c.stats.ias_failures <- c.stats.ias_failures + 1;
      if on t then ev t c.id (Obs.Ias { ok = false });
      (false, t.cfg.lat_validate + lat)
    end
    else begin
      Memory.set t.mem addr v;
      if on t then ev t c.id (Obs.Ias { ok = true });
      (true, t.cfg.lat_validate + lat)
    end
  end
