module Obs = Mt_obs.Obs

type core = {
  id : int;
  l1 : Cache.t;
  l2 : Cache.t;
  tags : Memtag_unit.t;
  stats : Stats.t;
  mutable scratch : int array;  (* IAS line-sort buffer, grown on demand *)
}

type t = {
  cfg : Config.t;
  mem : Memory.t;
  dir : Directory.t;
  cores : core array;
  obs : Obs.t;
  mutable last_lat : int;
}

let create ?(obs = Obs.null) cfg =
  {
    cfg;
    mem = Memory.create cfg;
    dir = Directory.create ();
    cores =
      Array.init cfg.num_cores (fun id ->
          {
            id;
            l1 = Cache.create ~sets_log2:cfg.l1_sets_log2 ~ways:cfg.l1_ways;
            l2 = Cache.create ~sets_log2:cfg.l2_sets_log2 ~ways:cfg.l2_ways;
            tags = Memtag_unit.create ~max_tags:cfg.max_tags;
            stats = Stats.create ();
            scratch = Array.make cfg.max_tags 0;
          });
    obs;
    last_lat = 0;
  }

let cfg t = t.cfg
let memory t = t.mem
let num_cores t = Array.length t.cores
let obs t = t.obs
let last_latency t = t.last_lat

(* Hook helper: every call site guards with [Obs.enabled] so a disabled
   sink never allocates an event. Timestamps are the simulated clock. *)
let ev t core kind = Obs.emit t.obs ~core ~time:(Runtime.now ()) kind
let on t = Obs.enabled t.obs

let core t core =
  if core < 0 || core >= Array.length t.cores then
    invalid_arg (Printf.sprintf "Machine: bad core id %d" core);
  t.cores.(core)

let stats t ~core:c = (core t c).stats
let total_stats t = Stats.sum (Array.map (fun c -> c.stats) t.cores)
let reset_stats t = Array.iter (fun c -> Stats.reset c.stats) t.cores

let alloc ?label t ~words =
  let addr = Memory.alloc t.mem ~words in
  (match label with
  | Some label when on t ->
      Obs.label_lines t.obs
        ~line_lo:(Config.line_of_addr t.cfg addr)
        ~line_hi:(Config.line_of_addr t.cfg (addr + words - 1))
        label
  | _ -> ());
  addr
let peek t addr = Memory.get t.mem addr
let poke t addr v = Memory.set t.mem addr v

(* ------------------------------------------------------------------ *)
(* Coherence actions on remote cores.                                  *)

(* Remove [line] from [victim]'s whole private hierarchy: a remote core is
   taking exclusive ownership. Kills any tag the victim held on the line. *)
let invalidate_remote t victim line =
  let v = t.cores.(victim) in
  let dirty = Cache.find v.l2 line = M in
  Cache.remove v.l1 line;
  Cache.remove v.l2 line;
  if dirty then v.stats.writebacks <- v.stats.writebacks + 1;
  if on t then begin
    ev t victim (Obs.Inval_received { line });
    if dirty then ev t victim (Obs.Writeback { line });
    if Memtag_unit.live v.tags line then
      ev t victim (Obs.Tag_evict { line; conflict = true })
  end;
  Memtag_unit.on_evict v.tags line Memtag_unit.Conflict;
  v.stats.invalidations_received <- v.stats.invalidations_received + 1;
  Directory.drop t.dir line victim

(* Demote [line] to S at [victim]: a remote core wants read access. Tags
   survive — a downgrade is not an invalidation. *)
let downgrade_remote t victim line =
  let v = t.cores.(victim) in
  let dirty = Cache.find v.l2 line = M in
  if dirty then v.stats.writebacks <- v.stats.writebacks + 1;
  if on t then begin
    ev t victim (Obs.Downgrade { line; victim });
    if dirty then ev t victim (Obs.Writeback { line })
  end;
  Cache.set_state v.l2 line Cache.S;
  Cache.set_state v.l1 line Cache.S;
  v.stats.downgrades_received <- v.stats.downgrades_received + 1

(* ------------------------------------------------------------------ *)
(* Fills with victim handling.                                         *)

(* L1 victim stays in L2 (inclusive hierarchy), but its tag dies: MemTags
   live at the L1 level, so falling out of L1 is a (spurious) eviction. *)
let l1_insert t c line st =
  match Cache.insert c.l1 line st with
  | None -> ()
  | Some (vline, _vst) ->
      if on t && Memtag_unit.live c.tags vline then
        ev t c.id (Obs.Tag_evict { line = vline; conflict = false });
      Memtag_unit.on_evict c.tags vline Memtag_unit.Capacity

(* An L2 victim leaves the whole hierarchy: back-invalidate the L1 copy
   (inclusion), write back if dirty, and tell the directory. *)
let l2_insert t c line st =
  match Cache.insert c.l2 line st with
  | None -> ()
  | Some (vline, vst) ->
      if Cache.find c.l1 vline <> Cache.I then begin
        Cache.remove c.l1 vline;
        if on t && Memtag_unit.live c.tags vline then
          ev t c.id (Obs.Tag_evict { line = vline; conflict = false });
        Memtag_unit.on_evict c.tags vline Memtag_unit.Capacity
      end;
      if vst = Cache.M then begin
        c.stats.writebacks <- c.stats.writebacks + 1;
        if on t then ev t c.id (Obs.Writeback { line = vline })
      end;
      Directory.drop t.dir vline c.id

(* ------------------------------------------------------------------ *)
(* The central access routine: make [line] resident in [c]'s L1 with read
   rights ([excl = false]) or exclusive rights ([excl = true]); drive the
   MESI transitions, count events, and return the latency in cycles. *)

let inval_round_lat cfg n_sharers =
  if n_sharers = 0 then 0
  else cfg.Config.lat_inval + (cfg.Config.lat_inval_per_sharer * n_sharers)

(* Invalidate every other holder; visits cores in ascending id order. The
   count is taken before the sweep because [invalidate_remote] drops each
   victim from the sharer mask as it goes. *)
let invalidate_others t c line =
  let n = Directory.others_count t.dir line c.id in
  Directory.iter_others t.dir line c.id (fun o ->
      if on t then ev t c.id (Obs.Inval_sent { line; victim = o });
      invalidate_remote t o line;
      c.stats.invalidations_sent <- c.stats.invalidations_sent + 1);
  n

let upgrade_from_shared t c line =
  let cfg = t.cfg in
  let n = invalidate_others t c line in
  Directory.set_excl t.dir line c.id;
  c.stats.coherence_msgs <- c.stats.coherence_msgs + 1;
  cfg.lat_dir + inval_round_lat cfg n

let acquire t c line ~excl =
  let cfg = t.cfg in
  let s1 = Cache.probe c.l1 line in
  if s1 >= 0 then begin
    (* L1 hit: the probed slot stays valid across the match (only remote
       caches are touched by an upgrade round). *)
    match Cache.state_at c.l1 s1 with
    | Cache.M ->
        Cache.touch_at c.l1 s1;
        c.stats.l1_hits <- c.stats.l1_hits + 1;
        cfg.lat_l1
    | Cache.E ->
        if excl then begin
          (* silent E -> M promotion *)
          Cache.set_state_at c.l1 s1 Cache.M;
          Cache.set_state c.l2 line Cache.M
        end
        else Cache.touch_at c.l1 s1;
        c.stats.l1_hits <- c.stats.l1_hits + 1;
        cfg.lat_l1
    | Cache.S when not excl ->
        Cache.touch_at c.l1 s1;
        c.stats.l1_hits <- c.stats.l1_hits + 1;
        cfg.lat_l1
    | Cache.S ->
        (* S -> M upgrade: permission round through the directory. *)
        c.stats.l1_hits <- c.stats.l1_hits + 1;
        let lat = upgrade_from_shared t c line in
        Cache.set_state_at c.l1 s1 Cache.M;
        Cache.set_state c.l2 line Cache.M;
        cfg.lat_l1 + lat
    | Cache.I -> assert false
  end
  else begin
      c.stats.l1_misses <- c.stats.l1_misses + 1;
      if on t then ev t c.id (Obs.L1_miss { line });
      let s2 = Cache.probe c.l2 line in
      match (if s2 >= 0 then Cache.state_at c.l2 s2 else Cache.I) with
      | (Cache.M | Cache.E) as st2 ->
          c.stats.l2_hits <- c.stats.l2_hits + 1;
          let st = if excl then Cache.M else st2 in
          if excl && st2 = Cache.E then Cache.set_state_at c.l2 s2 Cache.M;
          l1_insert t c line st;
          cfg.lat_l2
      | Cache.S when not excl ->
          c.stats.l2_hits <- c.stats.l2_hits + 1;
          l1_insert t c line Cache.S;
          cfg.lat_l2
      | Cache.S ->
          c.stats.l2_hits <- c.stats.l2_hits + 1;
          let lat = upgrade_from_shared t c line in
          Cache.set_state_at c.l2 s2 Cache.M;
          l1_insert t c line Cache.M;
          cfg.lat_l2 + lat
      | Cache.I ->
          (* Full miss: directory transaction. *)
          c.stats.l2_misses <- c.stats.l2_misses + 1;
          c.stats.coherence_msgs <- c.stats.coherence_msgs + 1;
          if on t then ev t c.id (Obs.L2_miss { line });
          if excl then begin
            let xlat =
              if Directory.is_uncached t.dir line then cfg.lat_mem
              else begin
                let o = Directory.excl_owner t.dir line in
                if o >= 0 then begin
                  if Debug.on () && o = c.id then
                    invalid_arg "Machine.acquire: self-owned full miss";
                  if on t then ev t c.id (Obs.Inval_sent { line; victim = o });
                  invalidate_remote t o line;
                  c.stats.invalidations_sent <- c.stats.invalidations_sent + 1;
                  cfg.lat_remote
                end
                else begin
                  let n = invalidate_others t c line in
                  cfg.lat_mem + inval_round_lat cfg n
                end
              end
            in
            Directory.set_excl t.dir line c.id;
            l2_insert t c line Cache.M;
            l1_insert t c line Cache.M;
            cfg.lat_dir + xlat
          end
          else if Directory.is_uncached t.dir line then begin
            Directory.set_excl t.dir line c.id;
            l2_insert t c line Cache.E;
            l1_insert t c line Cache.E;
            cfg.lat_dir + cfg.lat_mem
          end
          else begin
            let o = Directory.excl_owner t.dir line in
            if o >= 0 then begin
              if Debug.on () && o = c.id then
                invalid_arg "Machine.acquire: self-owned full miss";
              downgrade_remote t o line;
              Directory.set_shared_pair t.dir line o c.id;
              l2_insert t c line Cache.S;
              l1_insert t c line Cache.S;
              cfg.lat_dir + cfg.lat_remote
            end
            else begin
              Directory.add_sharer t.dir line c.id;
              l2_insert t c line Cache.S;
              l1_insert t c line Cache.S;
              cfg.lat_dir + cfg.lat_mem
            end
          end
    end

(* Kill [line] at every other core that has it *tagged* (IAS invalidation
   step, tag-targeted variant). Returns the latency charged to the issuer:
   a directory interrogation plus one invalidation round if any remote
   tagger existed. Each probed tagger counts as a tag-directory probe
   ([tag_probes_*]); [invalidations_sent/received] additionally count only
   the probes that found — and killed — a cached copy, so the two counter
   families separate "taggers interrogated" (what the latency formula
   charges per sharer) from "copies invalidated". *)
let invalidate_taggers t c line =
  let n_cores = Array.length t.cores in
  let rec go i hit =
    if i >= n_cores then hit
    else begin
      let v = t.cores.(i) in
      if v.id <> c.id && Memtag_unit.is_tagged v.tags line then begin
        c.stats.tag_probes_sent <- c.stats.tag_probes_sent + 1;
        v.stats.tag_probes_received <- v.stats.tag_probes_received + 1;
        if Cache.find v.l2 line <> Cache.I || Cache.find v.l1 line <> Cache.I
        then begin
          if Cache.find v.l2 line = Cache.M then begin
            v.stats.writebacks <- v.stats.writebacks + 1;
            if on t then ev t v.id (Obs.Writeback { line })
          end;
          Cache.remove v.l1 line;
          Cache.remove v.l2 line;
          Directory.drop t.dir line v.id;
          v.stats.invalidations_received <- v.stats.invalidations_received + 1;
          c.stats.invalidations_sent <- c.stats.invalidations_sent + 1;
          if on t then begin
            ev t c.id (Obs.Inval_sent { line; victim = v.id });
            ev t v.id (Obs.Inval_received { line })
          end
        end;
        if on t && Memtag_unit.live v.tags line then
          ev t v.id (Obs.Tag_evict { line; conflict = true });
        Memtag_unit.on_evict v.tags line Memtag_unit.Conflict;
        go (i + 1) (hit + 1)
      end
      else go (i + 1) hit
    end
  in
  let hit = go 0 0 in
  c.stats.coherence_msgs <- c.stats.coherence_msgs + 1;
  t.cfg.lat_dir + inval_round_lat t.cfg hit

(* ------------------------------------------------------------------ *)
(* Word-level operations.                                              *)

let line_of t addr = Config.line_of_addr t.cfg addr

let read t ~core:cid addr =
  let c = core t cid in
  t.last_lat <- acquire t c (line_of t addr) ~excl:false;
  c.stats.loads <- c.stats.loads + 1;
  Memory.get t.mem addr

let write t ~core:cid addr v =
  let c = core t cid in
  let lat = acquire t c (line_of t addr) ~excl:true in
  c.stats.stores <- c.stats.stores + 1;
  Memory.set t.mem addr v;
  (* The store buffer hides the miss from the pipeline; coherence side
     effects above still happened in full. *)
  let lat = min lat t.cfg.lat_store_buffered in
  t.last_lat <- lat;
  lat

let cas t ~core:cid addr ~expected ~desired =
  let c = core t cid in
  t.last_lat <- acquire t c (line_of t addr) ~excl:true;
  c.stats.cas_ops <- c.stats.cas_ops + 1;
  let old = Memory.get t.mem addr in
  if old = expected then begin
    Memory.set t.mem addr desired;
    true
  end
  else begin
    c.stats.cas_failures <- c.stats.cas_failures + 1;
    false
  end

let faa t ~core:cid addr delta =
  let c = core t cid in
  t.last_lat <- acquire t c (line_of t addr) ~excl:true;
  let old = Memory.get t.mem addr in
  Memory.set t.mem addr (old + delta);
  c.stats.stores <- c.stats.stores + 1;
  old

(* ------------------------------------------------------------------ *)
(* MemTags operations.                                                 *)

let check_range words =
  if words <= 0 then invalid_arg "Machine: empty tag range"

(* Tag every line of [first..last], fetching each with read rights. *)
let rec tag_lines t c line last acc =
  if line > last then acc
  else begin
    let l = acquire t c line ~excl:false in
    Memtag_unit.add c.tags line;
    c.stats.tag_adds <- c.stats.tag_adds + 1;
    if on t then ev t c.id (Obs.Tag_add { line });
    tag_lines t c (line + 1) last (acc + l + t.cfg.lat_tag_op)
  end

let add_tag t ~core:cid addr ~words =
  check_range words;
  let c = core t cid in
  let lat =
    tag_lines t c (line_of t addr) (line_of t (addr + words - 1)) 0
  in
  t.last_lat <- lat;
  lat

let add_tag_read t ~core:cid addr ~words =
  check_range words;
  let c = core t cid in
  t.last_lat <- tag_lines t c (line_of t addr) (line_of t (addr + words - 1)) 0;
  c.stats.loads <- c.stats.loads + 1;
  Memory.get t.mem addr

let rec untag_lines t c line last acc =
  if line > last then acc
  else begin
    Memtag_unit.remove c.tags line;
    c.stats.tag_removes <- c.stats.tag_removes + 1;
    if on t then ev t c.id (Obs.Tag_remove { line });
    untag_lines t c (line + 1) last (acc + t.cfg.lat_tag_op)
  end

let remove_tag t ~core:cid addr ~words =
  check_range words;
  let c = core t cid in
  let lat =
    untag_lines t c (line_of t addr) (line_of t (addr + words - 1)) 0
  in
  t.last_lat <- lat;
  lat

let record_verdict t c (verdict : Memtag_unit.verdict) =
  c.stats.validates <- c.stats.validates + 1;
  (match verdict with
  | Memtag_unit.Ok -> ()
  | Memtag_unit.Fail_conflict ->
      c.stats.validate_failures <- c.stats.validate_failures + 1
  | Memtag_unit.Fail_spurious ->
      c.stats.validate_failures <- c.stats.validate_failures + 1;
      c.stats.validate_failures_spurious <- c.stats.validate_failures_spurious + 1);
  if Memtag_unit.overflowed c.tags then c.stats.tag_overflows <- c.stats.tag_overflows + 1;
  if on t then
    ev t c.id
      (Obs.Validate
         {
           ok = verdict = Memtag_unit.Ok;
           spurious = verdict = Memtag_unit.Fail_spurious;
         });
  verdict = Memtag_unit.Ok

let validate t ~core:cid =
  let c = core t cid in
  t.last_lat <- t.cfg.lat_validate;
  record_verdict t c (Memtag_unit.check c.tags)

let clear_tag_set t ~core:cid =
  let c = core t cid in
  (* The bulk release ends the attempt's tag footprint in one step; the
     event carries the live count so occupancy accounting stays exact. *)
  (if on t then
     let count = Memtag_unit.count c.tags in
     if count > 0 then ev t c.id (Obs.Tag_clear { count }));
  Memtag_unit.clear c.tags;
  t.last_lat <- t.cfg.lat_tag_op;
  t.cfg.lat_tag_op

let tag_count t ~core:cid = Memtag_unit.count (core t cid).tags

(* Fault-injection hook: retarget every core's tag-capacity ceiling at
   once (mid-run Max_Tags shrink / restore). Purely architectural state —
   no coherence traffic, no latency, no events. *)
let set_max_tags t n = Array.iter (fun c -> Memtag_unit.set_max_tags c.tags n) t.cores

let max_tags t = Memtag_unit.max_tags t.cores.(0).tags

let vas t ~core:cid addr v =
  let c = core t cid in
  c.stats.vas_ops <- c.stats.vas_ops + 1;
  if not (record_verdict t c (Memtag_unit.check c.tags)) then begin
    (* Fail-fast: purely local, no coherence traffic at all. *)
    c.stats.vas_failures <- c.stats.vas_failures + 1;
    if on t then ev t c.id (Obs.Vas { ok = false });
    t.last_lat <- t.cfg.lat_validate;
    false
  end
  else begin
    let lat = acquire t c (line_of t addr) ~excl:true in
    t.last_lat <- t.cfg.lat_validate + lat;
    (* The fill above may itself have capacity-evicted a tagged line, so
       re-check; own writes never evict own tags. *)
    if Memtag_unit.check c.tags <> Memtag_unit.Ok then begin
      c.stats.vas_failures <- c.stats.vas_failures + 1;
      if on t then ev t c.id (Obs.Vas { ok = false });
      false
    end
    else begin
      Memory.set t.mem addr v;
      if on t then ev t c.id (Obs.Vas { ok = true });
      true
    end
  end

(* Sort the tracked lines ascending into [c.scratch] — the iteration order
   the old sorted-list implementation used — and return the count. *)
let sorted_tag_lines c =
  let n = Memtag_unit.count c.tags in
  if Array.length c.scratch < n then c.scratch <- Array.make (2 * n) 0;
  let n = Memtag_unit.fill_lines c.tags c.scratch in
  let a = c.scratch in
  for i = 1 to n - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j) > x do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done;
  n

let ias t ~core:cid addr v =
  let c = core t cid in
  c.stats.ias_ops <- c.stats.ias_ops + 1;
  if not (record_verdict t c (Memtag_unit.check c.tags)) then begin
    c.stats.ias_failures <- c.stats.ias_failures + 1;
    if on t then ev t c.id (Obs.Ias { ok = false });
    t.last_lat <- t.cfg.lat_validate;
    false
  end
  else begin
    let n = sorted_tag_lines c in
    let target = line_of t addr in
    let tag_targeted = t.cfg.ias_tag_targeted in
    (* Tag-targeted semantics kill each tagged line only at cores that
       have it tagged — untagged sharers keep their (byte-identical)
       copies; only the target line's write invalidates everyone. The
       conservative variant elevates every tagged line to M. *)
    let rec kill i lat =
      if i >= n then lat
      else begin
        let line = c.scratch.(i) in
        if line = target then kill (i + 1) lat
        else if tag_targeted then kill (i + 1) (lat + invalidate_taggers t c line)
        else kill (i + 1) (lat + acquire t c line ~excl:true)
      end
    in
    let lat = kill 0 0 + acquire t c target ~excl:true in
    t.last_lat <- t.cfg.lat_validate + lat;
    if Memtag_unit.check c.tags <> Memtag_unit.Ok then begin
      c.stats.ias_failures <- c.stats.ias_failures + 1;
      if on t then ev t c.id (Obs.Ias { ok = false });
      false
    end
    else begin
      Memory.set t.mem addr v;
      if on t then ev t c.id (Obs.Ias { ok = true });
      true
    end
  end

(* ------------------------------------------------------------------ *)
(* Coherence invariant checker (tests and fuzzing; never on the hot     *)
(* path).                                                              *)

let check_coherence t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let st_name = function
    | Cache.I -> "I"
    | Cache.S -> "S"
    | Cache.E -> "E"
    | Cache.M -> "M"
  in
  Array.iter
    (fun c ->
      (* Inclusion: every L1-resident line is L2-resident, in the same
         state (fills propagate the L2 state; upgrades, promotions and
         downgrades always touch both levels). *)
      Cache.iter c.l1 (fun line st1 ->
          let st2 = Cache.find c.l2 line in
          if st2 = Cache.I then
            fail "core %d: L1 holds line %d (%s) absent from L2" c.id line
              (st_name st1);
          if st2 <> st1 then
            fail "core %d: line %d is %s in L1 but %s in L2" c.id line
              (st_name st1) (st_name st2));
      (* Every resident line is known to the directory, with matching
         rights. Together with the directory pass below this also gives
         M/E uniqueness: an M/E holder must be the directory's exclusive
         owner, and Excl admits no other resident copy. *)
      Cache.iter c.l2 (fun line st2 ->
          match Directory.sharing t.dir line with
          | Directory.Uncached ->
              fail "core %d: holds line %d (%s) but directory says uncached"
                c.id line (st_name st2)
          | Directory.Excl o ->
              if o <> c.id then
                fail "core %d: holds line %d but directory owner is core %d"
                  c.id line o;
              if st2 = Cache.S then
                fail "core %d: line %d is S in L2 but directory says Excl"
                  c.id line
          | Directory.Shared cores ->
              if not (List.mem c.id cores) then
                fail "core %d: holds line %d but is not in the sharer set"
                  c.id line;
              if st2 <> Cache.S then
                fail "core %d: line %d is %s in L2 but directory says Shared"
                  c.id line (st_name st2)))
    t.cores;
  (* The directory lists no phantom holders. *)
  Directory.iter_lines t.dir (fun line ->
      match Directory.sharing t.dir line with
      | Directory.Uncached -> ()
      | Directory.Excl o ->
          if o < 0 || o >= Array.length t.cores then
            fail "directory: line %d owned by bogus core %d" line o;
          if Cache.find t.cores.(o).l2 line = Cache.I then
            fail "directory: line %d Excl at core %d but not resident there"
              line o
      | Directory.Shared cores ->
          List.iter
            (fun o ->
              if o < 0 || o >= Array.length t.cores then
                fail "directory: line %d shared by bogus core %d" line o;
              if Cache.find t.cores.(o).l2 line = Cache.I then
                fail "directory: line %d shared at core %d but not resident there"
                  line o)
            cores)
