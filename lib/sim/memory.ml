type addr = int

let null = 0

(* Memory is a growable array of fixed-size chunks so that allocation never
   copies and address arithmetic stays cheap. *)
let chunk_log2 = 16
let chunk_words = 1 lsl chunk_log2
let chunk_mask = chunk_words - 1

type t = {
  line_words : int;
  mutable chunks : int array array;
  mutable next_free : addr;
}

let create cfg =
  let line_words = Config.line_words cfg in
  {
    line_words;
    chunks = Array.init 4 (fun _ -> Array.make chunk_words 0);
    (* Skip line 0 entirely so that address 0 is an unambiguous null. *)
    next_free = line_words;
  }

let ensure_capacity t addr =
  let needed_chunks = (addr lsr chunk_log2) + 1 in
  if needed_chunks > Array.length t.chunks then begin
    let n = max needed_chunks (2 * Array.length t.chunks) in
    let chunks = Array.make n [||] in
    Array.blit t.chunks 0 chunks 0 (Array.length t.chunks);
    for i = Array.length t.chunks to n - 1 do
      chunks.(i) <- Array.make chunk_words 0
    done;
    t.chunks <- chunks
  end

let alloc t ~words =
  if words <= 0 then invalid_arg "Memory.alloc: words must be positive";
  let base = t.next_free in
  let rounded = (words + t.line_words - 1) land lnot (t.line_words - 1) in
  t.next_free <- base + rounded;
  ensure_capacity t (t.next_free - 1);
  base

let allocated_words t = t.next_free

let check t addr =
  if addr <= 0 || addr >= t.next_free then
    invalid_arg (Printf.sprintf "Memory: address %d out of bounds" addr)

(* The bounds check is debug-gated (DESIGN §12): with checks off a stray
   address indexes whatever chunk it lands in (array bounds still trap on
   truly wild values), mirroring release-mode hardware. *)
let get t addr =
  if Debug.on () then check t addr;
  t.chunks.(addr lsr chunk_log2).(addr land chunk_mask)

let set t addr v =
  if Debug.on () then check t addr;
  t.chunks.(addr lsr chunk_log2).(addr land chunk_mask) <- v
