(** Shared node layout and pointer packing for the list variants.

    A node occupies one cache line: word 0 is the key, word 1 the packed
    next pointer. In the marking-based variants (Harris–Michael, VAS) the
    low bit of the packed pointer is the mark bit; the HoH variant always
    stores it as 0. Packing leaves 61 bits for word addresses, far more
    than any simulation uses. *)

let words = 2
let key_off = 0
let next_off = 1

let pack ptr ~marked = (ptr lsl 1) lor (if marked then 1 else 0)
let ptr_of packed = packed asr 1
let is_marked packed = packed land 1 = 1

open Mt_core

(* [alloc ctx k next] builds a fresh node (its own cache line). [label]
   attributes the line in the hot-line contention profiler. *)
let alloc ?(label = "list-node") ctx ~key ~next ~marked =
  let node = Ctx.alloc ~label ctx ~words in
  Ctx.write ctx (node + key_off) key;
  Ctx.write ctx (node + next_off) (pack next ~marked);
  node

let key ctx node = Ctx.read ctx (node + key_off)
let next_packed ctx node = Ctx.read ctx (node + next_off)

(* Tagged loads: tag the node's line and return a field in one access —
   the fused "AddTag(x, sizeof(node)); read x" pattern. *)
let tagged_key ctx node = Ctx.add_tag_read ctx (node + key_off) ~words
let tagged_next ctx node = Ctx.add_tag_read ctx (node + next_off) ~words:1

(* Direct (timing-free) list walk for test oracles. *)
let to_list_unsafe machine head =
  let open Mt_sim in
  let rec go node acc =
    if node = Memory.null then List.rev acc
    else
      let k = Machine.peek machine (node + key_off) in
      let nx = Machine.peek machine (node + next_off) in
      let acc =
        if k = min_int || k = max_int || is_marked nx then acc else k :: acc
      in
      go (ptr_of nx) acc
  in
  go head []
