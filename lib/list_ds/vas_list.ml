open Mt_core

type t = { head : Ctx.addr }

let name = "vas-list"

let create ctx =
  let tail = Node.alloc ~label:"vas-node" ctx ~key:max_int ~next:Mt_sim.Memory.null ~marked:false in
  let head = Node.alloc ~label:"vas-node" ctx ~key:min_int ~next:tail ~marked:false in
  { head }

(* HELPIFNEEDED (Algorithm 1, lines 3-12): [curr] is marked; unlink it from
   [pred] with tag + VAS. Always followed by a restart of LOCATE. *)
let help ctx pred curr curr_next =
  let pn = Node.tagged_next ctx pred in
  if Node.is_marked pn || Node.ptr_of pn <> curr then Ctx.clear_tag_set ctx
  else begin
    let (_ : int) = Node.tagged_next ctx curr in
    (* Marked nodes never change, so succ is the same for all helpers. *)
    let succ = Node.ptr_of curr_next in
    ignore (Ctx.vas ctx (pred + Node.next_off) (Node.pack succ ~marked:false));
    Ctx.clear_tag_set ctx
  end

(* LOCATE (Algorithm 1, lines 13-21): untagged traversal; helping restarts
   the search from scratch. Returns [(pred, curr, curr_key)]. *)
let rec locate ctx t k =
  let rec advance pred curr =
    let curr_next = Node.next_packed ctx curr in
    if Node.is_marked curr_next then begin
      help ctx pred curr curr_next;
      locate ctx t k
    end
    else begin
      let ck = Node.key ctx curr in
      if ck >= k then (pred, curr, ck) else advance curr (Node.ptr_of curr_next)
    end
  in
  let first = Node.ptr_of (Node.next_packed ctx t.head) in
  advance t.head first

(* Tag pred and curr, then re-check that both are unmarked and adjacent
   (Algorithm 1 lines 26-30 / 40-45). Returns [None] on conflict, otherwise
   [Some curr_next]. *)
let tag_and_check ctx pred curr =
  let pn = Node.tagged_next ctx pred in
  let cn = Node.tagged_next ctx curr in
  if Node.is_marked pn || Node.is_marked cn || Node.ptr_of pn <> curr then begin
    Ctx.clear_tag_set ctx;
    None
  end
  else Some cn

let insert ctx t k =
  let rec go attempt =
    let pred, curr, ck = locate ctx t k in
    if ck = k then false
    else
      let retry () =
        Ctx.cm_wait ~site:(pred + Node.next_off) ctx ~attempt;
        go (attempt + 1)
      in
      match tag_and_check ctx pred curr with
      | None -> retry ()
      | Some _curr_next ->
          let node = Node.alloc ~label:"vas-node" ctx ~key:k ~next:curr ~marked:false in
          if Ctx.vas ctx (pred + Node.next_off) (Node.pack node ~marked:false) then begin
            Ctx.clear_tag_set ctx;
            true
          end
          else begin
            Ctx.clear_tag_set ctx;
            retry ()
          end
  in
  go 0

let delete ctx t k =
  let rec go attempt =
    let pred, curr, ck = locate ctx t k in
    if ck <> k then false
    else
      let retry site =
        Ctx.cm_wait ~site ctx ~attempt;
        go (attempt + 1)
      in
      match tag_and_check ctx pred curr with
      | None -> retry (pred + Node.next_off)
      | Some curr_next ->
          let succ = Node.ptr_of curr_next in
          (* Logical deletion via VAS on curr's own next pointer. *)
          if not (Ctx.vas ctx (curr + Node.next_off) (Node.pack succ ~marked:true))
          then begin
            Ctx.clear_tag_set ctx;
            retry (curr + Node.next_off)
          end
          else begin
            (* Best-effort unlink; our own mark write did not evict our tags. *)
            ignore (Ctx.vas ctx (pred + Node.next_off) (Node.pack succ ~marked:false));
            Ctx.clear_tag_set ctx;
            true
          end
  in
  go 0

let contains ctx t k =
  let rec go node =
    let ck = Node.key ctx node in
    if ck < k then go (Node.ptr_of (Node.next_packed ctx node))
    else ck = k && not (Node.is_marked (Node.next_packed ctx node))
  in
  go (Node.ptr_of (Node.next_packed ctx t.head))

let to_list_unsafe machine t = Node.to_list_unsafe machine t.head
