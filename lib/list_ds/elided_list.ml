open Mt_core

type t = {
  head : Ctx.addr;
  mode : Mode.t;
  lock : Ctx.addr;
  slow_runs : Ctx.addr;  (* diagnostic counter, in simulated memory *)
}

let name = "elided-hoh-list"

(* Consecutive fast-path failures before giving up on the fast path. *)
let threshold = 8

let create ctx =
  let tail = Node.alloc ~label:"elided-node" ctx ~key:max_int ~next:Mt_sim.Memory.null ~marked:false in
  let head = Node.alloc ~label:"elided-node" ctx ~key:min_int ~next:tail ~marked:false in
  let machine = Ctx.machine ctx in
  { head; mode = Mode.create machine; lock = Ctx.alloc ~label:"elided-lock" ctx ~words:1;
    slow_runs = Ctx.alloc ~label:"elided-lock" ctx ~words:1 }

let slow_path_count machine t = Mt_sim.Machine.peek machine t.slow_runs

exception Restart = Ctx.Restart

exception Mode_slow

(* ------------------------------------------------------------------ *)
(* Fast path: the HoH algorithm, with the mode line in the tag set. *)

(* Tag the mode line and check it reads FAST. A SLOW reading is not a
   fast-path failure: the caller waits for the mode to return to FAST
   rather than escalating (otherwise one fallback would cascade into a
   fallback stampede). *)
let arm_mode ctx t =
  if Ctx.add_tag_read ctx (Mode.addr t.mode) ~words:1 <> Mode.fast then raise Mode_slow

let locate ctx t k =
  arm_mode ctx t;
  let pred = t.head in
  let (_ : int) = Node.tagged_key ctx pred in
  let curr = Node.ptr_of (Node.next_packed ctx pred) in
  let ck = Node.tagged_key ctx curr in
  if not (Ctx.validate ctx) then raise Restart;
  let rec advance pred curr ck =
    if ck >= k then (pred, curr, ck)
    else begin
      let succ = Node.ptr_of (Node.next_packed ctx curr) in
      Ctx.remove_tag ctx pred ~words:Node.words;
      let sk = Node.tagged_key ctx succ in
      if not (Ctx.validate ctx) then raise Restart;
      advance curr succ sk
    end
  in
  advance pred curr ck

let fast_insert ctx t k =
  let pred, curr, ck = locate ctx t k in
  if ck = k then Some false
  else begin
    let node = Node.alloc ~label:"elided-node" ctx ~key:k ~next:curr ~marked:false in
    if Ctx.vas ctx (pred + Node.next_off) (Node.pack node ~marked:false) then Some true
    else raise Restart
  end

let fast_delete ctx t k =
  let pred, curr, ck = locate ctx t k in
  if ck <> k then Some false
  else begin
    let succ = Node.ptr_of (Node.next_packed ctx curr) in
    if Ctx.ias ctx (pred + Node.next_off) (Node.pack succ ~marked:false) then Some true
    else raise Restart
  end

(* ------------------------------------------------------------------ *)
(* Slow path: plain sequential code under the global lock, with the mode
   flipped to SLOW so that no fast-path operation can commit meanwhile. *)

let with_lock ctx t f =
  let rec acquire () =
    if not (Ctx.cas ctx t.lock ~expected:0 ~desired:1) then begin
      Ctx.work ctx 8;
      acquire ()
    end
  in
  acquire ();
  Mode.set_slow ctx t.mode;
  let (_ : int) = Ctx.faa ctx t.slow_runs 1 in
  let result = f () in
  Mode.set_fast ctx t.mode;
  Ctx.write ctx t.lock 0;
  result

let slow_locate ctx t k =
  let rec go pred curr =
    let ck = Node.key ctx curr in
    if ck >= k then (pred, curr, ck)
    else go curr (Node.ptr_of (Node.next_packed ctx curr))
  in
  let first = Node.ptr_of (Node.next_packed ctx t.head) in
  go t.head first

let slow_insert ctx t k () =
  let pred, curr, ck = slow_locate ctx t k in
  if ck = k then false
  else begin
    let node = Node.alloc ~label:"elided-node" ctx ~key:k ~next:curr ~marked:false in
    Ctx.write ctx (pred + Node.next_off) (Node.pack node ~marked:false);
    true
  end

let slow_delete ctx t k () =
  let pred, curr, ck = slow_locate ctx t k in
  if ck <> k then false
  else begin
    let succ = Node.ptr_of (Node.next_packed ctx curr) in
    Ctx.write ctx (pred + Node.next_off) (Node.pack succ ~marked:false);
    true
  end

(* ------------------------------------------------------------------ *)

(* Run [fast] with bounded retries, then fall back to [slow] under the
   lock. When the mode reads SLOW we also wait-or-fallback immediately.
   This keeps its own loop rather than {!Ctx.with_restarts} because the
   failure counter doubles as the lock-fallback trigger; the contention
   policy hooks in before each fast-path retry (a no-op under
   [immediate], preserving the historical behavior exactly). *)
let elide ctx t ~fast ~slow =
  let rec wait_fast () =
    if not (Mode.is_fast ctx t.mode) then begin
      Ctx.work ctx 32;
      wait_fast ()
    end
  in
  let rec attempt fails =
    if fails >= threshold then begin
      Ctx.clear_tag_set ctx;
      with_lock ctx t slow
    end
    else
      match fast ctx t with
      | Some result ->
          Ctx.clear_tag_set ctx;
          result
      | None ->
          Ctx.clear_tag_set ctx;
          Ctx.cm_wait ~site:t.head ctx ~attempt:fails;
          attempt (fails + 1)
      | exception Restart ->
          Ctx.clear_tag_set ctx;
          Ctx.cm_wait ~site:t.head ctx ~attempt:fails;
          attempt (fails + 1)
      | exception Mode_slow ->
          Ctx.clear_tag_set ctx;
          wait_fast ();
          attempt fails
  in
  attempt 0

let insert ctx t k = elide ctx t ~fast:(fun ctx t -> fast_insert ctx t k) ~slow:(slow_insert ctx t k)

let delete ctx t k = elide ctx t ~fast:(fun ctx t -> fast_delete ctx t k) ~slow:(slow_delete ctx t k)

(* Plain traversal; linearizable for the same frozen-successor reason as in
   Hoh_list: neither fast nor slow deletes ever write the removed node. *)
let contains ctx t k =
  let rec go node =
    let ck = Node.key ctx node in
    if ck < k then go (Node.ptr_of (Node.next_packed ctx node)) else ck = k
  in
  go (Node.ptr_of (Node.next_packed ctx t.head))

let to_list_unsafe machine t = Node.to_list_unsafe machine t.head
