open Mt_core

type t = { head : Ctx.addr }

let name = "hoh-list"

let create ctx =
  let tail = Node.alloc ~label:"hoh-node" ctx ~key:max_int ~next:Mt_sim.Memory.null ~marked:false in
  let head = Node.alloc ~label:"hoh-node" ctx ~key:min_int ~next:tail ~marked:false in
  { head }

exception Restart = Ctx.Restart

(* LOCATE (Algorithm 2): hand-over-hand tagging. Returns [(pred, curr,
   curr_key)] with [pred.key < k <= curr_key]; [pred] and [curr] remain
   tagged, and the last successful validate proved both reachable from the
   head. The caller must eventually [clear_tag_set]. Restarts go through
   {!Ctx.with_restarts}: clear the tag set, consult the contention
   policy, try again. *)
let locate ctx t k =
  Ctx.with_restarts ~site:t.head ctx (fun () ->
      let pred = t.head in
      (* Tag the head (its key is -inf), then a tagged load of curr's key. *)
      let (_ : int) = Node.tagged_key ctx pred in
      let curr = Node.ptr_of (Node.next_packed ctx pred) in
      let ck = Node.tagged_key ctx curr in
      if not (Ctx.validate ctx) then raise Restart;
      (* Window invariant: tags = {pred, curr}, both validated in the list,
         and curr was read from pred.next while pred was tagged. The window
         can shrink to {curr} while extending: the Synchronization Rule (a
         delete IAS-invalidates the nodes it removes) means a deletion of
         curr kills our tag on curr directly — the pred tag is not needed to
         detect it. *)
      let rec advance pred curr ck =
        if ck >= k then (pred, curr, ck)
        else begin
          let succ = Node.ptr_of (Node.next_packed ctx curr) in
          Ctx.remove_tag ctx pred ~words:Node.words;
          let sk = Node.tagged_key ctx succ in
          if not (Ctx.validate ctx) then raise Restart;
          advance curr succ sk
        end
      in
      advance pred curr ck)

let insert ctx t k =
  let rec go attempt =
    let pred, curr, ck = locate ctx t k in
    if ck = k then begin
      Ctx.clear_tag_set ctx;
      false
    end
    else begin
      let node = Node.alloc ~label:"hoh-node" ctx ~key:k ~next:curr ~marked:false in
      if Ctx.vas ctx (pred + Node.next_off) (Node.pack node ~marked:false) then begin
        Ctx.clear_tag_set ctx;
        true
      end
      else begin
        Ctx.clear_tag_set ctx;
        Ctx.cm_wait ~site:(pred + Node.next_off) ctx ~attempt;
        go (attempt + 1)
      end
    end
  in
  go 0

let delete ctx t k =
  let rec go attempt =
    let pred, curr, ck = locate ctx t k in
    if ck <> k then begin
      Ctx.clear_tag_set ctx;
      false
    end
    else begin
      let succ = Node.ptr_of (Node.next_packed ctx curr) in
      (* IAS, not VAS: invalidate the deleted node (and pred) at all cores so
         concurrent traversals tagging curr fail their next validation. *)
      if Ctx.ias ctx (pred + Node.next_off) (Node.pack succ ~marked:false) then begin
        Ctx.clear_tag_set ctx;
        true
      end
      else begin
        Ctx.clear_tag_set ctx;
        Ctx.cm_wait ~site:(pred + Node.next_off) ctx ~attempt;
        go (attempt + 1)
      end
    end
  in
  go 0

(* Plain untagged traversal. Linearizable without tags or marks because a
   HoH delete never writes the node it deletes: an unlinked node's next
   pointer is frozen forever, so a traversal wandering through a
   concurrently-deleted region follows pointers that were valid at a time
   overlapping this operation — the classic frozen-successor argument. This
   matches the paper's Section 6 note that read operations "remain the
   same" as in the original structures. A fully tagged search is available
   as {!contains_tagged}. *)
let contains ctx t k =
  let rec go node =
    let ck = Node.key ctx node in
    if ck < k then go (Node.ptr_of (Node.next_packed ctx node)) else ck = k
  in
  go (Node.ptr_of (Node.next_packed ctx t.head))

(* SEARCH exactly as in Algorithm 2: locate with HoH tagging. *)
let contains_tagged ctx t k =
  let _, _, ck = locate ctx t k in
  (* The tagging inside LOCATE established a time when curr was in the
     list; the key itself is immutable. *)
  Ctx.clear_tag_set ctx;
  ck = k

let to_list_unsafe machine t = Node.to_list_unsafe machine t.head

module For_testing = struct
  let locate = locate
end

(* Plain (untagged, unvalidated) walk collecting keys in [lo, hi]. Not
   atomic on its own: the sharded store calls this under its per-shard
   version protocol, which proves the structure quiescent over the walk
   whenever the enclosing scan validates. [budget] bounds the walk so a
   doomed attempt racing live updates still terminates. *)
let scan_plain ctx t ~lo ~hi ~budget =
  let rec go node fuel acc =
    if fuel <= 0 || node = Mt_sim.Memory.null then List.rev acc
    else begin
      let ck = Node.key ctx node in
      if ck > hi then List.rev acc
      else
        let next = Node.ptr_of (Node.next_packed ctx node) in
        let acc = if ck >= lo && ck <> min_int then ck :: acc else acc in
        go next (fuel - 1) acc
    end
  in
  go (Node.ptr_of (Node.next_packed ctx t.head)) budget []

let range ctx t ~lo ~hi =
  let max_tags = (Mt_sim.Machine.cfg (Ctx.machine ctx)).Mt_sim.Config.max_tags in
  Ctx.with_restarts ~site:t.head ctx (fun () ->
      match
        let _, curr, ck = locate ctx t lo in
        (* Keep every node of the snapshot tagged; extend hand-over-hand but
           without untagging, validating after each extension. *)
        let rec collect node nk acc =
          if nk > hi then List.rev acc
          else if Ctx.tag_count ctx >= max_tags then raise Exit
          else begin
            let succ = Node.ptr_of (Node.next_packed ctx node) in
            let sk = Node.tagged_key ctx succ in
            if not (Ctx.validate ctx) then raise Restart;
            collect succ sk (nk :: acc)
          end
        in
        collect curr ck []
      with
      | keys ->
          Ctx.clear_tag_set ctx;
          Some keys
      | exception Exit ->
          Ctx.clear_tag_set ctx;
          None)
