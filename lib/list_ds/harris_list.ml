open Mt_core

type t = { head : Ctx.addr }

let name = "harris-list"

let create ctx =
  let tail = Node.alloc ~label:"harris-node" ctx ~key:max_int ~next:Mt_sim.Memory.null ~marked:false in
  let head = Node.alloc ~label:"harris-node" ctx ~key:min_int ~next:tail ~marked:false in
  { head }

(* [search ctx t k] returns [(pred, curr, curr_key)] with
   [pred.key < k <= curr_key] and both nodes unmarked when observed.
   Physically unlinks any marked nodes it passes (Michael's helping). *)
let rec search ctx t k =
  let rec advance pred curr =
    let curr_next = Node.next_packed ctx curr in
    if Node.is_marked curr_next then begin
      let succ = Node.ptr_of curr_next in
      if
        Ctx.cas ctx
          (pred + Node.next_off)
          ~expected:(Node.pack curr ~marked:false)
          ~desired:(Node.pack succ ~marked:false)
      then advance pred succ
      else search ctx t k
    end
    else begin
      let ck = Node.key ctx curr in
      if ck >= k then (pred, curr, ck) else advance curr (Node.ptr_of curr_next)
    end
  in
  let first = Node.ptr_of (Node.next_packed ctx t.head) in
  advance t.head first

let rec insert ctx t k =
  let pred, curr, ck = search ctx t k in
  if ck = k then false
  else begin
    let node = Node.alloc ~label:"harris-node" ctx ~key:k ~next:curr ~marked:false in
    if
      Ctx.cas ctx
        (pred + Node.next_off)
        ~expected:(Node.pack curr ~marked:false)
        ~desired:(Node.pack node ~marked:false)
    then true
    else insert ctx t k
  end

let rec delete ctx t k =
  let pred, curr, ck = search ctx t k in
  if ck <> k then false
  else begin
    let curr_next = Node.next_packed ctx curr in
    if Node.is_marked curr_next then delete ctx t k
    else if
      (* Logical deletion: set the mark bit on curr's next pointer. *)
      Ctx.cas ctx
        (curr + Node.next_off)
        ~expected:curr_next
        ~desired:(Node.pack (Node.ptr_of curr_next) ~marked:true)
    then begin
      (* Best-effort physical unlink; traversals will finish the job. *)
      ignore
        (Ctx.cas ctx
           (pred + Node.next_off)
           ~expected:(Node.pack curr ~marked:false)
           ~desired:(Node.pack (Node.ptr_of curr_next) ~marked:false));
      true
    end
    else delete ctx t k
  end

(* Wait-free membership test: pure traversal, no helping. *)
let contains ctx t k =
  let rec go node =
    let ck = Node.key ctx node in
    if ck < k then go (Node.ptr_of (Node.next_packed ctx node))
    else ck = k && not (Node.is_marked (Node.next_packed ctx node))
  in
  go (Node.ptr_of (Node.next_packed ctx t.head))

let to_list_unsafe machine t = Node.to_list_unsafe machine t.head
