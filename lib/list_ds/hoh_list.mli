(** The hand-over-hand tagged linked list (paper Algorithm 2).

    No mark bits at all: traversals keep tags on a sliding window of
    [(pred, curr)] — readers never write — and deletes perform the pointer
    swing with invalidate-and-swap, which invalidates the deleted node at
    every core that has it tagged ("transient marking"). This aborts any
    concurrent traversal standing on the deleted node, which is exactly the
    Figure 1 counterexample that plain VAS cannot prevent. *)

include Set_intf.SET

(** [range ctx t ~lo ~hi] returns an atomic snapshot of the keys in
    [\[lo, hi\]] by keeping every node of the range tagged and validating
    at each extension (the paper's "cheap lock-free snapshots"). Returns
    [None] if the range cannot fit in the tag set ([Max_Tags]). *)
val range : Mt_core.Ctx.t -> t -> lo:int -> hi:int -> int list option

(** [scan_plain ctx t ~lo ~hi ~budget] — plain untagged walk collecting
    keys in [\[lo, hi\]], visiting at most [budget] nodes. {e Not} atomic
    on its own: callers must prove quiescence externally (the sharded
    store's per-shard version protocol does), or treat the result as a
    racy approximation. *)
val scan_plain : Mt_core.Ctx.t -> t -> lo:int -> hi:int -> budget:int -> int list

(** SEARCH exactly as written in the paper's Algorithm 2: a fully
    HoH-tagged locate. [contains] itself uses a plain untagged traversal,
    which is linearizable because deleted nodes are frozen (see the
    implementation comment); the tagged variant is kept for comparison and
    for the ablation bench. *)
val contains_tagged : Mt_core.Ctx.t -> t -> int -> bool

(** Internals exposed for white-box tests (e.g. reproducing Figure 1). *)
module For_testing : sig
  (** [locate ctx t k] returns [(pred, curr, curr_key)] and leaves [pred]
      and [curr] tagged; the caller must [clear_tag_set]. *)
  val locate : Mt_core.Ctx.t -> t -> int -> Mt_core.Ctx.addr * Mt_core.Ctx.addr * int
end
