(** Open-loop serve-layer traffic for the sharded store: a request-kind
    mix (point/txn/scan percentages) decoded deterministically from each
    request's payload, so a run is a pure function of the serve config —
    byte-identical for any [--jobs] and with tracing on or off. *)

(** A request-kind mix; the three percentages sum to 100. *)
type mix = { point_pct : int; txn_pct : int; scan_pct : int }

(** [mix ~point_pct ~txn_pct] — scan gets the remainder. *)
val mix : point_pct:int -> txn_pct:int -> mix

(** E.g. ["p80-t15-s5"]. *)
val mix_name : mix -> string

type spec = {
  backend : (module Backend.S);
  shards : int;
  key_space : int;
  prefill : int;  (** seeded keys inserted before serving *)
  mix : mix;
  txn_keys : int;  (** sub-ops per transaction *)
  scan_width : int;  (** keys covered by one range scan *)
}

(** Defaults: 4 shards, 2^20 keys, 1024 prefilled, 3-key transactions,
    4096-wide scans. *)
val spec :
  ?shards:int ->
  ?key_space:int ->
  ?prefill:int ->
  ?txn_keys:int ->
  ?scan_width:int ->
  backend:(module Backend.S) ->
  mix:mix ->
  unit ->
  spec

(** Request-class labels for the serve layer's per-class latency
    breakdown: [[| "point"; "txn"; "scan" |]]. *)
val classes : string array

(** The class index ([classes]) a payload decodes to under [spec]'s mix. *)
val classify : spec -> int -> int

(** [run spec config] serves the mixed workload against a store built in
    setup (with seeded prefill); returns the serve result (including the
    per-class latency breakdown) and the store's operation counters for
    the serving phase. *)
val run :
  ?cfg:Mt_sim.Config.t ->
  ?obs:Mt_obs.Obs.t ->
  ?make_policy:(Mt_sim.Machine.t -> Mt_sim.Runtime.policy) ->
  ?series:Mt_obs.Series.t ->
  ?cm:Mt_cm.Cm.spec ->
  spec ->
  Mt_serve.Server.config ->
  Mt_serve.Server.result * Store.stats
