(** The sharded multi-structure store.

    Hash-partitions a key space across per-core shards (key [k] lives in
    shard [k mod shards]), each backed by a pluggable tagged structure
    ({!Backend.S}). All cross-operation coordination lives in one
    kCAS-managed {e version word} per shard (even = unlocked, odd =
    locked, monotonically increasing):

    - {b point ops} touch exactly one shard — writes take the shard's
      version lock with a single-word CAS, gets validate optimistically
      by re-reading the version — with zero cross-shard coordination;
    - {b transactions} acquire every touched shard's lock in one
      [Kcas.kcas_tagged] and release them all with one [Kcas.kcas] (the
      commit's linearization point), aborting with a cause after a
      bounded number of acquisition retries;
    - {b scans/snapshots} tag each touched shard's version word
      (Kcas.snapshot-style), walk shards with the backend's plain
      collect, and validate the whole tag set at one instant, falling
      back to a monotone-version re-read pass that re-collects only the
      shards that actually moved (so spurious tag capacity evictions and
      [shards > Max_Tags] both degrade gracefully instead of failing).

    Progress and accounting are deterministic: a run is a pure function
    of the simulation, byte-identical for any [--jobs] and with tracing
    on or off. Obs hooks: [Store_op], [Txn_commit], [Txn_abort],
    [Scan_validate]. *)

type op = Get | Insert | Delete

val op_name : op -> string

type outcome =
  | Committed of bool list
      (** per-sub-op results, in the order the sub-ops were given *)
  | Aborted of { cause : string; retries : int }
      (** lock acquisition exhausted its retry budget; no sub-op ran and
          no shard was modified ([cause] is ["shard-locked"] or
          ["version-changed"]) *)

(** Host-level operation counters (a pure function of the simulation). *)
type stats = {
  point_ops : int;
  txn_commits : int;
  txn_aborts : int;
  txn_sub_ops : int;
  txn_retries : int;  (** acquisition retries, committed and aborted *)
  txn_retries_locked : int;  (** retries caused by a locked shard *)
  txn_retries_version : int;  (** retries caused by a version change *)
  scans : int;
  scan_collects : int;  (** per-shard walk executions (>= touched shards) *)
  scan_tag_fallbacks : int;
      (** tag validations that failed and fell back to the version
          re-read pass (spurious or real) *)
  scan_shard_retries : int;  (** shards re-collected after moving *)
  shard_ops : int array;  (** routed ops per shard (imbalance source) *)
}

type t

(** [create backend ctx ~shards ~key_space] — keys are [0 .. key_space-1].
    [txn_max_retries] (default 8) bounds transaction lock acquisition.
    Call from a quiescent context (e.g. serve setup) before sharing. *)
val create :
  ?txn_max_retries:int ->
  (module Backend.S) ->
  Mt_core.Ctx.t ->
  shards:int ->
  key_space:int ->
  t

val num_shards : t -> int
val key_space : t -> int
val backend_name : t -> string

(** The shard routing function: [k mod num_shards]. *)
val shard_of : t -> int -> int

(** Point ops: shard-local, linearizable. *)
val get : Mt_core.Ctx.t -> t -> int -> bool

val insert : Mt_core.Ctx.t -> t -> int -> bool
val delete : Mt_core.Ctx.t -> t -> int -> bool

(** [txn ctx t ops] — atomic multi-key transaction across shards. Either
    every sub-op runs (under all touched shard locks, released atomically)
    or none does. *)
val txn : Mt_core.Ctx.t -> t -> (int * op) list -> outcome

(** [scan ctx t ~lo ~hi] — an atomic snapshot of the keys in [\[lo, hi\]]
    (both within the key space), merged across shards in ascending
    order. Retries only the shards whose version moved. *)
val scan : Mt_core.Ctx.t -> t -> lo:int -> hi:int -> int list

(** Whole-store snapshot: [scan] over the full key space. *)
val snapshot_all : Mt_core.Ctx.t -> t -> int list

val stats : t -> stats
val reset_stats : t -> unit

(** Hottest shard's share of routed ops, normalized: 1.0 = perfectly
    uniform, [num_shards] = everything on one shard. *)
val imbalance : stats -> float

(** Timing-free contents for test oracles (quiescent machine only). *)
val to_list_unsafe : Mt_sim.Machine.t -> t -> int list
