(** Pluggable shard backends for the sharded store.

    A backend is a tagged set structure ({!Mt_list.Set_intf.SET}) plus a
    plain-read range collect. The store's atomicity never leans on a
    backend op's tag set (every structure clears it internally); range
    scans pair [scan_plain] with the store's per-shard version words,
    which prove the walked shard quiescent whenever the scan validates. *)

module type S = sig
  include Mt_list.Set_intf.SET

  (** Plain (untagged, unvalidated) walk collecting the keys in
      [\[lo, hi\]], visiting at most [budget] nodes. Only atomic under an
      external quiescence proof (the store's version protocol). *)
  val scan_plain :
    Mt_core.Ctx.t -> t -> lo:int -> hi:int -> budget:int -> int list
end

(** The hand-over-hand tagged list ({!Mt_list.Hoh_list}). *)
module Hoh_list : S

(** The HoH-tagged relaxed (a,b)-tree, (4,8). *)
module Hoh_abtree : S

(** A transactional BST on tagged NOrec; each shard owns a private STM
    instance so only the store coordinates across shards. *)
module Norec_map : S

(** Registry, keyed by the backend's [name]: ["hoh-list"],
    ["hoh-abtree"], ["norec-tagged"]. *)
val all : (string * (module S)) list

val by_name : string -> (module S) option
val name : (module S) -> string
