module Serve = Mt_serve.Server

(* Open-loop traffic for the sharded store: each request's 62-bit payload
   deterministically selects a request class (point/txn/scan per the mix)
   and its keys, so a run is a pure function of the serve config. *)

type mix = { point_pct : int; txn_pct : int; scan_pct : int }

let mix ~point_pct ~txn_pct =
  if point_pct < 0 || txn_pct < 0 || point_pct + txn_pct > 100 then
    invalid_arg "Store_serve.mix: bad percentages";
  { point_pct; txn_pct; scan_pct = 100 - point_pct - txn_pct }

let mix_name m = Printf.sprintf "p%d-t%d-s%d" m.point_pct m.txn_pct m.scan_pct

type spec = {
  backend : (module Backend.S);
  shards : int;
  key_space : int;
  prefill : int;
  mix : mix;
  txn_keys : int;
  scan_width : int;
}

let spec ?(shards = 4) ?(key_space = 1 lsl 20) ?(prefill = 1024)
    ?(txn_keys = 3) ?(scan_width = 4096) ~backend ~mix () =
  if shards <= 0 then invalid_arg "Store_serve.spec: shards";
  if key_space < shards then invalid_arg "Store_serve.spec: key_space";
  if prefill < 0 || prefill > key_space then
    invalid_arg "Store_serve.spec: prefill";
  if txn_keys <= 0 then invalid_arg "Store_serve.spec: txn_keys";
  if scan_width <= 0 || scan_width > key_space then
    invalid_arg "Store_serve.spec: scan_width";
  { backend; shards; key_space; prefill; mix; txn_keys; scan_width }

let classes = [| "point"; "txn"; "scan" |]

let classify spec payload =
  let c = payload mod 100 in
  if c < spec.mix.point_pct then 0
  else if c < spec.mix.point_pct + spec.mix.txn_pct then 1
  else 2

(* One LCG step per payload-derived field (the xorshift* multiplier,
   which fits OCaml's 63-bit ints); masking keeps it non-negative. *)
let lcg h = ((h * 2685821657736338717) + 1442695040888963407) land max_int

let op spec ctx store payload =
  let h = lcg payload in
  match classify spec payload with
  | 0 ->
      let k = h mod spec.key_space in
      let h = lcg h in
      let o = h mod 100 in
      if o < 34 then ignore (Store.insert ctx store k)
      else if o < 68 then ignore (Store.delete ctx store k)
      else ignore (Store.get ctx store k)
  | 1 ->
      let rec build i h acc =
        if i = 0 then List.rev acc
        else begin
          let h = lcg h in
          let k = h mod spec.key_space in
          let h = lcg h in
          let o =
            match h mod 3 with
            | 0 -> Store.Insert
            | 1 -> Store.Delete
            | _ -> Store.Get
          in
          build (i - 1) h ((k, o) :: acc)
        end
      in
      ignore (Store.txn ctx store (build spec.txn_keys h []))
  | _ ->
      let lo = h mod (spec.key_space - spec.scan_width + 1) in
      ignore (Store.scan ctx store ~lo ~hi:(lo + spec.scan_width - 1))

let run ?cfg ?obs ?make_policy ?series ?cm spec (c : Serve.config) =
  let store = ref None in
  let setup ctx =
    let st =
      Store.create spec.backend ctx ~shards:spec.shards
        ~key_space:spec.key_space
    in
    (* Sparse seeded prefill through the point-op path; stats reset after
       so the measured counters cover the serving phase only. *)
    let g = Mt_sim.Prng.create ~seed:(c.seed + 1) in
    for _ = 1 to spec.prefill do
      ignore (Store.insert ctx st (Mt_sim.Prng.int g spec.key_space))
    done;
    Store.reset_stats st;
    store := Some st;
    st
  in
  let name = Printf.sprintf "store-%s" (Backend.name spec.backend) in
  let r =
    Serve.run ?cfg ?obs ?make_policy ?series ?cm
      ~classes:(classes, classify spec)
      ~name ~setup ~op:(op spec) c
  in
  (r, Store.stats (Option.get !store))
