open Mt_core

(* A store shard backend: a tagged set structure plus a plain-read range
   collect. The store never relies on a backend op's own tag set surviving
   the call — every structure clears the tag set internally — which is why
   scan atomicity comes from the store's per-shard version words and the
   backend only has to provide an unvalidated walk ([scan_plain]) that the
   version protocol proves quiescent. *)
module type S = sig
  include Mt_list.Set_intf.SET

  (** Plain (untagged, unvalidated) walk collecting the keys in
      [\[lo, hi\]], visiting at most [budget] nodes. Only atomic under an
      external quiescence proof (the store's version protocol). *)
  val scan_plain : Ctx.t -> t -> lo:int -> hi:int -> budget:int -> int list
end

module Hoh_list : S = struct
  include Mt_list.Hoh_list
end

module Hoh_abtree : S = struct
  include Mt_abtree.Abtree_hoh.Make (struct
    let a = 4
    let b = 8
  end)

  let name = "hoh-abtree"
end

(* Each shard owns a private tagged-NOrec instance (its own sequence
   lock), so transactions on distinct shards never conflict at the STM
   layer — cross-shard atomicity is the store's job, not NOrec's. *)
module Norec_map : S = struct
  module Stm = Mt_stm.Norec_tagged
  module TM = Mt_stamp.Tx_map.Make (Stm)

  type t = { stm : Stm.t; map : TM.t }

  let name = "norec-tagged"
  let create ctx = { stm = Stm.create ctx; map = TM.create ctx }

  let insert ctx t k =
    Stm.atomically ctx t.stm (fun tx -> TM.insert tx t.map k k)

  let delete ctx t k =
    Stm.atomically ctx t.stm (fun tx -> TM.remove tx t.map k <> None)

  let contains ctx t k =
    Stm.atomically ctx t.stm (fun tx -> TM.find tx t.map k <> None)

  let scan_plain ctx t ~lo ~hi ~budget =
    TM.scan_keys_plain ctx t.map ~lo ~hi ~budget

  let to_list_unsafe machine t =
    List.map fst (TM.to_alist_unsafe machine t.map)
end

let all : (string * (module S)) list =
  [
    ("hoh-list", (module Hoh_list));
    ("hoh-abtree", (module Hoh_abtree));
    ("norec-tagged", (module Norec_map));
  ]

let by_name n = List.assoc_opt n all
let name (module B : S) = B.name
