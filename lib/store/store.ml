open Mt_core
module Kcas = Mt_kcas.Kcas
module Obs = Mt_obs.Obs

(* A sharded multi-structure store. Keys hash-partition (k mod shards)
   across per-core shards, each backed by a pluggable tagged structure.
   Concurrency control lives entirely in one kCAS-managed *version word*
   per shard (its own cache line): even = unlocked, odd = locked, and the
   value only ever increases, so there is no ABA.

   - Point writes lock their one shard with a single-word CAS
     (even v -> v+1), run the backend op, release (v+1 -> v+2). Zero
     cross-shard coordination.
   - Point gets are optimistic: read the version (even), run the
     backend's linearizable [contains], re-read the version; equal means
     no writer held or took the shard lock during the read, so the value
     seen is committed state. (Without this check a point get could
     observe a cross-shard transaction's sub-op before the transaction's
     release — unlinearizable, see test_store.)
   - Transactions acquire every touched shard's lock in one
     [Kcas.kcas_tagged] (all even v_i -> v_i+1, fail-fast on tags), apply
     sub-ops under the locks, and release all locks atomically with one
     [Kcas.kcas] — the release is the commit's linearization point.
     Acquisition retries are bounded; exhaustion aborts with a cause.
   - Scans tag each touched shard's version word (Kcas.snapshot-style),
     walk the shard with the backend's plain collect, then validate the
     whole tag set once. On a broken or capacity-evicted tag the plain
     re-read fallback discriminates: versions are monotone, so a version
     unchanged between a shard's pre-walk read and the re-read pass
     proves that shard quiescent over an interval containing the pass
     start — a common instant for every shard. Only shards whose version
     moved are re-collected. *)

type op = Get | Insert | Delete

let op_name = function Get -> "get" | Insert -> "insert" | Delete -> "delete"

type outcome =
  | Committed of bool list
  | Aborted of { cause : string; retries : int }

type stats = {
  point_ops : int;
  txn_commits : int;
  txn_aborts : int;
  txn_sub_ops : int;
  txn_retries : int;
  txn_retries_locked : int;
  txn_retries_version : int;
  scans : int;
  scan_collects : int;
  scan_tag_fallbacks : int;
  scan_shard_retries : int;
  shard_ops : int array;
}

(* Host-level accounting: a pure function of the simulation, so it is
   byte-identical for any --jobs and with tracing on or off. *)
type counters = {
  mutable c_point_ops : int;
  mutable c_txn_commits : int;
  mutable c_txn_aborts : int;
  mutable c_txn_sub_ops : int;
  mutable c_txn_retries : int;
  mutable c_txn_retries_locked : int;  (* failed acquisitions, by cause *)
  mutable c_txn_retries_version : int;
  mutable c_scans : int;
  mutable c_scan_collects : int;
  mutable c_scan_tag_fallbacks : int;
  mutable c_scan_shard_retries : int;
  c_shard_ops : int array;
}

(* Shard imbalance: hottest shard's share of routed ops, normalized so a
   perfectly uniform split is 1.0 and "everything on one shard" is
   [num_shards]. *)
let imbalance st =
  let total = Array.fold_left ( + ) 0 st.shard_ops in
  if total = 0 then 1.0
  else
    let hottest = Array.fold_left max 0 st.shard_ops in
    float_of_int (hottest * Array.length st.shard_ops) /. float_of_int total

type t =
  | T : {
      backend : (module Backend.S with type t = 'b);
      backend_name : string;
      shards : 'b array;
      versions : Ctx.addr array;
      key_space : int;
      txn_max_retries : int;
      scan_budget : int;
      c : counters;
    }
      -> t

let create ?(txn_max_retries = 8) (backend : (module Backend.S)) ctx ~shards
    ~key_space =
  if shards <= 0 then invalid_arg "Store.create: shards must be positive";
  if key_space < shards then invalid_arg "Store.create: key_space < shards";
  if txn_max_retries < 0 then invalid_arg "Store.create: txn_max_retries";
  let (module B) = backend in
  let versions =
    Array.init shards (fun _ ->
        (* One word per line: shard locks never false-share. *)
        let a = Ctx.alloc ~label:"store-version" ctx ~words:1 in
        Kcas.init ctx a 0;
        a)
  in
  let per_shard = ((key_space + shards - 1) / shards) + 1 in
  T
    {
      backend = (module B : Backend.S with type t = B.t);
      backend_name = B.name;
      shards = Array.init shards (fun _ -> B.create ctx);
      versions;
      key_space;
      txn_max_retries;
      (* Enough fuel to walk a whole shard (every structure visits at most
         ~2 nodes per resident key) plus slack; a doomed racy walk burning
         it out just fails the version check and retries. *)
      scan_budget = (2 * per_shard) + 64;
      c =
        {
          c_point_ops = 0;
          c_txn_commits = 0;
          c_txn_aborts = 0;
          c_txn_sub_ops = 0;
          c_txn_retries = 0;
          c_txn_retries_locked = 0;
          c_txn_retries_version = 0;
          c_scans = 0;
          c_scan_collects = 0;
          c_scan_tag_fallbacks = 0;
          c_scan_shard_retries = 0;
          c_shard_ops = Array.make shards 0;
        };
    }

let num_shards (T s) = Array.length s.versions
let key_space (T s) = s.key_space
let backend_name (T s) = s.backend_name

let shard_of (T s) k =
  if k < 0 then invalid_arg "Store.shard_of: negative key";
  k mod Array.length s.versions

let stats (T s) =
  {
    point_ops = s.c.c_point_ops;
    txn_commits = s.c.c_txn_commits;
    txn_aborts = s.c.c_txn_aborts;
    txn_sub_ops = s.c.c_txn_sub_ops;
    txn_retries = s.c.c_txn_retries;
    txn_retries_locked = s.c.c_txn_retries_locked;
    txn_retries_version = s.c.c_txn_retries_version;
    scans = s.c.c_scans;
    scan_collects = s.c.c_scan_collects;
    scan_tag_fallbacks = s.c.c_scan_tag_fallbacks;
    scan_shard_retries = s.c.c_scan_shard_retries;
    shard_ops = Array.copy s.c.c_shard_ops;
  }

let reset_stats (T s) =
  s.c.c_point_ops <- 0;
  s.c.c_txn_commits <- 0;
  s.c.c_txn_aborts <- 0;
  s.c.c_txn_sub_ops <- 0;
  s.c.c_txn_retries <- 0;
  s.c.c_txn_retries_locked <- 0;
  s.c.c_txn_retries_version <- 0;
  s.c.c_scans <- 0;
  s.c.c_scan_collects <- 0;
  s.c.c_scan_tag_fallbacks <- 0;
  s.c.c_scan_shard_retries <- 0;
  Array.fill s.c.c_shard_ops 0 (Array.length s.c.c_shard_ops) 0

let emit ctx kind =
  let o = Ctx.obs ctx in
  if Obs.enabled o then Obs.emit o ~core:(Ctx.core ctx) ~time:(Ctx.now ctx) kind

let check_key key_space k =
  if k < 0 || k >= key_space then invalid_arg "Store: key out of range"

let locked v = v land 1 = 1
let backoff_cycles attempt = min 512 (16 lsl min attempt 5)

(* The historical capped-shift backoff is each retry site's [immediate]
   default; a non-immediate contention policy replaces it (keyed on the
   shard's version word as the contended location). *)
let retry_wait ctx ~site ~attempt =
  Ctx.cm_wait_default ~site ctx ~attempt ~default:(fun () ->
      backoff_cycles attempt)

(* Spin until the shard's version is even and our CAS takes it odd.
   Returns the locked (odd) version. Writers always release, so this
   terminates under any fair schedule. *)
let acquire ctx versions sh =
  let rec go attempt =
    let v = Kcas.get ctx versions.(sh) in
    if (not (locked v)) && Kcas.cas ctx versions.(sh) ~expected:v ~desired:(v + 1)
    then v + 1
    else begin
      retry_wait ctx ~site:versions.(sh) ~attempt;
      go (attempt + 1)
    end
  in
  go 0

let release ctx versions sh vlocked =
  (* We hold the lock: nothing else may move the version word, and a
     transaction's tagged acquire only fires on even values. *)
  let ok = Kcas.cas ctx versions.(sh) ~expected:vlocked ~desired:(vlocked + 1) in
  if not ok then failwith "Store: release CAS lost while holding the lock"

let point_done ctx c sh =
  c.c_point_ops <- c.c_point_ops + 1;
  c.c_shard_ops.(sh) <- c.c_shard_ops.(sh) + 1;
  emit ctx (Obs.Store_op { shard = sh })

let insert ctx (T s) k =
  check_key s.key_space k;
  let module B = (val s.backend) in
  let sh = k mod Array.length s.versions in
  let vl = acquire ctx s.versions sh in
  let r = B.insert ctx s.shards.(sh) k in
  release ctx s.versions sh vl;
  point_done ctx s.c sh;
  r

let delete ctx (T s) k =
  check_key s.key_space k;
  let module B = (val s.backend) in
  let sh = k mod Array.length s.versions in
  let vl = acquire ctx s.versions sh in
  let r = B.delete ctx s.shards.(sh) k in
  release ctx s.versions sh vl;
  point_done ctx s.c sh;
  r

let get ctx (T s) k =
  check_key s.key_space k;
  let module B = (val s.backend) in
  let sh = k mod Array.length s.versions in
  let rec attempt tries =
    let v = Kcas.get ctx s.versions.(sh) in
    if locked v then begin
      retry_wait ctx ~site:s.versions.(sh) ~attempt:tries;
      attempt (tries + 1)
    end
    else begin
      let r = B.contains ctx s.shards.(sh) k in
      (* Version unchanged across the read: no writer held or took the
         shard lock meanwhile, so [r] is committed state. *)
      if Kcas.get ctx s.versions.(sh) = v then r
      else begin
        retry_wait ctx ~site:s.versions.(sh) ~attempt:tries;
        attempt (tries + 1)
      end
    end
  in
  let r = attempt 0 in
  point_done ctx s.c sh;
  r

let txn ctx (T s) ops =
  List.iter (fun (k, _) -> check_key s.key_space k) ops;
  match ops with
  | [] -> Committed []
  | _ ->
      let module B = (val s.backend) in
      let nsh = Array.length s.versions in
      let shard_ids =
        List.sort_uniq compare (List.map (fun (k, _) -> k mod nsh) ops)
      in
      let t0 = Ctx.now ctx in
      let last_cause = ref "shard-locked" in
      (* All-or-nothing lock acquisition: one tagged kCAS over every
         touched shard's version word, even v_i -> odd v_i+1. The tag
         front end fails fast (no descriptor traffic) when a version
         moved under us. *)
      let rec try_acquire attempt =
        if attempt > s.txn_max_retries then None
        else begin
          let vs =
            List.map (fun sh -> (sh, Kcas.get ctx s.versions.(sh))) shard_ids
          in
          if List.exists (fun (_, v) -> locked v) vs then begin
            last_cause := "shard-locked";
            s.c.c_txn_retries_locked <- s.c.c_txn_retries_locked + 1;
            retry_wait ctx ~site:s.versions.(List.hd shard_ids) ~attempt;
            try_acquire (attempt + 1)
          end
          else begin
            let ups =
              List.map
                (fun (sh, v) ->
                  { Kcas.addr = s.versions.(sh); expected = v; desired = v + 1 })
                vs
            in
            if Kcas.kcas_tagged ctx ups then Some (vs, attempt)
            else begin
              last_cause := "version-changed";
              s.c.c_txn_retries_version <- s.c.c_txn_retries_version + 1;
              retry_wait ctx ~site:s.versions.(List.hd shard_ids) ~attempt;
              try_acquire (attempt + 1)
            end
          end
        end
      in
      (match try_acquire 0 with
      | None ->
          s.c.c_txn_aborts <- s.c.c_txn_aborts + 1;
          s.c.c_txn_retries <- s.c.c_txn_retries + s.txn_max_retries;
          emit ctx
            (Obs.Txn_abort
               { cause = !last_cause; retries = s.txn_max_retries });
          Aborted { cause = !last_cause; retries = s.txn_max_retries }
      | Some (vs, retries) ->
          s.c.c_txn_retries <- s.c.c_txn_retries + retries;
          (* Sub-ops run under every touched shard's lock; nothing is
             visible as committed until the atomic release below. *)
          let results =
            List.map
              (fun (k, o) ->
                let sh = k mod nsh in
                s.c.c_txn_sub_ops <- s.c.c_txn_sub_ops + 1;
                s.c.c_shard_ops.(sh) <- s.c.c_shard_ops.(sh) + 1;
                emit ctx (Obs.Store_op { shard = sh });
                match o with
                | Get -> B.contains ctx s.shards.(sh) k
                | Insert -> B.insert ctx s.shards.(sh) k
                | Delete -> B.delete ctx s.shards.(sh) k)
              ops
          in
          let rel =
            List.map
              (fun (sh, v) ->
                {
                  Kcas.addr = s.versions.(sh);
                  expected = v + 1;
                  desired = v + 2;
                })
              vs
          in
          (* Atomic release of every lock: the commit's linearization
             point. Cannot fail — we hold all the locks. *)
          if not (Kcas.kcas ctx rel) then
            failwith "Store: txn release kCAS lost while holding the locks";
          s.c.c_txn_commits <- s.c.c_txn_commits + 1;
          emit ctx
            (Obs.Txn_commit
               { shards = List.length shard_ids; cycles = Ctx.now ctx - t0 });
          Committed results)

let scan ctx (T s) ~lo ~hi =
  check_key s.key_space lo;
  check_key s.key_space hi;
  if lo > hi then invalid_arg "Store.scan: lo > hi";
  let module B = (val s.backend) in
  let nsh = Array.length s.versions in
  (* Residue classes intersecting [lo, hi]: all of them unless the window
     is narrower than the shard count. *)
  let relevant =
    if hi - lo + 1 >= nsh then List.init nsh (fun i -> i)
    else List.sort_uniq compare (List.init (hi - lo + 1) (fun i -> (lo + i) mod nsh))
  in
  let nrel = List.length relevant in
  let machine = Ctx.machine ctx in
  let vers = Array.make nsh 0 in
  let res : int list array = Array.make nsh [] in
  let dirty = Array.make nsh false in
  List.iter (fun sh -> dirty.(sh) <- true) relevant;
  let rec round () =
    (* Tags certify the whole shard set at one instant only if every
       version word fits the tag set; past capacity (or under a squeeze)
       we go straight to the monotone-version fallback. *)
    let use_tags = nrel <= Mt_sim.Machine.max_tags machine in
    if use_tags then Ctx.clear_tag_set ctx;
    let read_version sh =
      if use_tags then Kcas.get_tagged ctx s.versions.(sh)
      else Kcas.get ctx s.versions.(sh)
    in
    (* Re-pin shards kept from earlier rounds: versions are monotone, so
       an unchanged version means the shard never moved since its walk. *)
    List.iter
      (fun sh ->
        if not dirty.(sh) then begin
          let v = read_version sh in
          if v <> vers.(sh) then begin
            dirty.(sh) <- true;
            s.c.c_scan_shard_retries <- s.c.c_scan_shard_retries + 1;
            emit ctx (Obs.Scan_validate { shard = sh; ok = false })
          end
        end)
      relevant;
    (* Collect invalidated shards: pin an even version, then walk with
       plain reads. *)
    List.iter
      (fun sh ->
        if dirty.(sh) then begin
          let rec pin tries =
            let v = read_version sh in
            if locked v then begin
              retry_wait ctx ~site:s.versions.(sh) ~attempt:tries;
              pin (tries + 1)
            end
            else v
          in
          vers.(sh) <- pin 0;
          res.(sh) <- B.scan_plain ctx s.shards.(sh) ~lo ~hi ~budget:s.scan_budget;
          s.c.c_scan_collects <- s.c.c_scan_collects + 1;
          dirty.(sh) <- false
        end)
      relevant;
    if use_tags && Ctx.validate ctx then begin
      (* Fast path: one validate proves every tagged version word
         unchanged since its (re-)read — all shards quiescent from their
         walks through this single instant. *)
      Ctx.clear_tag_set ctx;
      List.iter
        (fun sh -> emit ctx (Obs.Scan_validate { shard = sh; ok = true }))
        relevant
    end
    else begin
      if use_tags then begin
        Ctx.clear_tag_set ctx;
        s.c.c_scan_tag_fallbacks <- s.c.c_scan_tag_fallbacks + 1
      end;
      (* Plain re-read pass, sound without tags: every walk precedes the
         pass and every re-read follows its start, so an unchanged
         (monotone) version pins each shard's frozen interval around the
         pass start — a common instant. Discriminates spurious tag
         failures (capacity evictions) from real shard movement, and
         re-collects only the movers. *)
      let all_ok = ref true in
      List.iter
        (fun sh ->
          let v = Kcas.get ctx s.versions.(sh) in
          if v <> vers.(sh) then begin
            dirty.(sh) <- true;
            all_ok := false;
            s.c.c_scan_shard_retries <- s.c.c_scan_shard_retries + 1;
            emit ctx (Obs.Scan_validate { shard = sh; ok = false })
          end)
        relevant;
      if !all_ok then
        List.iter
          (fun sh -> emit ctx (Obs.Scan_validate { shard = sh; ok = true }))
          relevant
      else round ()
    end
  in
  round ();
  s.c.c_scans <- s.c.c_scans + 1;
  List.sort compare (List.concat_map (fun sh -> res.(sh)) relevant)

let snapshot_all ctx (T s as t) = scan ctx t ~lo:0 ~hi:(s.key_space - 1)

let to_list_unsafe machine (T s) =
  let module B = (val s.backend) in
  List.sort compare
    (List.concat_map
       (fun shard -> B.to_list_unsafe machine shard)
       (Array.to_list s.shards))
