test/test_stm.ml: Alcotest Config Ctx Harness List Machine Mt_core Mt_sim Mt_stm Prng Runtime
