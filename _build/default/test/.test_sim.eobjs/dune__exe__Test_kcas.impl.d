test/test_kcas.ml: Alcotest Array Config Ctx Harness List Machine Mt_core Mt_kcas Mt_sim Prng
