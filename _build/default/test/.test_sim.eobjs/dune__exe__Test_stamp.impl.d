test/test_stamp.ml: Alcotest Config Ctx Harness Int List Machine Mt_core Mt_sim Mt_stamp Mt_stm Prng Stdlib
