test/test_llxscx.ml: Alcotest Array Config Ctx Harness Machine Mt_core Mt_llxscx Mt_sim
