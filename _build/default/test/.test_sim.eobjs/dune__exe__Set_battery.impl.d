test/set_battery.ml: Alcotest Array Config Ctx Harness Int List Machine Mt_core Mt_list Mt_sim Prng Set Stats
