test/test_abtree.ml: Alcotest Array Config Ctx Format Harness Int List Machine Mt_abtree Mt_core Mt_list Mt_sim Prng QCheck QCheck_alcotest Set Set_battery String
