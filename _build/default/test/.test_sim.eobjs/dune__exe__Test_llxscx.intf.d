test/test_llxscx.mli:
