test/test_kcas.mli:
