test/test_sim.ml: Alcotest Array Cache Config Directory List Machine Memory Memtag_unit Mt_core Mt_sim Pqueue Prng QCheck QCheck_alcotest Runtime
