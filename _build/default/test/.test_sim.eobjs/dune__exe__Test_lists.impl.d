test/test_lists.ml: Alcotest Array Config Ctx Harness List Machine Mt_core Mt_list Mt_sim Printf Prng Runtime Set_battery
