test/test_abtree.mli:
