(* Tests for the LLX/SCX primitives: snapshot semantics, conflict
   detection, finalizing, helping under concurrency, and lock-freedom-ish
   accounting on a shared record. *)

open Mt_sim
open Mt_core
module Llx_scx = Mt_llxscx.Llx_scx

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine ?(cores = 4) () = Machine.create (Config.default ~num_cores:cores ())

let snapshot_exn = function
  | Llx_scx.Snapshot s -> s
  | Llx_scx.Finalized -> Alcotest.fail "unexpected FINALIZED"
  | Llx_scx.Fail -> Alcotest.fail "unexpected FAIL"

let test_llx_snapshot () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let r = Llx_scx.alloc_record ctx ~mutable_fields:2 ~extra_words:1 in
      Llx_scx.init_field ctx r 0 11;
      Llx_scx.init_field ctx r 1 22;
      let s = snapshot_exn (Llx_scx.llx ctx r) in
      check_int "field 0" 11 s.fields.(0);
      check_int "field 1" 22 s.fields.(1);
      check_bool "vlx holds" true (Llx_scx.vlx ctx s))

let test_scx_updates_field () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let r = Llx_scx.alloc_record ctx ~mutable_fields:1 ~extra_words:0 in
      Llx_scx.init_field ctx r 0 5;
      let s = snapshot_exn (Llx_scx.llx ctx r) in
      let ok =
        Llx_scx.scx ctx ~v:[ s ] ~r:[] ~fld:(Llx_scx.field_addr r 0) ~old_val:5
          ~new_val:9
      in
      check_bool "scx succeeds" true ok;
      let s2 = snapshot_exn (Llx_scx.llx ctx r) in
      check_int "updated" 9 s2.fields.(0);
      check_bool "old snapshot invalid" false (Llx_scx.vlx ctx s))

let test_scx_fails_on_stale_snapshot () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let r = Llx_scx.alloc_record ctx ~mutable_fields:1 ~extra_words:0 in
      Llx_scx.init_field ctx r 0 5;
      let s_stale = snapshot_exn (Llx_scx.llx ctx r) in
      let s_fresh = snapshot_exn (Llx_scx.llx ctx r) in
      let ok =
        Llx_scx.scx ctx ~v:[ s_fresh ] ~r:[] ~fld:(Llx_scx.field_addr r 0) ~old_val:5
          ~new_val:6
      in
      check_bool "first scx ok" true ok;
      let ok2 =
        Llx_scx.scx ctx ~v:[ s_stale ] ~r:[] ~fld:(Llx_scx.field_addr r 0) ~old_val:5
          ~new_val:7
      in
      check_bool "stale scx fails" false ok2;
      check_int "value from first scx" 6 (Machine.peek m (Llx_scx.field_addr r 0)))

let test_finalize_marks () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let r = Llx_scx.alloc_record ctx ~mutable_fields:1 ~extra_words:0 in
      let holder = Llx_scx.alloc_record ctx ~mutable_fields:1 ~extra_words:0 in
      Llx_scx.init_field ctx holder 0 r;
      let hs = snapshot_exn (Llx_scx.llx ctx holder) in
      let rs = snapshot_exn (Llx_scx.llx ctx r) in
      (* Remove r from holder and finalize it. *)
      let ok =
        Llx_scx.scx ctx ~v:[ hs; rs ] ~r:[ r ] ~fld:(Llx_scx.field_addr holder 0)
          ~old_val:r ~new_val:0
      in
      check_bool "scx ok" true ok;
      check_bool "marked" true (Llx_scx.is_marked_unsafe m r);
      match Llx_scx.llx ctx r with
      | Llx_scx.Finalized -> ()
      | _ -> Alcotest.fail "llx on finalized record must return FINALIZED")

let test_scx_on_finalized_fails () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let r = Llx_scx.alloc_record ctx ~mutable_fields:1 ~extra_words:0 in
      let holder = Llx_scx.alloc_record ctx ~mutable_fields:1 ~extra_words:0 in
      Llx_scx.init_field ctx holder 0 r;
      let hs = snapshot_exn (Llx_scx.llx ctx holder) in
      let rs = snapshot_exn (Llx_scx.llx ctx r) in
      (* A competing operation takes a snapshot of r before finalization. *)
      let rs_stale = snapshot_exn (Llx_scx.llx ctx r) in
      let ok =
        Llx_scx.scx ctx ~v:[ hs; rs ] ~r:[ r ] ~fld:(Llx_scx.field_addr holder 0)
          ~old_val:r ~new_val:0
      in
      check_bool "finalizing scx ok" true ok;
      let ok2 =
        Llx_scx.scx ctx ~v:[ rs_stale ] ~r:[] ~fld:(Llx_scx.field_addr r 0) ~old_val:0
          ~new_val:42
      in
      check_bool "scx on finalized fails" false ok2;
      ignore m)

let test_r_subset_check () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let r = Llx_scx.alloc_record ctx ~mutable_fields:1 ~extra_words:0 in
      let other = Llx_scx.alloc_record ctx ~mutable_fields:1 ~extra_words:0 in
      let s = snapshot_exn (Llx_scx.llx ctx r) in
      Alcotest.check_raises "R must be subset of V"
        (Invalid_argument "Llx_scx.scx: R not a subset of V") (fun () ->
          ignore
            (Llx_scx.scx ctx ~v:[ s ] ~r:[ other ] ~fld:(Llx_scx.field_addr r 0)
               ~old_val:0 ~new_val:1)))

(* Concurrent SCXs on one shared record implementing a counter: each
   increment LLXes, then SCXes field0 <- field0 + 1. Successful increments
   must be exactly reflected in the final value (atomicity), and at least
   one operation must succeed per round system-wide (lock-freedom). *)
let test_concurrent_counter () =
  let threads = 4 in
  let m = machine ~cores:threads () in
  let r =
    Harness.exec1 m (fun ctx ->
        let r = Llx_scx.alloc_record ctx ~mutable_fields:1 ~extra_words:0 in
        Llx_scx.init_field ctx r 0 0;
        r)
  in
  let successes = Array.make threads 0 in
  let (_ : int) =
    Harness.exec m ~threads (fun ctx ->
        for _ = 1 to 200 do
          match Llx_scx.llx ctx r with
          | Llx_scx.Snapshot s ->
              let cur = s.fields.(0) in
              if
                Llx_scx.scx ctx ~v:[ s ] ~r:[] ~fld:(Llx_scx.field_addr r 0)
                  ~old_val:cur ~new_val:(cur + 1)
              then successes.(Ctx.core ctx) <- successes.(Ctx.core ctx) + 1
          | Llx_scx.Finalized | Llx_scx.Fail -> ()
        done)
  in
  let total = Array.fold_left ( + ) 0 successes in
  check_bool "some increments succeeded" true (total > 0);
  check_int "final value equals successful increments" total
    (Machine.peek m (Llx_scx.field_addr r 0))

(* Two records, two fibers performing conflicting multi-record SCXs;
   outcomes must be consistent with atomic freezing: never both succeed
   writing interleaved state. *)
let test_concurrent_two_record_swap () =
  let m = machine ~cores:2 () in
  let ra, rb =
    Harness.exec1 m (fun ctx ->
        let ra = Llx_scx.alloc_record ctx ~mutable_fields:1 ~extra_words:0 in
        let rb = Llx_scx.alloc_record ctx ~mutable_fields:1 ~extra_words:0 in
        Llx_scx.init_field ctx ra 0 1;
        Llx_scx.init_field ctx rb 0 2;
        (ra, rb))
  in
  let outcomes = Array.make 2 0 in
  let (_ : int) =
    Harness.exec m ~threads:2 (fun ctx ->
        let id = Ctx.core ctx in
        let target = if id = 0 then ra else rb in
        for _ = 1 to 100 do
          match (Llx_scx.llx ctx ra, Llx_scx.llx ctx rb) with
          | Llx_scx.Snapshot sa, Llx_scx.Snapshot sb ->
              (* Write (a+b) into one's own target conditioned on both. *)
              let sum = sa.fields.(0) + sb.fields.(0) in
              if
                Llx_scx.scx ctx ~v:[ sa; sb ] ~r:[]
                  ~fld:(Llx_scx.field_addr target 0)
                  ~old_val:(if id = 0 then sa.fields.(0) else sb.fields.(0))
                  ~new_val:sum
              then outcomes.(id) <- outcomes.(id) + 1
          | _ -> ()
        done)
  in
  check_bool "progress was made" true (outcomes.(0) + outcomes.(1) > 0)

let () =
  Alcotest.run "mt_llxscx"
    [
      ( "llxscx",
        [
          Alcotest.test_case "llx snapshot" `Quick test_llx_snapshot;
          Alcotest.test_case "scx updates" `Quick test_scx_updates_field;
          Alcotest.test_case "stale snapshot fails" `Quick test_scx_fails_on_stale_snapshot;
          Alcotest.test_case "finalize marks" `Quick test_finalize_marks;
          Alcotest.test_case "scx on finalized fails" `Quick test_scx_on_finalized_fails;
          Alcotest.test_case "R subset of V" `Quick test_r_subset_check;
          Alcotest.test_case "concurrent counter" `Quick test_concurrent_counter;
          Alcotest.test_case "two-record swap" `Quick test_concurrent_two_record_swap;
        ] );
    ]
