(* Tests for the STAMP vacation port over both STMs: setup shape,
   transactional map semantics, and conservation invariants under
   concurrency (inventory vs. outstanding customer reservations). *)

open Mt_sim
open Mt_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine ?(cores = 8) () = Machine.create (Config.default ~num_cores:cores ())

(* ------------------------------------------------------------------ *)
(* Transactional map. *)

module Map_n = Mt_stamp.Tx_map.Make (Mt_stm.Norec)

let test_map_sequential_oracle () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let stm = Mt_stm.Norec.create ctx in
      let map = Map_n.create ctx in
      let module O = Stdlib.Map.Make (Int) in
      let oracle = ref O.empty in
      let g = Prng.create ~seed:77 in
      for _ = 1 to 1500 do
        let k = Prng.int g 100 in
        match Prng.int g 4 with
        | 0 ->
            let expected = not (O.mem k !oracle) in
            let got =
              Mt_stm.Norec.atomically ctx stm (fun tx -> Map_n.insert tx map k (k * 7))
            in
            check_bool "insert" expected got;
            if got then oracle := O.add k (k * 7) !oracle
        | 1 ->
            let got = Mt_stm.Norec.atomically ctx stm (fun tx -> Map_n.remove tx map k) in
            check_bool "remove" (O.mem k !oracle) (got <> None);
            oracle := O.remove k !oracle
        | 2 ->
            let got = Mt_stm.Norec.atomically ctx stm (fun tx -> Map_n.find tx map k) in
            check_bool "find" (O.find_opt k !oracle = got) true
        | _ ->
            let got =
              Mt_stm.Norec.atomically ctx stm (fun tx -> Map_n.update tx map k 1)
            in
            check_bool "update" (O.mem k !oracle) got;
            if got then oracle := O.add k 1 !oracle
      done;
      let final = Map_n.to_alist_unsafe (Ctx.machine ctx) map in
      check_bool "final alist" true (final = O.bindings !oracle))

let test_map_fold_sorted () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let stm = Mt_stm.Norec.create ctx in
      let map = Map_n.create ctx in
      Mt_stm.Norec.atomically ctx stm (fun tx ->
          List.iter
            (fun k -> ignore (Map_n.insert tx map k (10 * k)))
            [ 5; 2; 8; 1; 9; 3 ]);
      let keys =
        Mt_stm.Norec.atomically ctx stm (fun tx ->
            Map_n.fold tx map ~init:[] ~f:(fun acc k _ -> k :: acc))
      in
      Alcotest.(check (list int)) "ascending fold" [ 1; 2; 3; 5; 8; 9 ] (List.rev keys))

let test_map_concurrent_disjoint () =
  let threads = 4 in
  let m = machine ~cores:threads () in
  let stm, map =
    Harness.exec1 m (fun ctx -> (Mt_stm.Norec.create ctx, Map_n.create ctx))
  in
  let (_ : int) =
    Harness.exec m ~seed:4 ~threads (fun ctx ->
        let id = Ctx.core ctx in
        for i = 0 to 24 do
          Mt_stm.Norec.atomically ctx stm (fun tx ->
              ignore (Map_n.insert tx map ((100 * id) + i) id))
        done)
  in
  check_int "all inserted" (threads * 25)
    (List.length (Map_n.to_alist_unsafe m map))

(* ------------------------------------------------------------------ *)
(* Vacation. *)

module Battery (S : Mt_stm.Stm_intf.S) = struct
  module V = Mt_stamp.Vacation.Make (S)

  let params = { V.relations = 64; queries = 3; query_pct = 90; user_pct = 80 }

  let test_setup_shape () =
    let m = machine () in
    Harness.exec1 m (fun ctx ->
        let stm = S.create ctx in
        let mgr = V.setup ctx stm params in
        let free, used = V.inventory_unsafe (Ctx.machine ctx) mgr in
        check_int "nothing reserved initially" 0 used;
        check_bool "stock exists" true (free > 0);
        check_bool "tables consistent" true
          (V.tables_consistent_unsafe (Ctx.machine ctx) mgr);
        check_int "no reservations" 0
          (V.customer_reservations_unsafe (Ctx.machine ctx) mgr))

  let test_conservation ~threads ~ops () =
    let m = machine ~cores:threads () in
    let stm, mgr =
      Harness.exec1 m (fun ctx ->
          let stm = S.create ctx in
          (stm, V.setup ctx stm params))
    in
    let (_ : int) =
      Harness.exec m ~seed:21 ~threads (fun ctx ->
          for _ = 1 to ops do
            V.client_op ctx stm mgr params
          done)
    in
    check_bool "tables consistent" true (V.tables_consistent_unsafe m mgr);
    let _, used = V.inventory_unsafe m mgr in
    check_int "used units = outstanding reservations" used
      (V.customer_reservations_unsafe m mgr);
    check_bool "work happened" true (S.commits stm > threads * ops)

  let test_sequential () = test_conservation ~threads:1 ~ops:120 ()
  let test_concurrent () = test_conservation ~threads:6 ~ops:60 ()

  let cases name =
    [
      Alcotest.test_case (name ^ " setup") `Quick test_setup_shape;
      Alcotest.test_case (name ^ " sequential conservation") `Quick test_sequential;
      Alcotest.test_case (name ^ " concurrent conservation") `Quick test_concurrent;
    ]
end

module Vac_norec = Battery (Mt_stm.Norec)
module Vac_tagged = Battery (Mt_stm.Norec_tagged)

(* A second parameter profile: admin-heavy (u=30), wider queries — drives
   the update_tables/delete_customer paths much harder. *)
let test_admin_heavy_profile () =
  let module V = Mt_stamp.Vacation.Make (Mt_stm.Norec_tagged) in
  let params = { V.relations = 96; queries = 6; query_pct = 100; user_pct = 30 } in
  let threads = 4 in
  let m = machine ~cores:threads () in
  let stm, mgr =
    Harness.exec1 m (fun ctx ->
        let stm = Mt_stm.Norec_tagged.create ctx in
        (stm, V.setup ctx stm params))
  in
  let (_ : int) =
    Harness.exec m ~seed:41 ~threads (fun ctx ->
        for _ = 1 to 50 do
          V.client_op ctx stm mgr params
        done)
  in
  check_bool "tables consistent" true (V.tables_consistent_unsafe m mgr);
  let _, used = V.inventory_unsafe m mgr in
  check_int "books balance" used (V.customer_reservations_unsafe m mgr)

let () =
  Alcotest.run "mt_stamp"
    [
      ( "tx_map",
        [
          Alcotest.test_case "sequential oracle" `Quick test_map_sequential_oracle;
          Alcotest.test_case "fold sorted" `Quick test_map_fold_sorted;
          Alcotest.test_case "concurrent disjoint" `Quick test_map_concurrent_disjoint;
        ] );
      ("vacation-norec", Vac_norec.cases "norec");
      ( "vacation-tagged",
        Vac_tagged.cases "tagged"
        @ [ Alcotest.test_case "admin-heavy profile" `Quick test_admin_heavy_profile ] );
    ]
