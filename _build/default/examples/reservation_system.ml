(* The STAMP vacation travel-reservation system end to end: a manager with
   car/flight/room inventory and customers, driven by 8 concurrent client
   cores over tagged NOrec, with the conservation oracle checked at the
   end (every unit in use is held by exactly one customer reservation).

   Run with:  dune exec examples/reservation_system.exe *)

open Mt_sim
open Mt_core
module Stm = Mt_stm.Norec_tagged
module V = Mt_stamp.Vacation.Make (Stm)

let () =
  let threads = 8 in
  let machine =
    Machine.create
      { (Config.default ~num_cores:threads ()) with Config.max_tags = 256 }
  in
  let params = { V.relations = 1024; queries = 4; query_pct = 60; user_pct = 90 } in
  let stm, mgr =
    Harness.exec1 machine (fun ctx ->
        let stm = Stm.create ctx in
        (stm, V.setup ctx stm params))
  in
  let free0, used0 = V.inventory_unsafe machine mgr in
  Printf.printf "inventory after setup: %d units free, %d in use\n" free0 used0;
  Stm.reset_stats stm;
  let tasks = ref 0 in
  let duration =
    Harness.exec machine ~threads (fun ctx ->
        for _ = 1 to 60 do
          V.client_op ctx stm mgr params;
          incr tasks
        done)
  in
  let free, used = V.inventory_unsafe machine mgr in
  let held = V.customer_reservations_unsafe machine mgr in
  Printf.printf "%d client tasks in %d cycles (%d commits, %d aborts)\n" !tasks
    duration (Stm.commits stm) (Stm.aborts stm);
  Printf.printf "inventory: %d free, %d in use; customer reservations: %d\n" free
    used held;
  Printf.printf "books balance: %b; tables consistent: %b\n" (used = held)
    (V.tables_consistent_unsafe machine mgr)
