(* Money transfers under tagged NOrec: transactions over simulated shared
   memory with tag-tracked read sets (paper Section 5.2). Conservation of
   the total balance is checked at the end, and the STM statistics show
   how many value-based validations the tags avoided.

   Run with:  dune exec examples/transactional_bank.exe *)

open Mt_sim
open Mt_core
module Stm = Mt_stm.Norec_tagged

let () =
  let threads = 8 in
  let accounts = 64 in
  let machine = Machine.create (Config.default ~num_cores:threads ()) in
  let stm, bank =
    Harness.exec1 machine (fun ctx ->
        let stm = Stm.create ctx in
        let bank = Ctx.alloc ctx ~words:accounts in
        Stm.atomically ctx stm (fun tx ->
            for i = 0 to accounts - 1 do
              Stm.write tx (bank + i) 1000
            done);
        (stm, bank))
  in
  Stm.reset_stats stm;
  let transfers = ref 0 in
  let duration =
    Harness.exec machine ~threads (fun ctx ->
        let g = Ctx.prng ctx in
        for _ = 1 to 200 do
          let src = Prng.int g accounts and dst = Prng.int g accounts in
          let amount = 1 + Prng.int g 50 in
          let ok =
            Stm.atomically ctx stm (fun tx ->
                let s = Stm.read tx (bank + src) in
                if src <> dst && s >= amount then begin
                  Stm.write tx (bank + src) (s - amount);
                  Stm.write tx (bank + dst)
                    (Stm.read tx (bank + dst) + amount);
                  true
                end
                else false)
          in
          if ok then incr transfers
        done)
  in
  let total = ref 0 in
  for i = 0 to accounts - 1 do
    total := !total + Machine.peek machine (bank + i)
  done;
  Printf.printf "%d transfers by %d cores in %d cycles\n" !transfers threads duration;
  Printf.printf "total balance: %d (expected %d) — conserved: %b\n" !total
    (1000 * accounts)
    (!total = 1000 * accounts);
  Printf.printf "commits %d, aborts %d, value-based validations %d\n"
    (Stm.commits stm) (Stm.aborts stm) (Stm.vbv_passes stm)
