(* A database-style ordered index under a mixed workload: the HoH-tagged
   (a,b)-tree serving point lookups, updates and atomic range scans from
   16 cores — the paper's flagship application (Section 5.1).

   Run with:  dune exec examples/concurrent_index.exe *)

open Mt_sim
open Mt_core

module Index = Mt_abtree.Abtree_hoh.Make (struct
  let a = 4
  let b = 8
end)

let () =
  let threads = 16 in
  let machine = Machine.create (Config.default ~num_cores:threads ()) in

  (* Bulk-load 4096 "rows". *)
  let index =
    Harness.exec1 machine (fun ctx ->
        let index = Index.create ctx in
        let g = Prng.create ~seed:42 in
        let loaded = ref 0 in
        while !loaded < 4096 do
          if Index.insert ctx index (Prng.int g 100_000) then incr loaded
        done;
        index)
  in
  let report = Index.check machine index in
  Printf.printf "bulk-loaded %d keys; tree height %d, %d nodes, balanced=%b\n"
    report.Mt_abtree.Checker.n_keys report.height report.nodes report.ok;

  (* Mixed OLTP-ish phase: 70%% lookups, 24%% updates, 6%% range scans. *)
  Machine.reset_stats machine;
  let scans = ref 0 and scan_rows = ref 0 in
  let duration =
    Harness.exec machine ~threads (fun ctx ->
        let g = Ctx.prng ctx in
        for _ = 1 to 150 do
          let r = Prng.int g 100 in
          let k = Prng.int g 100_000 in
          if r < 70 then ignore (Index.contains ctx index k)
          else if r < 82 then ignore (Index.insert ctx index k)
          else if r < 94 then ignore (Index.delete ctx index k)
          else begin
            match Index.range ctx index ~lo:k ~hi:(k + 500) with
            | Some rows ->
                incr scans;
                scan_rows := !scan_rows + List.length rows
            | None -> () (* range too wide for the tag budget *)
          end
        done)
  in
  let stats = Machine.total_stats machine in
  Printf.printf
    "%d cores ran %d ops in %d cycles (%.2f ops/kcycle)\n"
    threads (threads * 150) duration
    (1000.0 *. float_of_int (threads * 150) /. float_of_int duration);
  Printf.printf "atomic range scans: %d (avg %.1f rows); aborted traversals: %d\n"
    !scans
    (if !scans = 0 then 0.0 else float_of_int !scan_rows /. float_of_int !scans)
    stats.Stats.validate_failures;
  let report = Index.check machine index in
  Printf.printf "index still balanced: %b (height %d, %d keys)\n" report.ok
    report.height report.n_keys
