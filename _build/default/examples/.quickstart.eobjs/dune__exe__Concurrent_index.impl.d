examples/concurrent_index.ml: Config Ctx Harness List Machine Mt_abtree Mt_core Mt_sim Printf Prng Stats
