examples/quickstart.ml: Config Ctx Harness List Machine Mt_core Mt_list Mt_sim Printf Prng Runtime Stats
