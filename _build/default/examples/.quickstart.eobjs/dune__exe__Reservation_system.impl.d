examples/reservation_system.ml: Config Harness Machine Mt_core Mt_sim Mt_stamp Mt_stm Printf
