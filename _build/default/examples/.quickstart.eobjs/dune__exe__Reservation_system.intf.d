examples/reservation_system.mli:
