examples/quickstart.mli:
