examples/transactional_bank.mli:
