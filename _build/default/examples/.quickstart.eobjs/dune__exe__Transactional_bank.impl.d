examples/transactional_bank.ml: Config Ctx Harness Machine Mt_core Mt_sim Mt_stm Printf Prng
