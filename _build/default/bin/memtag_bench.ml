(* CLI front-end: run a single set benchmark with explicit parameters.
   The full figure-reproduction harness lives in bench/main.ml; this binary
   is for ad-hoc exploration (one data point, one implementation). *)

open Cmdliner

module Abtree_params = struct
  let a = 4
  let b = 8
end

module Abtree_hoh = Mt_abtree.Abtree_hoh.Make (Abtree_params)
module Abtree_llx = Mt_abtree.Abtree_llx.Make (Abtree_params)

let impls : (string * (module Mt_list.Set_intf.SET)) list =
  [
    ("harris", (module Mt_list.Harris_list));
    ("vas", (module Mt_list.Vas_list));
    ("hoh", (module Mt_list.Hoh_list));
    ("abtree-llx", (module Abtree_llx));
    ("abtree-hoh", (module Abtree_hoh));
  ]

let run impl_names threads key_range insert_pct delete_pct measure seed all verbose =
  let chosen =
    if all then impls
    else
      List.map
        (fun n ->
          match List.assoc_opt n impls with
          | Some m -> (n, m)
          | None ->
              Printf.eprintf "unknown implementation %S\n" n;
              exit 2)
        impl_names
  in
  let spec =
    Mt_workload.Spec.make ~key_range ~insert_pct ~delete_pct ~threads
      ~measure_cycles:measure ~seed ()
  in
  List.iter
    (fun (_, m) ->
      let r = Mt_workload.Driver.run_set m spec in
      Format.printf "%a@." Mt_workload.Driver.pp_result r;
      if verbose then Format.printf "  %a@." Mt_sim.Stats.pp r.Mt_workload.Driver.stats)
    chosen

let () =
  let impl =
    Arg.(value & opt_all string [ "hoh" ] & info [ "i"; "impl" ] ~doc:"Implementation (harris|vas|hoh); repeatable.")
  in
  let all = Arg.(value & flag & info [ "a"; "all" ] ~doc:"Run every implementation.") in
  let threads = Arg.(value & opt int 8 & info [ "t"; "threads" ] ~doc:"Thread count.") in
  let range = Arg.(value & opt int 1024 & info [ "r"; "range" ] ~doc:"Key range.") in
  let ins = Arg.(value & opt int 35 & info [ "insert" ] ~doc:"Insert percentage.") in
  let del = Arg.(value & opt int 35 & info [ "delete" ] ~doc:"Delete percentage.") in
  let measure =
    Arg.(value & opt int 150_000 & info [ "cycles" ] ~doc:"Measured simulated cycles.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print full counters.") in
  let cmd =
    Cmd.v
      (Cmd.info "memtag_bench" ~doc:"Run one MemTags set benchmark data point")
      Term.(const run $ impl $ threads $ range $ ins $ del $ measure $ seed $ all $ verbose)
  in
  exit (Cmd.eval cmd)
