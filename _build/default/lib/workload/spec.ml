type t = {
  key_range : int;
  init_fill : float;
  insert_pct : int;
  delete_pct : int;
  threads : int;
  warmup_cycles : int;
  measure_cycles : int;
  seed : int;
}

let make ?(init_fill = 0.5) ?(warmup_cycles = 30_000) ?(measure_cycles = 150_000)
    ?(seed = 1) ~key_range ~insert_pct ~delete_pct ~threads () =
  if key_range <= 0 then invalid_arg "Spec.make: key_range must be positive";
  if insert_pct < 0 || delete_pct < 0 || insert_pct + delete_pct > 100 then
    invalid_arg "Spec.make: bad operation mix";
  if init_fill < 0.0 || init_fill > 1.0 then invalid_arg "Spec.make: bad init_fill";
  if threads <= 0 || threads > 64 then invalid_arg "Spec.make: bad thread count";
  { key_range; init_fill; insert_pct; delete_pct; threads; warmup_cycles;
    measure_cycles; seed }

let to_string t =
  Printf.sprintf "%di/%dd/%dc r%d t%d" t.insert_pct t.delete_pct
    (100 - t.insert_pct - t.delete_pct)
    t.key_range t.threads
