open Mt_sim
open Mt_core

type result = {
  impl : string;
  spec : Spec.t;
  ops : int;
  duration : int;
  throughput : float;
  l1_miss_rate : float;
  energy : float;
  energy_per_op : float;
  validates : int;
  validate_failures : int;
  validate_failures_spurious : int;
  cas_failures : int;
  stats : Stats.t;
}

let run_custom ?cfg ~name ~setup ~op (spec : Spec.t) =
  let cfg =
    match cfg with Some c -> c | None -> Config.default ~num_cores:spec.threads ()
  in
  if cfg.Config.num_cores < spec.threads then
    invalid_arg "Driver: machine has fewer cores than spec threads";
  let m = Machine.create cfg in
  let state = Harness.exec1 m ~seed:spec.seed (fun ctx -> setup ctx) in
  let counts = Array.make spec.threads 0 in
  let phase ~seed ~horizon ~record =
    Harness.exec m ~seed ~threads:spec.threads (fun ctx ->
        let ops = ref 0 in
        while Ctx.now ctx < horizon do
          op ctx state;
          incr ops
        done;
        if record then counts.(Ctx.core ctx) <- !ops)
  in
  let (_ : int) =
    phase ~seed:(spec.seed + 17) ~horizon:spec.warmup_cycles ~record:false
  in
  Machine.reset_stats m;
  let duration =
    phase ~seed:(spec.seed + 31) ~horizon:spec.measure_cycles ~record:true
  in
  let stats = Machine.total_stats m in
  let ops = Array.fold_left ( + ) 0 counts in
  let energy = Stats.energy cfg stats ~cycles:(duration * spec.threads) in
  {
    impl = name;
    spec;
    ops;
    duration;
    throughput = (if duration = 0 then 0.0 else 1000.0 *. float_of_int ops /. float_of_int duration);
    l1_miss_rate = Stats.l1_miss_rate stats;
    energy;
    energy_per_op = (if ops = 0 then 0.0 else energy /. float_of_int ops);
    validates = stats.Stats.validates;
    validate_failures = stats.Stats.validate_failures;
    validate_failures_spurious = stats.Stats.validate_failures_spurious;
    cas_failures = stats.Stats.cas_failures;
    stats;
  }

let run_set ?cfg (module S : Mt_list.Set_intf.SET) (spec : Spec.t) =
  let setup ctx =
    let s = S.create ctx in
    let g = Prng.create ~seed:(spec.seed + 1) in
    for k = 0 to spec.key_range - 1 do
      if Prng.float g < spec.init_fill then ignore (S.insert ctx s k)
    done;
    s
  in
  let op ctx s =
    let g = Ctx.prng ctx in
    let k = Prng.int g spec.key_range in
    let r = Prng.int g 100 in
    if r < spec.insert_pct then ignore (S.insert ctx s k)
    else if r < spec.insert_pct + spec.delete_pct then ignore (S.delete ctx s k)
    else ignore (S.contains ctx s k)
  in
  run_custom ?cfg ~name:S.name ~setup ~op spec

let pp_result ppf r =
  Format.fprintf ppf
    "%-14s %-22s ops %7d  thr %8.2f/kcyc  L1miss %5.2f%%  E/op %8.1f  vfail %d (spur %d)"
    r.impl (Spec.to_string r.spec) r.ops r.throughput (100.0 *. r.l1_miss_rate)
    r.energy_per_op r.validate_failures r.validate_failures_spurious
