(** Plain-text table rendering for benchmark output.

    The bench harness prints one table per paper figure; columns are padded
    to a fixed width so the output is readable in a terminal and easy to
    diff across runs. *)

(** [table ~title ~columns rows] prints a padded table to stdout. Every row
    must have the same arity as [columns]. *)
val table : title:string -> columns:string list -> string list list -> unit

(** Format helpers for table cells. *)
val f2 : float -> string
(** two decimals *)

val pct : float -> string
(** fraction -> "12.34%" *)

(** [speedup base x] renders [x /. base] as e.g. "1.42x"; "-" if the base
    is zero. *)
val speedup : float -> float -> string
