lib/workload/driver.mli: Format Mt_core Mt_list Mt_sim Spec
