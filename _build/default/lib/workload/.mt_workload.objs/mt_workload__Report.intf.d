lib/workload/report.mli:
