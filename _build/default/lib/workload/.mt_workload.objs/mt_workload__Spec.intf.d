lib/workload/spec.mli:
