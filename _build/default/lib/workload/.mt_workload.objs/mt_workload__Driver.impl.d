lib/workload/driver.ml: Array Config Ctx Format Harness Machine Mt_core Mt_list Mt_sim Prng Spec Stats
