let f2 x = Printf.sprintf "%.2f" x
let pct x = Printf.sprintf "%.2f%%" (100.0 *. x)

let speedup base x = if base = 0.0 then "-" else Printf.sprintf "%.2fx" (x /. base)

let table ~title ~columns rows =
  List.iter
    (fun row ->
      if List.length row <> List.length columns then
        invalid_arg "Report.table: row arity mismatch")
    rows;
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i)))
          (String.length col) rows)
      columns
  in
  let pad width s = s ^ String.make (max 0 (width - String.length s)) ' ' in
  let render cells = String.concat "  " (List.map2 pad widths cells) in
  let rule = String.concat "--" (List.map (fun w -> String.make w '-') widths) in
  print_newline ();
  print_endline title;
  print_endline rule;
  print_endline (render columns);
  print_endline rule;
  List.iter (fun row -> print_endline (render row)) rows;
  print_endline rule
