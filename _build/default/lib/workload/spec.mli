(** Specification of a set-benchmark run (the paper's standard
    search/insert/remove workload, Section 6).

    On every iteration each thread picks a uniformly random key in
    [\[0, key_range)] and performs insert / delete / contains according to
    the percentage mix. The structure is pre-filled to [init_fill] of the
    range so that roughly half of the updates return [false], keeping the
    size stationary, as in the paper. *)

type t = {
  key_range : int;
  init_fill : float;       (** fraction of the range inserted at setup *)
  insert_pct : int;        (** percentage of insert operations *)
  delete_pct : int;        (** percentage of delete operations; the
                               remainder are contains *)
  threads : int;
  warmup_cycles : int;     (** simulated cycles discarded before measuring *)
  measure_cycles : int;    (** simulated cycles of the measured window *)
  seed : int;
}

(** [make ~key_range ~insert_pct ~delete_pct ~threads ()] with defaults:
    [init_fill = 0.5], [warmup_cycles = 30_000], [measure_cycles =
    150_000], [seed = 1]. Raises [Invalid_argument] on nonsensical
    percentages or sizes. *)
val make :
  ?init_fill:float ->
  ?warmup_cycles:int ->
  ?measure_cycles:int ->
  ?seed:int ->
  key_range:int ->
  insert_pct:int ->
  delete_pct:int ->
  threads:int ->
  unit ->
  t

(** e.g. ["35i/35d/30c r1024 t8"]. *)
val to_string : t -> string
