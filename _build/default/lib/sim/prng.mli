(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator and the workloads goes
    through one of these, seeded explicitly, so that a whole simulation run
    is reproducible from its seed. *)

type t

val create : seed:int -> t

(** [split t] derives an independent generator; used to give each simulated
    thread its own stream from one master seed. *)
val split : t -> t

(** [next t] returns 64 fresh pseudo-random bits as an [int64]. *)
val next : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool
