type state = I | S | E | M

type way = { mutable line : int; mutable st : state; mutable lru : int }

type t = {
  sets_log2 : int;
  ways : int;
  sets : way array array;
  mutable tick : int;
}

let create ~sets_log2 ~ways =
  if sets_log2 < 0 || ways <= 0 then invalid_arg "Cache.create";
  {
    sets_log2;
    ways;
    sets =
      Array.init (1 lsl sets_log2)
        (fun _ -> Array.init ways (fun _ -> { line = -1; st = I; lru = 0 }));
    tick = 0;
  }

let set_of t line = t.sets.(line land ((1 lsl t.sets_log2) - 1))

let find_way t line =
  let set = set_of t line in
  let rec go i =
    if i >= t.ways then None
    else if set.(i).line = line && set.(i).st <> I then Some set.(i)
    else go (i + 1)
  in
  go 0

let find t line = match find_way t line with None -> I | Some w -> w.st

let bump t w =
  t.tick <- t.tick + 1;
  w.lru <- t.tick

let touch t line = match find_way t line with None -> () | Some w -> bump t w

let set_state t line st =
  match find_way t line with
  | None -> ()
  | Some w ->
      if st = I then begin
        w.line <- -1;
        w.st <- I
      end
      else begin
        w.st <- st;
        bump t w
      end

let insert t line st =
  if st = I then invalid_arg "Cache.insert: cannot insert in state I";
  assert (find t line = I);
  let set = set_of t line in
  (* Prefer an empty way; otherwise evict the LRU way. *)
  let victim = ref set.(0) in
  let empty = ref None in
  for i = 0 to t.ways - 1 do
    let w = set.(i) in
    if w.st = I then (if !empty = None then empty := Some w)
    else if w.lru < !victim.lru || !victim.st = I then victim := w
  done;
  match !empty with
  | Some w ->
      w.line <- line;
      w.st <- st;
      bump t w;
      None
  | None ->
      let w = !victim in
      let evicted = (w.line, w.st) in
      w.line <- line;
      w.st <- st;
      bump t w;
      Some evicted

let remove t line = set_state t line I

let population t =
  Array.fold_left
    (fun acc set ->
      Array.fold_left (fun acc w -> if w.st <> I then acc + 1 else acc) acc set)
    0 t.sets

let pp_state ppf st =
  Format.pp_print_string ppf (match st with I -> "I" | S -> "S" | E -> "E" | M -> "M")
