type sharing = Uncached | Shared of int list | Excl of int

type t = (int, sharing) Hashtbl.t

let create () = Hashtbl.create 4096

let sharing t line = match Hashtbl.find_opt t line with None -> Uncached | Some s -> s

let set t line s =
  match s with
  | Uncached | Shared [] -> Hashtbl.remove t line
  | Shared cores -> Hashtbl.replace t line (Shared (List.sort_uniq compare cores))
  | Excl _ -> Hashtbl.replace t line s

let add_sharer t line core =
  match sharing t line with
  | Uncached -> set t line (Shared [ core ])
  | Shared cores -> if not (List.mem core cores) then set t line (Shared (core :: cores))
  | Excl owner ->
      if owner = core then ()
      else invalid_arg "Directory.add_sharer: line is exclusively owned"

let drop t line core =
  match sharing t line with
  | Uncached -> ()
  | Shared cores -> set t line (Shared (List.filter (fun c -> c <> core) cores))
  | Excl owner -> if owner = core then set t line Uncached

let others t line core =
  match sharing t line with
  | Uncached -> []
  | Shared cores -> List.filter (fun c -> c <> core) cores
  | Excl owner -> if owner = core then [] else [ owner ]
