(** Cooperative fiber runtime driven by simulated time.

    Each simulated thread runs as an OCaml 5 effect-handled fiber pinned to
    one simulated core. Whenever a fiber incurs simulated latency it
    performs {!stall}; the scheduler then resumes whichever fiber has the
    smallest local clock (ties broken by fiber id), giving a deterministic
    interleaving at memory-access granularity — the granularity at which
    coherence races occur on real hardware and in Graphite.

    The runtime is single-OS-threaded; at most one [run] may be active at a
    time per process (enforced). *)

type t

val create : unit -> t

(** [spawn t body] registers a fiber. Fibers start at simulated time 0 in
    spawn order. Must be called before {!run}. *)
val spawn : t -> (unit -> unit) -> unit

(** [run t] executes all fibers to completion. Exceptions escaping a fiber
    abort the whole run and are re-raised. *)
val run : t -> unit

(** [stall n] suspends the calling fiber for [n >= 0] simulated cycles.
    Must be called from within a fiber. *)
val stall : int -> unit

(** [now ()] is the calling fiber's local clock. Outside any fiber it is
    the final time of the last completed run. *)
val now : unit -> int

(** [fiber_id ()] is the id (spawn index) of the calling fiber. Raises
    [Invalid_argument] outside a fiber. *)
val fiber_id : unit -> int
