open Effect
open Effect.Deep

type _ Effect.t += Stall : int -> unit Effect.t

type t = {
  mutable bodies : (unit -> unit) list;  (* reversed spawn order *)
  mutable n_fibers : int;
  ready : (unit -> unit) Pqueue.t;
}

(* Scheduler-global state. The runtime is single-threaded and non-reentrant,
   so plain refs suffice; [current_*] identify the running fiber. *)
let clock = ref 0
let current_fiber = ref (-1)
let active = ref false

let create () = { bodies = []; n_fibers = 0; ready = Pqueue.create () }

let spawn t body =
  t.bodies <- body :: t.bodies;
  t.n_fibers <- t.n_fibers + 1

let stall n =
  if n < 0 then invalid_arg "Runtime.stall: negative latency";
  if !current_fiber < 0 then invalid_arg "Runtime.stall: not inside a fiber";
  perform (Stall n)

let now () = !clock

let fiber_id () =
  if !current_fiber < 0 then invalid_arg "Runtime.fiber_id: not inside a fiber";
  !current_fiber

let run t =
  if !active then invalid_arg "Runtime.run: a run is already active";
  active := true;
  clock := 0;
  let clocks = Array.make (max 1 t.n_fibers) 0 in
  let start tid body () =
    match_with body ()
      {
        retc = (fun () -> ());
        exnc = (fun exn -> raise exn);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Stall n ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    clocks.(tid) <- clocks.(tid) + n;
                    Pqueue.add t.ready ~time:clocks.(tid) ~tie:tid (fun () ->
                        continue k ()))
            | _ -> None);
      }
  in
  List.iteri
    (fun i body ->
      let tid = t.n_fibers - 1 - i in
      Pqueue.add t.ready ~time:0 ~tie:tid (start tid body))
    t.bodies;
  let finish () =
    active := false;
    current_fiber := -1
  in
  (try
     while not (Pqueue.is_empty t.ready) do
       let time, tid, resume = Pqueue.pop_min t.ready in
       clock := time;
       current_fiber := tid;
       resume ()
     done
   with exn ->
     finish ();
     raise exn);
  finish ()
