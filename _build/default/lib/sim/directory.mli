(** Global MESI directory.

    Tracks, for every cache line, which cores' private hierarchies hold it
    and whether one of them holds it exclusively ([E]/[M]). The directory is
    the serialization point for coherence transactions. *)

type sharing =
  | Uncached
  | Shared of int list  (** core ids holding the line in S; non-empty, sorted *)
  | Excl of int         (** one core holds the line in E or M *)

type t

val create : unit -> t

val sharing : t -> int -> sharing

(** [set t line sharing] installs the new sharing state. [Shared []] is
    normalised to [Uncached]. *)
val set : t -> int -> sharing -> unit

(** [add_sharer t line core] transitions [Uncached -> Shared [core]] or adds
    [core] to an existing sharer list. Raises [Invalid_argument] if the line
    is currently [Excl] of another core. *)
val add_sharer : t -> int -> int -> unit

(** [drop t line core] removes [core] from the line's sharers/owner (used
    when a private cache silently evicts the line). *)
val drop : t -> int -> int -> unit

(** [others t line core] lists every core other than [core] currently
    holding the line. *)
val others : t -> int -> int -> int list
