(** Simulated machine configuration.

    Mirrors the Graphite setup used in the paper's evaluation: a tiled
    multi-core with per-core private L1 and private inclusive L2 caches kept
    coherent with a MESI directory protocol, 64-byte cache lines.

    All sizes are expressed in 8-byte words; a cache line is
    [1 lsl line_words_log2] words (default 8 words = 64 bytes). *)

type t = {
  num_cores : int;          (** number of simulated cores, 1..64 *)
  line_words_log2 : int;    (** log2 of words per cache line *)
  l1_sets_log2 : int;       (** log2 of L1 set count *)
  l1_ways : int;            (** L1 associativity *)
  l2_sets_log2 : int;       (** log2 of L2 set count *)
  l2_ways : int;            (** L2 associativity *)
  max_tags : int;           (** MemTags [Max_Tags]: tag-set capacity *)
  (* Latencies, in core cycles. *)
  lat_l1 : int;             (** L1 hit *)
  lat_l2 : int;             (** L2 hit (fill into L1) *)
  lat_dir : int;            (** directory lookup / permission round-trip *)
  lat_mem : int;            (** data fetched from memory *)
  lat_remote : int;         (** cache-to-cache transfer from a remote core *)
  lat_inval : int;          (** invalidation round (charged once if any sharer) *)
  lat_inval_per_sharer : int;
      (** additional cycles per invalidated sharer: the directory issues
          unicast invalidations and collects acks, so wide broadcasts
          serialize (Graphite behaves likewise) *)
  lat_store_buffered : int;
      (** latency cap charged to the issuing core for a {e plain} store:
          the store buffer hides the miss/upgrade from the pipeline. The
          coherence side effects (invalidating sharers, directory state)
          still happen in full — only the issuer's stall is capped.
          Atomics (CAS, successful VAS/IAS) are never capped: they must
          own the line before retiring. *)
  lat_tag_op : int;         (** explicit cost of tag add/remove bookkeeping.
                                Default 0: the tag unit updates in parallel
                                with the access that carries it, as in the
                                paper's load-buffer implementation. The
                                ablation bench sweeps this. *)
  lat_validate : int;       (** explicit cost of a Validate check (and of a
                                locally-failing VAS/IAS). Default 0; swept
                                by the ablation bench. *)
  ias_tag_targeted : bool;
      (** When true (default), the invalidation step of IAS only kills the
          line at cores that currently have it {e tagged} — the minimal
          semantics of the paper ("invalidates the corresponding locations
          at other cores (if they are tagged)", Section 1), leaving
          untagged sharers' byte-identical copies intact. When false, IAS
          elevates every tagged line to M, invalidating all sharers (the
          conservative implementation sketch of Section 3); the ablation
          bench compares both. *)
  (* Energy model, arbitrary nJ-ish units per event; see {!Stats.energy}. *)
  energy_l1 : float;
  energy_l2 : float;
  energy_dir : float;
  energy_msg : float;       (** per coherence message (invalidation, transfer) *)
  energy_static_per_cycle : float;  (** per core-cycle leakage *)
}

(** [default ~num_cores ()] is the paper's Graphite-like configuration:
    32 KB 8-way L1 (64 sets x 8 ways x 64 B), 256 KB 16-way inclusive L2,
    [Max_Tags = 64]. *)
val default : ?num_cores:int -> unit -> t

(** Words per cache line. *)
val line_words : t -> int

(** [line_of_addr t addr] is the cache-line id containing word address
    [addr]. *)
val line_of_addr : t -> int -> int

(** [lines_of_range t addr nwords] enumerates the line ids overlapping
    [\[addr, addr + nwords)]. Raises [Invalid_argument] on empty ranges. *)
val lines_of_range : t -> int -> int -> int list
