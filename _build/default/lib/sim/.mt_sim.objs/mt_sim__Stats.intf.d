lib/sim/stats.mli: Config Format
