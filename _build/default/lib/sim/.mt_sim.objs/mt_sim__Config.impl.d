lib/sim/config.ml:
