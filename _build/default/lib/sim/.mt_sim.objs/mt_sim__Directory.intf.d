lib/sim/directory.mli:
