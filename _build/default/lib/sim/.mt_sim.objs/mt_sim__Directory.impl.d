lib/sim/directory.ml: Hashtbl List
