lib/sim/machine.mli: Config Memory Stats
