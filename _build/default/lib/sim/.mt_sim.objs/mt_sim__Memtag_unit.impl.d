lib/sim/memtag_unit.ml: Hashtbl
