lib/sim/cache.ml: Array Format
