lib/sim/runtime.mli:
