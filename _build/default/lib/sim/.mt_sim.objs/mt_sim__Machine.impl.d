lib/sim/machine.ml: Array Cache Config Directory List Memory Memtag_unit Printf Stats
