lib/sim/stats.ml: Array Config Format
