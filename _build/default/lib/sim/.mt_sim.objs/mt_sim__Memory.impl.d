lib/sim/memory.ml: Array Config Printf
