lib/sim/runtime.ml: Array Effect List Pqueue
