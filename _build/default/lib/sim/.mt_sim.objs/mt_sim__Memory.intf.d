lib/sim/memory.mli: Config
