lib/sim/memtag_unit.mli:
