lib/sim/pqueue.mli:
