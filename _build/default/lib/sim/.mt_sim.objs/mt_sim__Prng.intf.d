lib/sim/prng.mli:
