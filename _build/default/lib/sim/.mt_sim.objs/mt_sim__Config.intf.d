lib/sim/config.mli:
