lib/sim/cache.mli: Format
