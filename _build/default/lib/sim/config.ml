type t = {
  num_cores : int;
  line_words_log2 : int;
  l1_sets_log2 : int;
  l1_ways : int;
  l2_sets_log2 : int;
  l2_ways : int;
  max_tags : int;
  lat_l1 : int;
  lat_l2 : int;
  lat_dir : int;
  lat_mem : int;
  lat_remote : int;
  lat_inval : int;
  lat_inval_per_sharer : int;
  lat_store_buffered : int;
  lat_tag_op : int;
  lat_validate : int;
  ias_tag_targeted : bool;
  energy_l1 : float;
  energy_l2 : float;
  energy_dir : float;
  energy_msg : float;
  energy_static_per_cycle : float;
}

let default ?(num_cores = 8) () =
  if num_cores < 1 || num_cores > 64 then
    invalid_arg "Config.default: num_cores must be in 1..64";
  {
    num_cores;
    line_words_log2 = 3;
    (* 64 sets x 8 ways x 64 B = 32 KB *)
    l1_sets_log2 = 6;
    l1_ways = 8;
    (* 256 sets x 16 ways x 64 B = 256 KB *)
    l2_sets_log2 = 8;
    l2_ways = 16;
    max_tags = 64;
    lat_l1 = 1;
    lat_l2 = 8;
    lat_dir = 25;
    lat_mem = 100;
    lat_remote = 80;
    lat_inval = 30;
    lat_inval_per_sharer = 5;
    lat_store_buffered = 12;
    lat_tag_op = 0;
    lat_validate = 0;
    ias_tag_targeted = true;
    energy_l1 = 0.5;
    energy_l2 = 2.0;
    energy_dir = 5.0;
    energy_msg = 8.0;
    energy_static_per_cycle = 0.05;
  }

let line_words t = 1 lsl t.line_words_log2

let line_of_addr t addr = addr lsr t.line_words_log2

let lines_of_range t addr nwords =
  if nwords <= 0 then invalid_arg "Config.lines_of_range: empty range";
  let first = line_of_addr t addr in
  let last = line_of_addr t (addr + nwords - 1) in
  let rec collect l acc = if l < first then acc else collect (l - 1) (l :: acc) in
  collect last []
