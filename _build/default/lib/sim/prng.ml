type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the conversion to a native int is non-negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int bits53 *. 0x1p-53

let bool t = Int64.logand (next t) 1L = 1L
