lib/kcas_ds/kcas.ml: Ctx List Mt_core Mt_sim
