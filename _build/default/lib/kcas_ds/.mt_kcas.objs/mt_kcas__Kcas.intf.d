lib/kcas_ds/kcas.mli: Mt_core
