lib/llxscx/llx_scx.mli: Mt_core Mt_sim
