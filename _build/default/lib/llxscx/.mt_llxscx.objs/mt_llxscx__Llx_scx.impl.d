lib/llxscx/llx_scx.ml: Array Ctx List Mt_core Mt_sim
