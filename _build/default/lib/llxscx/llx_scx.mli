(** The LLX / SCX / VLX primitives of Brown, Ellen and Ruppert ("Pragmatic
    primitives for non-blocking data structures", PODC 2013), implemented
    from scratch on simulated memory.

    This is the synchronization substrate of the baseline (a,b)-tree the
    paper compares against (its reference [8]). Data-records carry an
    [info] pointer (to the SCX-record of the last operation that froze
    them) and a [marked] bit (set when the record is finalized, i.e.
    removed from the data structure). An SCX atomically:

    - verifies that none of the records in [V] changed since the caller's
      LLX on them,
    - finalizes (marks) the records in [R],
    - writes [new_val] into one mutable field.

    It does so by {e freezing} each record in [V] with a CAS on its info
    word, helping or aborting on contention — the "collaborative
    operation-locking protocol" whose coherence cost MemTags eliminates. *)

type addr = Mt_core.Ctx.addr

(** {1 Data-records}

    A data-record has a fixed number of mutable word fields plus an
    arbitrary immutable payload managed by the client. Layout (word
    offsets): 0 [info], 1 [marked], 2 [nfields], 3.. mutable fields, then
    the client's immutable payload. *)

(** Number of header words before the mutable fields. *)
val header_words : int

(** [alloc_record ctx ~mutable_fields ~extra_words] allocates a fresh
    data-record with [mutable_fields] mutable slots and [extra_words]
    immutable payload words; returns its address. The record starts
    unmarked with a quiescent info. *)
val alloc_record : Mt_core.Ctx.t -> mutable_fields:int -> extra_words:int -> addr

(** Address of mutable field [i] of record [r] (for SCX's [fld]). *)
val field_addr : addr -> int -> addr

(** Address of the first immutable payload word. *)
val payload_addr : addr -> mutable_fields:int -> addr

(** Write mutable field [i] directly — only valid during initialisation,
    before the record is published. *)
val init_field : Mt_core.Ctx.t -> addr -> int -> int -> unit

(** {1 LLX / SCX} *)

type snapshot = {
  record : addr;
  info : int;           (** info value observed (for the freezing CAS) *)
  fields : int array;   (** snapshot of the mutable fields *)
}

type llx_result = Snapshot of snapshot | Finalized | Fail

(** [llx ctx ?fields r] — [fields] (default: all) limits the snapshot to
    the first [fields] mutable fields, for clients whose records use a
    size-dependent prefix of their slots. *)
val llx : ?fields:int -> Mt_core.Ctx.t -> addr -> llx_result

(** Number of mutable fields of a record (one simulated read). *)
val nfields : Mt_core.Ctx.t -> addr -> int

(** [vlx ctx snapshot] — true iff the record has not changed since the
    LLX that produced [snapshot]. *)
val vlx : Mt_core.Ctx.t -> snapshot -> bool

(** [scx ctx ~v ~r ~fld ~old_val ~new_val] — [v] are snapshots from this
    operation's LLXs (every record whose state the operation depends on);
    [r] lists the record addresses to finalize (must be a subset of [v]);
    [fld] is the single mutable-field address to write, and [old_val] the
    value for it observed by the LLX of its record. Returns [false] if any
    record in [v] changed since its LLX. Lock-free: helps or aborts
    conflicting operations. *)
val scx :
  Mt_core.Ctx.t ->
  v:snapshot list ->
  r:addr list ->
  fld:addr ->
  old_val:int ->
  new_val:int ->
  bool

(** [is_marked_unsafe machine r] — timing-free read of the finalized bit
    (tests only). *)
val is_marked_unsafe : Mt_sim.Machine.t -> addr -> bool

(** Timing-free read of a record's mutable-field count (test oracles). *)
val nfields_unsafe : Mt_sim.Machine.t -> addr -> int

(** Timing-free read of mutable field [i] (test oracles). *)
val field_unsafe : Mt_sim.Machine.t -> addr -> int -> int
