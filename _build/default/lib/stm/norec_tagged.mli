(** Tagged NOrec (paper Section 5.2).

    Identical commit protocol to {!Norec}, but the read set is tracked by
    MemTags: [TXBegin] tags the global sequence lock; every transactional
    read is a tagged load. Post-read validation is then a single local
    [Validate] — no re-read of the sequence lock, no value-based
    validation — as long as the tags hold. When the tag set breaks
    (capacity eviction or [Max_Tags] overflow), the transaction falls back
    to NOrec's value-based validation for the rest of its attempt; the
    value read set is maintained throughout, so the fallback is always
    possible.

    Lock acquisition at commit is a VAS on the sequence lock: if the
    transaction's tags (read set + lock) are intact, no writer interfered
    since TXBegin, so acquiring the lock needs no further validation. (The
    paper prescribes IAS here; invalidating the whole tagged read set at
    other cores would only abort readers of the same data gratuitously, so
    we use the VAS flavour and note the deviation in DESIGN.md.) *)

include Stm_intf.S
