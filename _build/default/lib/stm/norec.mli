(** NOrec STM (Dalessandro, Spear, Scott — PPoPP 2010), built from scratch
    on simulated memory: a single global sequence lock, an indexed write
    buffer, and value-based conflict detection. Readers re-check the
    sequence lock after every read; when it moved, they re-validate their
    whole read set by value — the coherence-heavy step that memory tagging
    removes in {!Norec_tagged}. Satisfies opacity. *)

include Stm_intf.S
