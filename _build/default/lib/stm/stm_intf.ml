(** Common signature of the two software transactional memories (baseline
    NOrec and tagged NOrec), as consumed by the STAMP vacation port. *)

type addr = Mt_core.Ctx.addr

(** Raised inside a transaction body to force an abort-and-retry; client
    code normally never needs it (conflicts are detected internally). *)
exception Abort

module type S = sig
  type t

  (** Per-attempt transaction handle. *)
  type tx

  val name : string

  (** [create ctx] allocates the STM metadata (the global sequence lock). *)
  val create : Mt_core.Ctx.t -> t

  (** [atomically ctx t body] runs [body] as a transaction, retrying on
      conflict until it commits; returns the body's result. Non-[Abort]
      exceptions escape (after the attempt is discarded). *)
  val atomically : Mt_core.Ctx.t -> t -> (tx -> 'a) -> 'a

  (** Transactional read: checks the write buffer, then reads the location
      and post-validates per NOrec. *)
  val read : tx -> addr -> int

  (** Transactional write: buffered until commit. *)
  val write : tx -> addr -> int -> unit

  (** The simulated-thread handle behind a transaction (e.g. to allocate
      nodes for structures built inside transactions). *)
  val ctx : tx -> Mt_core.Ctx.t

  (** Cumulative statistics (host-level; reset with {!reset_stats}). *)
  val commits : t -> int

  val aborts : t -> int

  (** Number of value-based-validation passes executed. *)
  val vbv_passes : t -> int

  val reset_stats : t -> unit
end
