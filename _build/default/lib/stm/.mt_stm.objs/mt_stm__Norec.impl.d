lib/stm/norec.ml: Ctx Hashtbl List Mt_core Mt_sim Stm_intf
