lib/stm/stm_intf.ml: Mt_core
