lib/stm/norec_tagged.ml: Ctx Hashtbl List Mt_core Mt_sim Stm_intf
