lib/stm/norec.mli: Stm_intf
