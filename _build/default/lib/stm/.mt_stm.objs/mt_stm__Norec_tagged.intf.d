lib/stm/norec_tagged.mli: Stm_intf
