open Mt_core
module Llx_scx = Mt_llxscx.Llx_scx

let null = Mt_sim.Memory.null

(* Test hook: lets white-box tests disable rebalancing in every
   instantiation, to isolate set-semantics bugs from rebalancing bugs. *)
module For_testing_rebalance = struct
  let flags : bool ref list ref = ref []
  let register r = flags := r :: !flags
  let disable () = List.iter (fun r -> r := false) !flags

  (* Called with (step name, gp, new node, u) after each successful
     rebalance SCX. *)
  let on_step : (string -> int -> int -> int -> unit) ref = ref (fun _ _ _ _ -> ())
end

module Make (P : sig
  val a : int
  val b : int
end) =
struct
  let () =
    if P.a < 2 then invalid_arg "Abtree_llx: a must be >= 2";
    if P.b < (2 * P.a) - 1 then invalid_arg "Abtree_llx: b must be >= 2a-1"

  let a = P.a
  let b = P.b

  type t = { sentinel : Ctx.addr }

  let name = Printf.sprintf "llx-abtree(%d,%d)" a b

  (* Node = LLX data-record. Internal nodes: b+1 mutable fields (child
     pointers); leaves: none (leaves stay compact, as in Brown's C++).
     Immutable payload: meta word then b key slots. Traversals read two
     header words per node (field count, then meta), comparable to the
     type + size fields of the original implementation. *)
  let ptr_slots = b + 1

  let meta_of (d : Node_desc.t) =
    Node_desc.pack_meta ~leaf:d.leaf ~weight:d.weight ~count:(Array.length d.keys)

  let write_desc ctx (d : Node_desc.t) =
    let mutable_fields = if d.leaf then 0 else ptr_slots in
    let r = Llx_scx.alloc_record ctx ~mutable_fields ~extra_words:(1 + b) in
    let payload = Llx_scx.payload_addr r ~mutable_fields in
    Ctx.write ctx payload (meta_of d);
    Array.iteri (fun i k -> Ctx.write ctx (payload + 1 + i) k) d.keys;
    Array.iteri (fun i p -> Llx_scx.init_field ctx r i p) d.ptrs;
    r

  (* Two header reads per node: field count (leaf test), then meta. *)
  let node_info ctx r =
    let nf = Llx_scx.nfields ctx r in
    Ctx.read ctx (Llx_scx.payload_addr r ~mutable_fields:nf)

  let payload_of_meta r meta =
    Llx_scx.payload_addr r
      ~mutable_fields:(if Node_desc.meta_leaf meta then 0 else ptr_slots)

  let read_keys ctx r meta count =
    let payload = payload_of_meta r meta in
    let keys = Array.make count 0 in
    for i = 0 to count - 1 do
      keys.(i) <- Ctx.read ctx (payload + 1 + i)
    done;
    keys

  (* Description from an LLX snapshot (child pointers) plus the immutable
     payload (meta + keys). *)
  let desc_of_snapshot ctx r (snap : Llx_scx.snapshot) : Node_desc.t =
    let meta = node_info ctx r in
    let count = Node_desc.meta_count meta in
    let leaf = Node_desc.meta_leaf meta in
    let keys = read_keys ctx r meta count in
    let ptrs = if leaf then [||] else Array.sub snap.fields 0 (count + 1) in
    { weight = Node_desc.meta_weight meta; leaf; keys; ptrs }

  let create ctx =
    let leaf = write_desc ctx { weight = 1; leaf = true; keys = [||]; ptrs = [||] } in
    let sentinel =
      write_desc ctx { weight = 1; leaf = false; keys = [||]; ptrs = [| leaf |] }
    in
    { sentinel }

  let select_child ctx r meta k =
    let payload = payload_of_meta r meta in
    let count = Node_desc.meta_count meta in
    let rec scan i =
      if i >= count then i
      else if k < Ctx.read ctx (payload + 1 + i) then i
      else scan (i + 1)
    in
    let ix = scan 0 in
    (ix, Ctx.read ctx (Llx_scx.field_addr r ix))

  (* Plain sequential search to the leaf for [k], tracking grandparent and
     parent with child indices; no synchronization at all (thesis ch. 8:
     searches run exactly as in a sequential tree). *)
  let search_full ctx t k =
    let rec go gp ixp p ixc curr =
      let meta = node_info ctx curr in
      if Node_desc.meta_leaf meta then (gp, ixp, p, ixc, curr)
      else begin
        let ix, next = select_child ctx curr meta k in
        go p ixc curr ix next
      end
    in
    go null (-1) null (-1) t.sentinel

  let contains ctx t k =
    let _, _, _, _, u = search_full ctx t k in
    let meta = node_info ctx u in
    let payload = payload_of_meta u meta in
    let count = Node_desc.meta_count meta in
    let rec scan i =
      if i >= count then false
      else begin
        let key = Ctx.read ctx (payload + 1 + i) in
        if key = k then true else if key > k then false else scan (i + 1)
      end
    in
    scan 0

  (* LLX a node expecting it to be an internal node with a live snapshot;
     [None] triggers a retry of the whole operation. *)
  (* Snapshot only the live prefix of the pointer slots (none for a
     leaf) — the mutable content the operation actually depends on. *)
  let llx_node ctx r =
    let meta = node_info ctx r in
    let fields =
      if Node_desc.meta_leaf meta then 0 else Node_desc.meta_count meta + 1
    in
    match Llx_scx.llx ~fields ctx r with
    | Llx_scx.Snapshot s -> Some s
    | Llx_scx.Finalized | Llx_scx.Fail -> None

  let ( let* ) o f = match o with None -> false | Some x -> f x

  (* Escape hatch used by tests to isolate bugs: when false, trees grow
     unbalanced but set semantics must still hold. *)
  let rebalancing_enabled = ref true
  let () = For_testing_rebalance.register rebalancing_enabled

  (* ------------------------------------------------------------------ *)

  let rec insert ctx t k =
    match insert_attempt ctx t k with
    | Some result -> result
    | None -> insert ctx t k

  and insert_attempt ctx t k =
    let _gp, _ixp, p, ixc, u = search_full ctx t k in
    match llx_node ctx p with
    | None -> None
    | Some ps ->
        if ixc >= Array.length ps.fields || ps.fields.(ixc) <> u then None
        else begin
          match llx_node ctx u with
          | None -> None
          | Some us ->
              let ud = desc_of_snapshot ctx u us in
              if not ud.leaf then None
              else if Node_desc.leaf_contains ud k then Some false
              else begin
                let grew = Node_desc.leaf_insert ud k in
                let new_node =
                  if Node_desc.size grew <= b then write_desc ctx grew
                  else begin
                    let l, r, sep = Node_desc.split grew in
                    let la = write_desc ctx l in
                    let ra = write_desc ctx r in
                    write_desc ctx
                      { weight = 0; leaf = false; keys = [| sep |]; ptrs = [| la; ra |] }
                  end
                in
                if
                  Llx_scx.scx ctx ~v:[ ps; us ] ~r:[]
                    ~fld:(Llx_scx.field_addr p ixc) ~old_val:u ~new_val:new_node
                then begin
                  !For_testing_rebalance.on_step "insert" p new_node u;
                  if Node_desc.size grew > b then rebalance ctx t k;
                  Some true
                end
                else None
              end
        end

  and delete ctx t k =
    match delete_attempt ctx t k with
    | Some result -> result
    | None -> delete ctx t k

  and delete_attempt ctx t k =
    let _gp, _ixp, p, ixc, u = search_full ctx t k in
    match llx_node ctx p with
    | None -> None
    | Some ps ->
        if ixc >= Array.length ps.fields || ps.fields.(ixc) <> u then None
        else begin
          match llx_node ctx u with
          | None -> None
          | Some us ->
              let ud = desc_of_snapshot ctx u us in
              if not ud.leaf then None
              else if not (Node_desc.leaf_contains ud k) then Some false
              else begin
                let shrunk = Node_desc.leaf_remove ud k in
                let new_node = write_desc ctx shrunk in
                if
                  Llx_scx.scx ctx ~v:[ ps; us ] ~r:[]
                    ~fld:(Llx_scx.field_addr p ixc) ~old_val:u ~new_val:new_node
                then begin
                  !For_testing_rebalance.on_step "delete" p new_node u;
                  if Node_desc.size shrunk < a && p <> t.sentinel then rebalance ctx t k;
                  Some true
                end
                else None
              end
        end

  (* Find the first violation on the search path to k (plain reads). *)
  and find_violation ctx t k =
    let rec go gp ixp p ixc curr =
      let meta = node_info ctx curr in
      let w = Node_desc.meta_weight meta in
      let count = Node_desc.meta_count meta in
      let leaf = Node_desc.meta_leaf meta in
      let violating =
        if p = null then false
        else if w = 0 then true
        else if p = t.sentinel then (not leaf) && count = 0
        else if leaf then count < a
        else count + 1 < a
      in
      if violating then Some (gp, ixp, p, ixc, curr)
      else if leaf then None
      else begin
        let ix, next = select_child ctx curr meta k in
        go p ixc curr ix next
      end
    in
    go null (-1) null (-1) t.sentinel

  (* One rebalancing step via SCX; false = conflict, re-descend. *)
  and traced name gp p u ok =
    if ok then !For_testing_rebalance.on_step name gp p u;
    ok

  and apply_step ctx t gp ixp p ixc u =
    let* ps = llx_node ctx p in
    if ixc >= Array.length ps.fields || ps.fields.(ixc) <> u then false
    else begin
      let* us = llx_node ctx u in
      let pd = desc_of_snapshot ctx p ps in
      let ud = desc_of_snapshot ctx u us in
      let fld_p = Llx_scx.field_addr p ixc in
      if ud.weight = 0 then
        if p = t.sentinel then
          (* RootUntag *)
          let nn = write_desc ctx (Node_desc.set_weight ud 1) in
          traced "RootUntag" gp nn u
            (Llx_scx.scx ctx ~v:[ ps; us ] ~r:[ u ] ~fld:fld_p ~old_val:u ~new_val:nn)
        else begin
          if ud.leaf || pd.leaf then false
          else begin
            let* gs = llx_node ctx gp in
            if ixp >= Array.length gs.fields || gs.fields.(ixp) <> p then false
            else begin
              let comb = Node_desc.absorb ~parent:pd ~ix:ixc ~child:ud in
              let fld_gp = Llx_scx.field_addr gp ixp in
              let new_node =
                if Node_desc.size comb <= b then write_desc ctx comb
                else begin
                  let l, r, sep = Node_desc.split comb in
                  let la = write_desc ctx l in
                  let ra = write_desc ctx r in
                  write_desc ctx
                    { weight = 0; leaf = false; keys = [| sep |]; ptrs = [| la; ra |] }
                end
              in
              traced "AbsorbOrSplit" gp new_node u
                (Llx_scx.scx ctx ~v:[ gs; ps; us ] ~r:[ p; u ] ~fld:fld_gp ~old_val:p
                   ~new_val:new_node)
            end
          end
        end
      else if p = t.sentinel then begin
        (* RootAbsorb *)
        if ud.leaf || Array.length ud.ptrs <> 1 then false
        else begin
          let c = ud.ptrs.(0) in
          let* cs = llx_node ctx c in
          let cd = desc_of_snapshot ctx c cs in
          let nn = write_desc ctx (Node_desc.set_weight cd 1) in
          traced "RootAbsorb" gp nn u
            (Llx_scx.scx ctx ~v:[ ps; us; cs ] ~r:[ u; c ] ~fld:fld_p ~old_val:u
               ~new_val:nn)
        end
      end
      else begin
        (* Degree violation: involve an adjacent sibling. *)
        if pd.leaf then false
        else begin
          let six = if ixc > 0 then ixc - 1 else ixc + 1 in
          if six >= Array.length pd.ptrs then false
          else begin
            let s = pd.ptrs.(six) in
            let* ss = llx_node ctx s in
            let sd = desc_of_snapshot ctx s ss in
            let* gs = llx_node ctx gp in
            if ixp >= Array.length gs.fields || gs.fields.(ixp) <> p then false
            else begin
              let fld_gp = Llx_scx.field_addr gp ixp in
              if sd.weight = 0 then begin
                (* Fix the sibling's flag violation first. *)
                if sd.leaf then false
                else begin
                  let comb = Node_desc.absorb ~parent:pd ~ix:six ~child:sd in
                  let new_node =
                    if Node_desc.size comb <= b then write_desc ctx comb
                    else begin
                      let l, r, sep = Node_desc.split comb in
                      let la = write_desc ctx l in
                      let ra = write_desc ctx r in
                      write_desc ctx
                        { weight = 0; leaf = false; keys = [| sep |]; ptrs = [| la; ra |] }
                    end
                  in
                  traced "SiblingWeight" gp new_node u
                    (Llx_scx.scx ctx ~v:[ gs; ps; ss ] ~r:[ p; s ] ~fld:fld_gp
                       ~old_val:p ~new_val:new_node)
                end
              end
              else begin
                let li, l, r = if six < ixc then (six, sd, ud) else (ixc, ud, sd) in
                if l.Node_desc.leaf <> r.Node_desc.leaf || li >= Array.length pd.keys
                then false
                else begin
                  let sep = pd.keys.(li) in
                  let new_parent =
                    if Node_desc.size l + Node_desc.size r <= b then begin
                      (* AbsorbSibling *)
                      let m = write_desc ctx (Node_desc.merge_pair ~sep l r) in
                      Node_desc.replace_pair_with_one pd li ~addr:m
                    end
                    else begin
                      (* Distribute *)
                      let l', r', sep' = Node_desc.distribute_pair ~sep l r in
                      let la = write_desc ctx l' in
                      let ra = write_desc ctx r' in
                      Node_desc.update_pair pd li ~left:la ~right:ra ~sep:sep'
                    end
                  in
                  let nn = write_desc ctx new_parent in
                  traced "MergeOrDistribute" gp nn u
                    (Llx_scx.scx ctx ~v:[ gs; ps; us; ss ] ~r:[ p; u; s ] ~fld:fld_gp
                       ~old_val:p ~new_val:nn)
                end
              end
            end
          end
        end
      end
    end

  and rebalance ctx t k =
    if not !rebalancing_enabled then ()
    else
    match find_violation ctx t k with
    | None -> ()
    | Some (gp, ixp, p, ixc, u) ->
        let (_ : bool) = apply_step ctx t gp ixp p ixc u in
        rebalance ctx t k

  let check machine t =
    let peek = Mt_sim.Machine.peek machine in
    let reader addr : Checker.node =
      let nf = Llx_scx.nfields_unsafe machine addr in
      let payload = Llx_scx.payload_addr addr ~mutable_fields:nf in
      let meta = peek payload in
      let count = Node_desc.meta_count meta in
      let leaf = Node_desc.meta_leaf meta in
      {
        Checker.weight = Node_desc.meta_weight meta;
        leaf;
        keys = Array.init count (fun i -> peek (payload + 1 + i));
        children =
          (if leaf then [||]
           else Array.init (count + 1) (fun i -> Llx_scx.field_unsafe machine addr i));
      }
    in
    Checker.check ~a ~b ~reader ~sentinel:t.sentinel

  let sentinel_unsafe t = t.sentinel

  let to_list_unsafe machine t =
    let peek = Mt_sim.Machine.peek machine in
    let rec walk node acc =
      let nf = Llx_scx.nfields_unsafe machine node in
      let payload = Llx_scx.payload_addr node ~mutable_fields:nf in
      let meta = peek payload in
      let count = Node_desc.meta_count meta in
      let acc = ref acc in
      if Node_desc.meta_leaf meta then
        for i = 0 to count - 1 do
          acc := peek (payload + 1 + i) :: !acc
        done
      else
        for i = 0 to count do
          acc := walk (peek (Llx_scx.field_addr node i)) !acc
        done;
      !acc
    in
    List.rev (walk t.sentinel [])
end
