(** Structural invariant checker for (a,b)-trees, run on a quiescent
    machine (no fibers active) through timing-free reads.

    After every update has completed its rebalancing, a relaxed (a,b)-tree
    must have contracted to a strict one: no flagged (weight-0) nodes, all
    leaves at the same depth, all arities within [a, b] (root exempted). *)

type node = {
  weight : int;
  leaf : bool;
  keys : int array;
  children : int array;  (** child addresses; [||] for leaves *)
}

(** Timing-free node reader, variant-specific. *)
type reader = int -> node

type report = {
  ok : bool;
  errors : string list;  (** empty iff [ok] *)
  nodes : int;
  height : int;          (** leaf depth below the sentinel *)
  n_keys : int;
}

(** [check ~a ~b ~reader ~sentinel] walks the whole tree. *)
val check : a:int -> b:int -> reader:reader -> sentinel:int -> report
