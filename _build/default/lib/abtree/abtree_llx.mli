(** The baseline relaxed (a,b)-tree built on LLX/SCX, after Brown's thesis
    chapter 8 — the implementation the paper's Figures 6 and 7 compare
    MemTags against.

    Same tree shape and rebalancing steps as {!Abtree_hoh}, but
    synchronized with the Brown–Ellen–Ruppert primitives: every update
    LLXes the involved nodes, allocates an SCX-record, freezes each node
    with a CAS on its info word, marks removed nodes, swings one child
    pointer and commits — the per-update overhead that a single IAS
    replaces in the tagged variant. *)

module Make (_ : sig
  val a : int
  val b : int
end) : sig
  include Mt_list.Set_intf.SET

  (** Structural invariant check on a quiescent machine. *)
  val check : Mt_sim.Machine.t -> t -> Checker.report

  (** Sentinel address (white-box tests only). *)
  val sentinel_unsafe : t -> int
end

(** White-box hook: disable rebalancing in all existing instantiations
    (tree grows unbalanced; set semantics must still hold). Tests only. *)
module For_testing_rebalance : sig
  val disable : unit -> unit

  (** Invoked as [f step_name gp p u] after each committed rebalance SCX. *)
  val on_step : (string -> int -> int -> int -> unit) ref
end
