type node = { weight : int; leaf : bool; keys : int array; children : int array }

type reader = int -> node

type report = { ok : bool; errors : string list; nodes : int; height : int; n_keys : int }

let check ~a ~b ~reader ~sentinel =
  let errors = ref [] in
  let nodes = ref 0 in
  let n_keys = ref 0 in
  let leaf_depths = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let sorted keys =
    let ok = ref true in
    for i = 0 to Array.length keys - 2 do
      if keys.(i) >= keys.(i + 1) then ok := false
    done;
    !ok
  in
  (* [lo, hi) bounds the keys allowed in this subtree. *)
  let rec walk addr ~depth ~lo ~hi ~is_root_child =
    incr nodes;
    let n = reader addr in
    if n.weight <> 1 then err "node %d: weight %d at quiescence" addr n.weight;
    if not (sorted n.keys) then err "node %d: keys not sorted" addr;
    Array.iter
      (fun k ->
        if k < lo || k >= hi then err "node %d: key %d outside [%d,%d)" addr k lo hi)
      n.keys;
    if n.leaf then begin
      n_keys := !n_keys + Array.length n.keys;
      leaf_depths := depth :: !leaf_depths;
      if Array.length n.children <> 0 then err "leaf %d has children" addr;
      if (not is_root_child) && Array.length n.keys < a then
        err "leaf %d: %d keys < a" addr (Array.length n.keys);
      if Array.length n.keys > b then err "leaf %d: %d keys > b" addr (Array.length n.keys)
    end
    else begin
      let c = Array.length n.children in
      if c <> Array.length n.keys + 1 then
        err "internal %d: %d children vs %d keys" addr c (Array.length n.keys);
      if is_root_child && c < 2 then err "internal root child %d: %d children" addr c;
      if (not is_root_child) && c < a then err "internal %d: %d children < a" addr c;
      if c > b then err "internal %d: %d children > b" addr c;
      for i = 0 to c - 1 do
        let lo' = if i = 0 then lo else n.keys.(i - 1) in
        let hi' = if i = c - 1 then hi else n.keys.(i) in
        walk n.children.(i) ~depth:(depth + 1) ~lo:lo' ~hi:hi' ~is_root_child:false
      done
    end
  in
  let sent = reader sentinel in
  if sent.leaf || Array.length sent.children <> 1 then
    err "sentinel %d malformed" sentinel;
  if not sent.leaf then
    walk sent.children.(0) ~depth:1 ~lo:min_int ~hi:max_int ~is_root_child:true;
  let height = match !leaf_depths with [] -> 0 | d :: _ -> d in
  List.iter
    (fun d -> if d <> height then err "leaf depth %d differs from %d" d height)
    !leaf_depths;
  { ok = !errors = []; errors = List.rev !errors; nodes = !nodes; height; n_keys = !n_keys }
