(** Pure (a,b)-tree node descriptions and rebalancing arithmetic.

    Both tree variants (LLX/SCX and HoH-tagged) share this module: they
    read nodes out of simulated memory into descriptions, transform them
    with these pure functions, and materialise the results as fresh nodes.
    Keeping the arithmetic pure makes it testable in isolation (see the
    qcheck properties in [test/test_abtree.ml]).

    Conventions: an internal node with [n] children has [n-1] separator
    keys; child [i] covers keys [k] with [keys.(i-1) <= k < keys.(i)]
    (with virtual sentinels at the ends). A leaf stores its keys sorted
    ascending and has [ptrs = [||]]. [weight] is 1 for a normal node and 0
    for a flagged node (a {e flag violation} in the paper's terminology). *)

type t = {
  weight : int;        (* 1 = normal, 0 = flagged *)
  leaf : bool;
  keys : int array;
  ptrs : int array;    (* child addresses; [||] for leaves *)
}

(** Number of children (internal) or keys (leaf). *)
val size : t -> int

(** [child_index d k] — which child of internal node [d] covers key [k]. *)
val child_index : t -> int -> int

(** [find_ptr d addr] — index of child [addr] in [d.ptrs], if present. *)
val find_ptr : t -> int -> int option

val leaf_contains : t -> int -> bool

(** [leaf_insert d k] — [d] with [k] added (sorted). [k] must be absent. *)
val leaf_insert : t -> int -> t

(** [leaf_remove d k] — [d] without [k]. [k] must be present. *)
val leaf_remove : t -> int -> t

(** [set_weight d w] *)
val set_weight : t -> int -> t

(** [absorb ~parent ~ix ~child] — the combined node obtained by splicing
    internal [child] (at parent index [ix]) into [parent]; carries
    [parent]'s weight. Sizes may exceed [b]; split afterwards if needed. *)
val absorb : parent:t -> ix:int -> child:t -> t

(** [split d] — halve an oversized node into [(left, right, separator)];
    both halves have weight 1. For leaves the separator is the first key
    of [right] (and also remains in [right]); for internal nodes it is
    removed from the key list. *)
val split : t -> t * t * int

(** [merge_pair ~sep l r] — coalesce two same-kind siblings ([sep] is the
    separator between them in the parent; used for internal merges,
    ignored for leaves). Result has weight 1. *)
val merge_pair : sep:int -> t -> t -> t

(** [distribute_pair ~sep l r] — rebalance two siblings evenly; returns
    [(l', r', sep')]. *)
val distribute_pair : sep:int -> t -> t -> t * t * int

(** [replace_child d ix ~addr] — [d] with child [ix] repointed. *)
val replace_child : t -> int -> addr:int -> t

(** [replace_pair_with_one d ix ~addr] — children [ix] and [ix+1] (and the
    separator between them) replaced by the single child [addr]. *)
val replace_pair_with_one : t -> int -> addr:int -> t

(** [update_pair d ix ~left ~right ~sep] — children [ix], [ix+1] repointed
    to [left]/[right] with a new separator. *)
val update_pair : t -> int -> left:int -> right:int -> sep:int -> t

(** All keys of a leaf-oriented subtree walk live in the leaves; this
    checks a single description's well-formedness (sorted keys, arity). *)
val well_formed : t -> bool

val pp : Format.formatter -> t -> unit

(** {1 Meta-word packing} — shared by both memory layouts. *)

val pack_meta : leaf:bool -> weight:int -> count:int -> int
val meta_leaf : int -> bool
val meta_weight : int -> int
val meta_count : int -> int
