type t = { weight : int; leaf : bool; keys : int array; ptrs : int array }

let size d = if d.leaf then Array.length d.keys else Array.length d.ptrs

let child_index d k =
  (* Smallest i with k < keys.(i); if none, the last child. *)
  let n = Array.length d.keys in
  let rec go i = if i >= n then n else if k < d.keys.(i) then i else go (i + 1) in
  go 0

let find_ptr d addr =
  let n = Array.length d.ptrs in
  let rec go i = if i >= n then None else if d.ptrs.(i) = addr then Some i else go (i + 1) in
  go 0

let leaf_contains d k = Array.exists (fun k' -> k' = k) d.keys

let sorted_insert keys k =
  let n = Array.length keys in
  let pos =
    let rec go i = if i >= n || keys.(i) > k then i else go (i + 1) in
    go 0
  in
  Array.init (n + 1) (fun i ->
      if i < pos then keys.(i) else if i = pos then k else keys.(i - 1))

let leaf_insert d k =
  if not d.leaf then invalid_arg "Node_desc.leaf_insert: not a leaf";
  if leaf_contains d k then invalid_arg "Node_desc.leaf_insert: duplicate";
  { d with keys = sorted_insert d.keys k }

let leaf_remove d k =
  if not d.leaf then invalid_arg "Node_desc.leaf_remove: not a leaf";
  if not (leaf_contains d k) then invalid_arg "Node_desc.leaf_remove: absent";
  { d with keys = Array.of_list (List.filter (fun k' -> k' <> k) (Array.to_list d.keys)) }

let set_weight d w = { d with weight = w }

let concat3 a b c = Array.concat [ a; b; c ]

let absorb ~parent ~ix ~child =
  if parent.leaf || child.leaf then invalid_arg "Node_desc.absorb: leaves";
  if ix < 0 || ix >= Array.length parent.ptrs then invalid_arg "Node_desc.absorb: ix";
  (* Parent keys around position ix stay; the child's keys slide in where
     the child pointer was. *)
  let keys =
    concat3 (Array.sub parent.keys 0 ix) child.keys
      (Array.sub parent.keys ix (Array.length parent.keys - ix))
  in
  let ptrs =
    concat3 (Array.sub parent.ptrs 0 ix) child.ptrs
      (Array.sub parent.ptrs (ix + 1) (Array.length parent.ptrs - ix - 1))
  in
  { weight = parent.weight; leaf = false; keys; ptrs }

let split d =
  let n = size d in
  if n < 2 then invalid_arg "Node_desc.split: too small";
  if d.leaf then begin
    let h = (n + 1) / 2 in
    let left = { d with weight = 1; keys = Array.sub d.keys 0 h } in
    let right = { d with weight = 1; keys = Array.sub d.keys h (n - h) } in
    (left, right, right.keys.(0))
  end
  else begin
    let h = (n + 1) / 2 in
    let left =
      {
        weight = 1;
        leaf = false;
        keys = Array.sub d.keys 0 (h - 1);
        ptrs = Array.sub d.ptrs 0 h;
      }
    in
    let right =
      {
        weight = 1;
        leaf = false;
        keys = Array.sub d.keys h (Array.length d.keys - h);
        ptrs = Array.sub d.ptrs h (n - h);
      }
    in
    (left, right, d.keys.(h - 1))
  end

let merge_pair ~sep l r =
  if l.leaf <> r.leaf then invalid_arg "Node_desc.merge_pair: kind mismatch";
  if l.leaf then { weight = 1; leaf = true; keys = Array.append l.keys r.keys; ptrs = [||] }
  else
    {
      weight = 1;
      leaf = false;
      keys = concat3 l.keys [| sep |] r.keys;
      ptrs = Array.append l.ptrs r.ptrs;
    }

let distribute_pair ~sep l r =
  let merged = merge_pair ~sep l r in
  split merged

let replace_child d ix ~addr =
  if d.leaf then invalid_arg "Node_desc.replace_child: leaf";
  let ptrs = Array.copy d.ptrs in
  ptrs.(ix) <- addr;
  { d with ptrs }

let replace_pair_with_one d ix ~addr =
  if d.leaf || ix + 1 >= Array.length d.ptrs then
    invalid_arg "Node_desc.replace_pair_with_one";
  let keys =
    Array.init
      (Array.length d.keys - 1)
      (fun i -> if i < ix then d.keys.(i) else d.keys.(i + 1))
  in
  let ptrs =
    Array.init
      (Array.length d.ptrs - 1)
      (fun i -> if i < ix then d.ptrs.(i) else if i = ix then addr else d.ptrs.(i + 1))
  in
  { d with keys; ptrs }

let update_pair d ix ~left ~right ~sep =
  if d.leaf || ix + 1 >= Array.length d.ptrs then invalid_arg "Node_desc.update_pair";
  let keys = Array.copy d.keys in
  let ptrs = Array.copy d.ptrs in
  keys.(ix) <- sep;
  ptrs.(ix) <- left;
  ptrs.(ix + 1) <- right;
  { d with keys; ptrs }

let well_formed d =
  let sorted a =
    let ok = ref true in
    for i = 0 to Array.length a - 2 do
      if a.(i) >= a.(i + 1) then ok := false
    done;
    !ok
  in
  (d.weight = 0 || d.weight = 1)
  && sorted d.keys
  &&
  if d.leaf then Array.length d.ptrs = 0
  else Array.length d.ptrs = Array.length d.keys + 1

let pp ppf d =
  Format.fprintf ppf "{%s w%d keys=[%s] %d ptrs}"
    (if d.leaf then "leaf" else "int")
    d.weight
    (String.concat ";" (Array.to_list (Array.map string_of_int d.keys)))
    (Array.length d.ptrs)

(* Meta word: bit 0 = leaf, bit 1 = weight, bits 2.. = key count. *)
let pack_meta ~leaf ~weight ~count =
  (count lsl 2) lor (weight lsl 1) lor (if leaf then 1 else 0)

let meta_leaf m = m land 1 = 1
let meta_weight m = (m lsr 1) land 1
let meta_count m = m lsr 2
