lib/abtree/abtree_llx.ml: Array Checker Ctx List Mt_core Mt_llxscx Mt_sim Node_desc Printf
