lib/abtree/node_desc.ml: Array Format List String
