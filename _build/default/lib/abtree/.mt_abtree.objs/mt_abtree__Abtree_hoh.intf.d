lib/abtree/abtree_hoh.mli: Checker Mt_core Mt_list Mt_sim
