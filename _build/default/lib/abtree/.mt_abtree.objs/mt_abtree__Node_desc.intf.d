lib/abtree/node_desc.mli: Format
