lib/abtree/abtree_hoh.ml: Array Checker Ctx List Mt_core Mt_sim Node_desc Printf
