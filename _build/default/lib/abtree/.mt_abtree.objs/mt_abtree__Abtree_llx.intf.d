lib/abtree/abtree_llx.mli: Checker Mt_list Mt_sim
