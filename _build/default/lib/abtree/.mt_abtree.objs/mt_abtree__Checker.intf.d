lib/abtree/checker.mli:
