lib/abtree/checker.ml: Array List Printf
