(** The VAS-based linked list (paper Algorithm 1).

    Structurally identical to the Harris–Michael list (pointer marking is
    retained), but every pointer swing — insert, logical delete, unlink,
    helping — is performed with validate-and-swap after tagging [pred] and
    [curr]. A conflicting concurrent update makes the VAS fail {e locally}
    at the core, with no coherence traffic, instead of a failed CAS's
    exclusive line acquisition. *)

include Set_intf.SET
