lib/list_ds/vas_list.ml: Ctx Mt_core Mt_sim Node
