lib/list_ds/vas_list.mli: Set_intf
