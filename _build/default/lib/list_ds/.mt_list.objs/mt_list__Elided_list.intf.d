lib/list_ds/elided_list.mli: Mt_sim Set_intf
