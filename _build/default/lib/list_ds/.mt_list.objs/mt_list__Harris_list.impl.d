lib/list_ds/harris_list.ml: Ctx Mt_core Mt_sim Node
