lib/list_ds/harris_list.mli: Set_intf
