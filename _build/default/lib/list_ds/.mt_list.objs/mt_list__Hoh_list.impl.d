lib/list_ds/hoh_list.ml: Ctx List Mt_core Mt_sim Node
