lib/list_ds/set_intf.ml: Mt_core Mt_sim
