lib/list_ds/hoh_list.mli: Mt_core Set_intf
