lib/list_ds/elided_list.ml: Ctx Mode Mt_core Mt_sim Node
