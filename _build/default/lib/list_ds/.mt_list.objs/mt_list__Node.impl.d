lib/list_ds/node.ml: Ctx List Machine Memory Mt_core Mt_sim
