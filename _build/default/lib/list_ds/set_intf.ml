(** Common signature for every concurrent ordered-set implementation in this
    repository (lists and trees alike), as consumed by the workload driver
    in [lib/workload].

    Keys are OCaml ints strictly between [min_int] and [max_int] (the
    sentinel keys). All operations must be called from within a simulated
    fiber (they stall). *)

module type SET = sig
  type t

  (** Short human-readable name used in benchmark tables. *)
  val name : string

  (** [create ctx] builds an empty set (sentinels only). *)
  val create : Mt_core.Ctx.t -> t

  (** [insert ctx t k] adds [k]; returns [false] if already present. *)
  val insert : Mt_core.Ctx.t -> t -> int -> bool

  (** [delete ctx t k] removes [k]; returns [false] if absent. *)
  val delete : Mt_core.Ctx.t -> t -> int -> bool

  (** [contains ctx t k] — membership test. *)
  val contains : Mt_core.Ctx.t -> t -> int -> bool

  (** [to_list_unsafe machine t] reads the set contents directly from
      simulated memory, bypassing the timing model. Only meaningful when no
      fibers are running (test oracles, invariant checks). Returns keys in
      ascending order, sentinels excluded. *)
  val to_list_unsafe : Mt_sim.Machine.t -> t -> int list
end
