(** The lock-free Harris–Michael linked list (the paper's baseline).

    Pointer marking: the low bit of a node's [next] field marks the node as
    logically deleted. Traversals physically unlink marked nodes with CAS.
    This is the "highly optimized linked list" the paper's Figures 2, 4 and
    5 compare against. *)

include Set_intf.SET
