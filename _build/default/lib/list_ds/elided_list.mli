(** The HoH-tagged list paired with the paper's fall-back path (Section 3):
    hardware lock elision style.

    Every fast-path operation begins by tagging the shared {!Mt_core.Mode}
    line (checking it reads FAST), so the line is part of every validation
    and VAS/IAS. An operation that fails too many consecutive validations
    acquires a global lock, flips the mode to SLOW — which invalidates the
    mode line at every core and thereby aborts all in-flight fast-path
    operations — runs a plain sequential version of the operation, flips
    back to FAST and releases. Because tags are advisory (they can fail
    spuriously forever, e.g. when [Max_Tags] is too small for the window),
    this fallback is what makes the structure {e live} on any
    configuration. *)

include Set_intf.SET

(** Number of slow-path (fallback) executions so far (diagnostics;
    quiescent machine). *)
val slow_path_count : Mt_sim.Machine.t -> t -> int
