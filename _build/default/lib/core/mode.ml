type t = { addr : Ctx.addr }

let fast = 0
let slow = 1

let create machine =
  let addr = Mt_sim.Machine.alloc machine ~words:1 in
  Mt_sim.Machine.poke machine addr fast;
  { addr }

let addr t = t.addr

let is_fast ctx t = Ctx.read ctx t.addr = fast

let tag ctx t = Ctx.add_tag ctx t.addr ~words:1

let set_slow ctx t = Ctx.write ctx t.addr slow

let set_fast ctx t = Ctx.write ctx t.addr fast
