lib/core/harness.mli: Ctx Mt_sim
