lib/core/harness.ml: Ctx Machine Mt_sim Prng Runtime
