lib/core/ctx.ml: Machine Memory Mt_sim Prng Runtime
