lib/core/mode.ml: Ctx Mt_sim
