lib/core/ctx.mli: Mt_sim
