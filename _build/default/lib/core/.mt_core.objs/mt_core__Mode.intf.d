lib/core/mode.mli: Ctx Mt_sim
