(** The HLE-style fallback Mode line (paper Section 3, "Fall-Back Path").

    A dedicated cache line holds the value FAST or SLOW. Fast-path
    operations tag this line as part of their tag set, so flipping the mode
    to SLOW invalidates the line everywhere and makes every in-flight
    fast-path validation fail. Operations that fail validation too many
    consecutive times flip to SLOW, run the software fallback, and the mode
    is reset to FAST after [slow_period] successful slow-path operations. *)

type t

val fast : int
val slow : int

(** Allocate the mode line in state FAST. *)
val create : Mt_sim.Machine.t -> t

(** Word address of the mode line (for tagging). *)
val addr : t -> Ctx.addr

(** Read the current mode. *)
val is_fast : Ctx.t -> t -> bool

(** Tag the mode line (include it in the fast path's tag set). *)
val tag : Ctx.t -> t -> unit

(** Flip to SLOW (idempotent; a plain store, invalidating all taggers). *)
val set_slow : Ctx.t -> t -> unit

(** Flip back to FAST. *)
val set_fast : Ctx.t -> t -> unit
