(** From-scratch port of the STAMP {e vacation} benchmark (Minh et al.,
    IISWC 2008) — the travel-reservation workload the paper runs on NOrec
    in Figure 8, with the same parameters: [-n] queries per task, [-q]
    fraction of relations queried, [-u] percentage of user tasks, [-r]
    relations per table, [-t] transactions.

    The manager keeps four transactional tables (cars, flights, rooms,
    customers); each customer holds a linked list of its reservations. The
    three task kinds are: make-reservation (query [n] random items and
    reserve the dearest per kind), delete-customer (compute the bill and
    release all reservations), and update-tables ([n] random
    additions/removals of inventory). *)

module Make (S : Mt_stm.Stm_intf.S) : sig
  type manager

  type params = {
    relations : int;        (** -r: rows per table *)
    queries : int;          (** -n: queries per task *)
    query_pct : int;        (** -q: percentage of relations queried *)
    user_pct : int;         (** -u: percentage of make-reservation tasks *)
  }

  (** Populate the four tables (ids inserted in shuffled order, sizes and
      prices drawn as in STAMP). Single-fiber setup. *)
  val setup : Mt_core.Ctx.t -> S.t -> params -> manager

  (** Run one client task (one or two transactions, as in STAMP). *)
  val client_op : Mt_core.Ctx.t -> S.t -> manager -> params -> unit

  (** Sum over tables of (free, used) — used by the conservation test. *)
  val inventory_unsafe : Mt_sim.Machine.t -> manager -> int * int

  (** Per-entry sanity: [0 <= used], [0 <= free], [used + free = total]. *)
  val tables_consistent_unsafe : Mt_sim.Machine.t -> manager -> bool

  (** Total reservations held across all customers (test oracle). *)
  val customer_reservations_unsafe : Mt_sim.Machine.t -> manager -> int
end
