lib/stamp/tx_map.ml: Ctx Mt_core Mt_sim Mt_stm
