lib/stamp/vacation.mli: Mt_core Mt_sim Mt_stm
