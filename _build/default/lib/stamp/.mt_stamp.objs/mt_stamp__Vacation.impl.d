lib/stamp/vacation.ml: Array Ctx List Mt_core Mt_sim Mt_stm Tx_map
