lib/stamp/tx_map.mli: Mt_core Mt_sim Mt_stm
