open Mt_core

let null = Mt_sim.Memory.null

module Make (S : Mt_stm.Stm_intf.S) = struct
  module Map = Tx_map.Make (S)

  (* Reservation entry: [0] total, [1] used, [2] free, [3] price. *)
  let total_off = 0
  let used_off = 1
  let free_off = 2
  let price_off = 3
  let entry_words = 4

  (* Customer reservation list node: [0] kind, [1] id, [2] price, [3] next.
     Each customer's map value is the address of a one-word head cell. *)
  let rk_off = 0
  let rid_off = 1
  let rprice_off = 2
  let rnext_off = 3

  type manager = {
    tables : Map.t array;  (* cars, flights, rooms *)
    customers : Map.t;
  }

  type params = {
    relations : int;
    queries : int;
    query_pct : int;
    user_pct : int;
  }

  let n_kinds = 3

  (* ---------------------------------------------------------------- *)
  (* Manager operations (all within a transaction). *)

  let add_item tx mgr kind id ~num ~price =
    let table = mgr.tables.(kind) in
    match Map.find tx table id with
    | Some entry ->
        S.write tx (entry + total_off) (S.read tx (entry + total_off) + num);
        S.write tx (entry + free_off) (S.read tx (entry + free_off) + num);
        S.write tx (entry + price_off) price
    | None ->
        let entry = Ctx.alloc (S.ctx tx) ~words:entry_words in
        S.write tx (entry + total_off) num;
        S.write tx (entry + used_off) 0;
        S.write tx (entry + free_off) num;
        S.write tx (entry + price_off) price;
        let (_ : bool) = Map.insert tx table id entry in
        ()

  (* STAMP's deleteReservation: retire [num] units if none would strand a
     holder; drop the row entirely when it empties. *)
  let remove_item tx mgr kind id ~num =
    let table = mgr.tables.(kind) in
    match Map.find tx table id with
    | None -> false
    | Some entry ->
        let free = S.read tx (entry + free_off) in
        if free < num then false
        else begin
          let total = S.read tx (entry + total_off) in
          if total - num = 0 && S.read tx (entry + used_off) = 0 then
            ignore (Map.remove tx table id)
          else begin
            S.write tx (entry + total_off) (total - num);
            S.write tx (entry + free_off) (free - num)
          end;
          true
        end

  (* Price of item [id], if it exists and has stock. *)
  let query_available tx mgr kind id =
    match Map.find tx mgr.tables.(kind) id with
    | None -> None
    | Some entry ->
        if S.read tx (entry + free_off) > 0 then
          Some (S.read tx (entry + price_off))
        else None

  let add_customer tx ctx mgr id =
    match Map.find tx mgr.customers id with
    | Some _ -> false
    | None ->
        let head = Ctx.alloc ctx ~words:1 in
        S.write tx head null;
        Map.insert tx mgr.customers id head

  let reserve tx ctx mgr kind ~customer ~id =
    match Map.find tx mgr.customers customer with
    | None -> false
    | Some head -> begin
        match Map.find tx mgr.tables.(kind) id with
        | None -> false
        | Some entry ->
            let free = S.read tx (entry + free_off) in
            if free <= 0 then false
            else begin
              S.write tx (entry + free_off) (free - 1);
              S.write tx (entry + used_off) (S.read tx (entry + used_off) + 1);
              let node = Ctx.alloc ctx ~words:4 in
              S.write tx (node + rk_off) kind;
              S.write tx (node + rid_off) id;
              S.write tx (node + rprice_off) (S.read tx (entry + price_off));
              S.write tx (node + rnext_off) (S.read tx head);
              S.write tx head node;
              true
            end
      end

  (* Bill and remove a customer, releasing every reservation they hold. *)
  let delete_customer tx mgr id =
    match Map.find tx mgr.customers id with
    | None -> false
    | Some head ->
        let rec release node bill =
          if node = null then bill
          else begin
            let kind = S.read tx (node + rk_off) in
            let rid = S.read tx (node + rid_off) in
            (match Map.find tx mgr.tables.(kind) rid with
            | None -> () (* inventory row retired meanwhile *)
            | Some entry ->
                S.write tx (entry + free_off) (S.read tx (entry + free_off) + 1);
                S.write tx (entry + used_off) (S.read tx (entry + used_off) - 1));
            release (S.read tx (node + rnext_off)) (bill + S.read tx (node + rprice_off))
          end
        in
        let (_ : int) = release (S.read tx head) 0 in
        ignore (Map.remove tx mgr.customers id);
        true

  (* ---------------------------------------------------------------- *)

  let setup ctx stm (p : params) =
    if p.relations <= 0 || p.queries <= 0 then invalid_arg "Vacation.setup";
    let mgr =
      {
        tables = Array.init n_kinds (fun _ -> Map.create ctx);
        customers = Map.create ctx;
      }
    in
    let g = Mt_sim.Prng.create ~seed:0xACA7 in
    (* Insert ids in shuffled order so the unbalanced BST stays shallow. *)
    let ids = Array.init p.relations (fun i -> i) in
    for i = p.relations - 1 downto 1 do
      let j = Mt_sim.Prng.int g (i + 1) in
      let tmp = ids.(i) in
      ids.(i) <- ids.(j);
      ids.(j) <- tmp
    done;
    for kind = 0 to n_kinds - 1 do
      Array.iter
        (fun id ->
          let num = (Mt_sim.Prng.int g 5 + 1) * 100 in
          let price = (Mt_sim.Prng.int g 5 * 10) + 50 in
          S.atomically ctx stm (fun tx -> add_item tx mgr kind id ~num ~price))
        ids
    done;
    Array.iter
      (fun id -> S.atomically ctx stm (fun tx -> ignore (add_customer tx ctx mgr id)))
      ids;
    mgr

  let make_reservation ctx stm mgr (p : params) g range =
    let customer = Mt_sim.Prng.int g range in
    S.atomically ctx stm (fun tx ->
        let max_prices = Array.make n_kinds (-1) in
        let max_ids = Array.make n_kinds (-1) in
        for _ = 1 to p.queries do
          let kind = Mt_sim.Prng.int g n_kinds in
          let id = Mt_sim.Prng.int g range in
          match query_available tx mgr kind id with
          | Some price when price > max_prices.(kind) ->
              max_prices.(kind) <- price;
              max_ids.(kind) <- id
          | Some _ | None -> ()
        done;
        let found = Array.exists (fun id -> id >= 0) max_ids in
        if found then begin
          ignore (add_customer tx ctx mgr customer);
          Array.iteri
            (fun kind id ->
              if id >= 0 then ignore (reserve tx ctx mgr kind ~customer ~id))
            max_ids
        end)

  let update_tables ctx stm mgr (p : params) g range =
    S.atomically ctx stm (fun tx ->
        for _ = 1 to p.queries do
          let kind = Mt_sim.Prng.int g n_kinds in
          let id = Mt_sim.Prng.int g range in
          if Mt_sim.Prng.bool g then begin
            let price = (Mt_sim.Prng.int g 5 * 10) + 50 in
            add_item tx mgr kind id ~num:100 ~price
          end
          else ignore (remove_item tx mgr kind id ~num:100)
        done)

  let client_op ctx stm mgr (p : params) =
    let g = Ctx.prng ctx in
    let range = max 1 (p.relations * p.query_pct / 100) in
    let r = Mt_sim.Prng.int g 100 in
    if r < p.user_pct then make_reservation ctx stm mgr p g range
    else if Mt_sim.Prng.bool g then
      S.atomically ctx stm (fun tx ->
          ignore (delete_customer tx mgr (Mt_sim.Prng.int g range)))
    else update_tables ctx stm mgr p g range

  (* ---------------------------------------------------------------- *)
  (* Quiescent oracles. *)

  let inventory_unsafe machine mgr =
    let peek = Mt_sim.Machine.peek machine in
    Array.fold_left
      (fun (free, used) table ->
        List.fold_left
          (fun (free, used) (_, entry) ->
            (free + peek (entry + free_off), used + peek (entry + used_off)))
          (free, used)
          (Map.to_alist_unsafe machine table))
      (0, 0) mgr.tables

  let tables_consistent_unsafe machine mgr =
    let peek = Mt_sim.Machine.peek machine in
    Array.for_all
      (fun table ->
        List.for_all
          (fun (_, entry) ->
            let total = peek (entry + total_off) in
            let used = peek (entry + used_off) in
            let free = peek (entry + free_off) in
            used >= 0 && free >= 0 && used + free = total)
          (Map.to_alist_unsafe machine table))
      mgr.tables

  let customer_reservations_unsafe machine mgr =
    let peek = Mt_sim.Machine.peek machine in
    List.fold_left
      (fun acc (_, head) ->
        let rec count node acc =
          if node = null then acc else count (peek (node + rnext_off)) (acc + 1)
        in
        count (peek head) acc)
      0
      (Map.to_alist_unsafe machine mgr.customers)
end
