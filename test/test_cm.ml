(* Tests for the contention-management layer (lib/cm) and its Ctx/Harness
   threading: capped-backoff overflow arithmetic (the old Server clamp's
   replacement), per-policy wait semantics (backoff jitter only from the
   supplied stream, politeness as a pure function of core and time,
   adaptive escalation and decay), the Immediate-is-a-no-op contract
   (qcheck + a full-run equality against a policy that never fires), and
   the house invariants (bit-identical reruns per policy, tracing
   non-perturbing, policy waits visible in Stats). *)

open Mt_sim
open Mt_core
module Cm = Mt_cm.Cm
module Obs = Mt_obs.Obs
module Spec = Mt_workload.Spec
module Driver = Mt_workload.Driver

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine ?(cores = 8) () =
  Machine.create (Config.default ~num_cores:cores ())

(* ------------------------------------------------------------------ *)
(* capped_backoff: exact min cap (base * 2^attempt) without overflow. *)

let test_capped_backoff () =
  let cb = Cm.capped_backoff in
  check_int "attempt 0" 32 (cb ~base:32 ~cap:4096 ~attempt:0);
  check_int "attempt 3" 256 (cb ~base:32 ~cap:4096 ~attempt:3);
  check_int "cap hit" 4096 (cb ~base:32 ~cap:4096 ~attempt:7);
  check_int "cap exact" 4096 (cb ~base:32 ~cap:4096 ~attempt:100);
  (* Float oracle for a sweep that crosses the overflow boundary: the
     old Server clamp (saturate the attempt at 20) got these wrong for
     large bases; the shift-free comparison must stay exact. *)
  for a = 0 to 200 do
    let expected =
      if 3.0 *. (2.0 ** float_of_int a) >= 1_000_000.0 then 1_000_000
      else 3 lsl a
    in
    check_int
      (Printf.sprintf "base 3 attempt %d" a)
      expected
      (cb ~base:3 ~cap:1_000_000 ~attempt:a)
  done;
  (* Overflow edges: a base past the cap saturates instantly; a shift
     that would wrap the native int saturates instead of going
     negative. *)
  check_int "huge base" 1000 (cb ~base:(max_int / 2) ~cap:1000 ~attempt:0);
  check_int "huge base, huge attempt" 1000
    (cb ~base:(max_int / 2) ~cap:1000 ~attempt:1000);
  check_int "attempt 61 exact" (1 lsl 61)
    (cb ~base:1 ~cap:max_int ~attempt:61);
  check_int "attempt 62 saturates" max_int
    (cb ~base:1 ~cap:max_int ~attempt:62);
  check_bool "never negative" true
    (List.for_all
       (fun (b, c, a) -> cb ~base:b ~cap:c ~attempt:a >= 0)
       [ (max_int, max_int, 63); (1, max_int, 1000); (max_int / 3, 7, 2) ])

let prop_capped_backoff =
  QCheck.Test.make ~name:"capped_backoff in (0, cap], monotone" ~count:500
    QCheck.(
      triple (int_range 1 (1 lsl 40)) (int_range 0 (1 lsl 50))
        (int_range 0 10_000))
    (fun (base, extra, attempt) ->
      let cap = base + extra in
      let w = Cm.capped_backoff ~base ~cap ~attempt in
      let w' = Cm.capped_backoff ~base ~cap ~attempt:(attempt + 1) in
      w > 0 && w <= cap && w' >= w)

(* ------------------------------------------------------------------ *)
(* Immediate: no waits, ever. *)

let prop_immediate_noop =
  QCheck.Test.make ~name:"immediate waits 0 for any site/attempt/now"
    ~count:500
    QCheck.(triple (int_bound (1 lsl 30)) (int_bound 10_000) (int_bound (1 lsl 40)))
    (fun (site, attempt, now) ->
      let t = Cm.make Cm.immediate ~core:(site land 7) in
      Cm.wait t ~site ~attempt ~now = 0)

(* ------------------------------------------------------------------ *)
(* Backoff: jitter comes only from the supplied stream; no stream means
   the deterministic upper bound. *)

let test_backoff_jitter () =
  let spec = Cm.backoff ~base:32 ~cap:4096 () in
  let waits seed =
    let t = Cm.make ~prng:(Prng.create ~seed) spec ~core:0 in
    List.init 11 (fun a -> Cm.wait t ~site:1 ~attempt:a ~now:0)
  in
  check_bool "same seed, same waits" true (waits 7 = waits 7);
  check_bool "different seed, different waits" true (waits 7 <> waits 8);
  List.iteri
    (fun a w ->
      let b = Cm.capped_backoff ~base:32 ~cap:4096 ~attempt:a in
      check_bool (Printf.sprintf "attempt %d in [b/2, b]" a) true
        (w >= b / 2 && w <= b))
    (waits 7);
  (* No stream: the exact upper bound, every time. *)
  let t = Cm.make spec ~core:0 in
  List.iteri
    (fun a _ ->
      check_int
        (Printf.sprintf "no-prng attempt %d" a)
        (Cm.capped_backoff ~base:32 ~cap:4096 ~attempt:a)
        (Cm.wait t ~site:1 ~attempt:a ~now:0))
    (List.init 11 Fun.id)

(* ------------------------------------------------------------------ *)
(* Politeness: pure function of (core, now) — wait lands exactly at the
   start of the core's next slot, zero inside its own slot. *)

let test_politeness_slots () =
  let spec = Cm.politeness ~slot:10 ~slots:4 () in
  let w ~core ~now =
    Cm.wait (Cm.make spec ~core) ~site:0 ~attempt:0 ~now
  in
  (* core 0 owns [0,10) of every 40-cycle round. *)
  check_int "in own slot" 0 (w ~core:0 ~now:5);
  check_int "round start" 0 (w ~core:0 ~now:0);
  check_int "wait to next round" 25 (w ~core:0 ~now:15);
  check_int "just before round" 1 (w ~core:0 ~now:39);
  (* core 1 owns [10,20). *)
  check_int "core 1 waits to its slot" 10 (w ~core:1 ~now:0);
  check_int "core 1 in slot" 0 (w ~core:1 ~now:13);
  check_int "core 1 next round" 25 (w ~core:1 ~now:25);
  (* Core ids fold mod slots; the wait always lands inside the slot. *)
  for core = 0 to 7 do
    for now = 0 to 80 do
      let wait = w ~core ~now in
      let slot_start = core mod 4 * 10 in
      let pos = (now + wait) mod 40 in
      check_bool "lands in own slot" true
        (wait >= 0 && wait < 40 && pos >= slot_start && pos < slot_start + 10)
    done
  done

(* ------------------------------------------------------------------ *)
(* Adaptive: immediate below threshold, backoff while warm, politeness
   when hot; time decay re-earns immediate mode. *)

let test_adaptive_escalation () =
  let spec =
    Cm.adaptive ~threshold:3 ~decay_cycles:2048 ~base:32 ~cap:4096 ~slot:192
      ~slots:8 ()
  in
  let t = Cm.make spec ~core:0 in
  let site = 123 in
  (* Failures 1..3: still immediate. *)
  for i = 0 to 2 do
    check_int (Printf.sprintf "cold failure %d" i) 0
      (Cm.wait t ~site ~attempt:i ~now:1000)
  done;
  (* Failures 4..12: capped backoff (no jitter stream: exact bound). *)
  for i = 3 to 11 do
    check_int
      (Printf.sprintf "warm failure %d" i)
      (Cm.capped_backoff ~base:32 ~cap:4096 ~attempt:i)
      (Cm.wait t ~site ~attempt:i ~now:1000)
  done;
  (* Failure 13: politeness. period 1536, core 0 owns [0,192);
     pos 1000 -> wait 536 to the next round. *)
  check_int "hot failure" 536 (Cm.wait t ~site ~attempt:12 ~now:1000);
  (* Four decay windows idle halve the counter 13 -> 0: cold again. *)
  check_int "decayed back to immediate" 0
    (Cm.wait t ~site ~attempt:0 ~now:(1000 + (4 * 2048)));
  (* A different site in the (direct-mapped) table starts cold. *)
  let t2 = Cm.make spec ~core:0 in
  for i = 0 to 5 do
    ignore (Cm.wait t2 ~site:7 ~attempt:i ~now:0)
  done;
  check_int "other site still cold" 0 (Cm.wait t2 ~site:8 ~attempt:0 ~now:0)

(* ------------------------------------------------------------------ *)
(* Ctx threading: with_restarts consults the policy once per restart and
   the waits land in Stats; cm_wait_default runs the site default only
   under Immediate. *)

let test_with_restarts_stats () =
  let run cm =
    let m = machine ~cores:2 () in
    let (_ : int) =
      Harness.exec m ~cm ~threads:1 (fun ctx ->
          let tries = ref 0 in
          let r =
            Ctx.with_restarts ctx (fun () ->
                incr tries;
                if !tries <= 3 then Ctx.restart ctx else 42)
          in
          check_int "result" 42 r)
    in
    Machine.total_stats m
  in
  let st = run (Cm.backoff ~base:32 ~cap:4096 ()) in
  check_int "three policy waits" 3 st.Stats.cm_waits;
  check_bool "wait cycles charged" true (st.Stats.cm_wait_cycles >= 3 * 16);
  let st = run Cm.immediate in
  check_int "immediate: no waits" 0 st.Stats.cm_waits;
  check_int "immediate: no cycles" 0 st.Stats.cm_wait_cycles

let test_cm_wait_default () =
  (* Under Immediate the default closure runs (and its cost is charged
     as plain work, not as a policy wait). *)
  let m = machine ~cores:2 () in
  let (_ : int) =
    Harness.exec m ~cm:Cm.immediate ~threads:1 (fun ctx ->
        let t0 = Ctx.now ctx in
        Ctx.cm_wait_default ctx ~attempt:0 ~default:(fun () -> 100);
        check_bool "default charged as work" true (Ctx.now ctx - t0 >= 100))
  in
  check_int "not counted as a policy wait" 0
    (Machine.total_stats m).Stats.cm_waits;
  (* Under any other policy the default must not even be evaluated. *)
  let m = machine ~cores:2 () in
  let (_ : int) =
    Harness.exec m ~cm:(Cm.politeness ()) ~threads:1 (fun ctx ->
        Ctx.cm_wait_default ctx ~attempt:0 ~default:(fun () ->
            Alcotest.fail "site default ran under a non-immediate policy"))
  in
  ()

(* ------------------------------------------------------------------ *)
(* House invariants on a small contended workload, per policy. *)

let spec_small =
  Spec.make ~key_range:64 ~insert_pct:40 ~delete_pct:40 ~threads:4
    ~warmup_cycles:2_000 ~measure_cycles:8_000 ()

let fingerprint (r : Driver.result) =
  (r.ops, r.duration, r.throughput, r.cas_failures, r.validate_failures, r.stats)

let all_policies =
  [ Cm.immediate; Cm.backoff (); Cm.politeness (); Cm.adaptive () ]

let test_policy_rerun_identity () =
  List.iter
    (fun cm ->
      let run () =
        fingerprint (Driver.run_set ~cm (module Mt_list.Hoh_list) spec_small)
      in
      check_bool (Cm.spec_name cm ^ " bit-identical reruns") true
        (run () = run ()))
    all_policies

let test_policy_tracing_identity () =
  List.iter
    (fun cm ->
      let bare = Driver.run_set ~cm (module Mt_list.Hoh_list) spec_small in
      let obs = Obs.create ~num_cores:4 () in
      let traced =
        Driver.run_set ~cm ~obs (module Mt_list.Hoh_list) spec_small
      in
      check_bool (Cm.spec_name cm ^ " tracing non-perturbing") true
        (fingerprint bare = fingerprint traced))
    all_policies

(* A policy that can never fire must reproduce the Immediate run
   exactly: the per-core operation streams are independent of the
   policy's private jitter streams, so any difference would mean the
   harness let the policy perturb the workload itself. *)
let test_never_firing_policy_is_immediate () =
  let asleep = Cm.adaptive ~threshold:1_000_000_000 () in
  let base =
    fingerprint (Driver.run_set ~cm:Cm.immediate (module Mt_list.Hoh_list) spec_small)
  in
  let quiet =
    fingerprint (Driver.run_set ~cm:asleep (module Mt_list.Hoh_list) spec_small)
  in
  check_bool "never-firing adaptive == immediate" true (base = quiet)

let () =
  Alcotest.run "cm"
    [
      ( "backoff-arith",
        [
          Alcotest.test_case "capped_backoff overflow edges" `Quick
            test_capped_backoff;
          QCheck_alcotest.to_alcotest prop_capped_backoff;
        ] );
      ( "policies",
        [
          QCheck_alcotest.to_alcotest prop_immediate_noop;
          Alcotest.test_case "backoff jitter from supplied stream" `Quick
            test_backoff_jitter;
          Alcotest.test_case "politeness slot arithmetic" `Quick
            test_politeness_slots;
          Alcotest.test_case "adaptive escalation and decay" `Quick
            test_adaptive_escalation;
        ] );
      ( "ctx",
        [
          Alcotest.test_case "with_restarts counts waits" `Quick
            test_with_restarts_stats;
          Alcotest.test_case "cm_wait_default gating" `Quick
            test_cm_wait_default;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "bit-identical reruns per policy" `Quick
            test_policy_rerun_identity;
          Alcotest.test_case "tracing non-perturbing per policy" `Quick
            test_policy_tracing_identity;
          Alcotest.test_case "never-firing policy reproduces immediate" `Quick
            test_never_firing_policy_is_immediate;
        ] );
    ]
