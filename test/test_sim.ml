(* Unit and property tests for the simulator substrate (lib/sim):
   PRNG, priority queue, memory, cache array, directory, MemTag unit,
   runtime scheduling, and the Machine coherence protocol itself. *)

open Mt_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_split_independent () =
  let a = Prng.create ~seed:42 in
  let c = Prng.split a in
  let x = Prng.next a and y = Prng.next c in
  check_bool "split streams differ" true (x <> y)

let test_prng_int_bounds () =
  let a = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int a 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int a 0))

let prop_prng_float_range =
  QCheck.Test.make ~name:"prng float in [0,1)" ~count:500 QCheck.small_int (fun seed ->
      let g = Prng.create ~seed in
      let f = Prng.float g in
      f >= 0.0 && f < 1.0)

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.add q ~time:5 ~tie:0 "e";
  Pqueue.add q ~time:1 ~tie:1 "a";
  Pqueue.add q ~time:3 ~tie:0 "c";
  Pqueue.add q ~time:1 ~tie:0 "b";
  let pop () =
    let _, _, v = Pqueue.pop_min q in
    v
  in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  let p4 = pop () in
  Alcotest.(check (list string))
    "sorted by (time,tie)" [ "b"; "a"; "c"; "e" ] [ p1; p2; p3; p4 ];
  check_bool "empty" true (Pqueue.is_empty q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops sorted" ~count:200
    QCheck.(list (pair small_nat small_nat))
    (fun entries ->
      let q = Pqueue.create () in
      List.iter (fun (t, tie) -> Pqueue.add q ~time:t ~tie ()) entries;
      let rec drain prev =
        if Pqueue.is_empty q then true
        else
          let t, tie, () = Pqueue.pop_min q in
          match prev with
          | Some (pt, ptie) when (t, tie) < (pt, ptie) -> false
          | _ -> drain (Some (t, tie))
      in
      drain None)

(* Interleaved adds and pops against a sorted reference model: every pop
   must return the key-minimum of what is currently enqueued (the heap
   property must survive arbitrary interleaving, not just bulk-load). *)
let prop_pqueue_model =
  QCheck.Test.make ~name:"pqueue matches model under add/pop interleaving"
    ~count:300
    QCheck.(list (option (pair small_nat small_nat)))
    (fun ops ->
      let q = Pqueue.create () in
      let model = ref [] in
      let id = ref 0 in
      List.for_all
        (function
          | Some (t, tie) ->
              Pqueue.add q ~time:t ~tie !id;
              incr id;
              model := List.merge compare !model [ (t, tie) ];
              true
          | None -> (
              match !model with
              | [] -> Pqueue.is_empty q
              | (t, tie) :: rest ->
                  let t', tie', _ = Pqueue.pop_min q in
                  model := rest;
                  (t', tie') = (t, tie)))
        ops)

(* The regression the option-array representation fixes: a popped value
   must not stay reachable from the queue's backing store (fiber
   continuations would otherwise be pinned until the queue is dropped). *)
let test_pqueue_pop_releases_value () =
  let q = Pqueue.create () in
  let w = Weak.create 1 in
  (let v = ref 12345 in
   Weak.set w 0 (Some v);
   Pqueue.add q ~time:1 ~tie:0 v);
  ignore (Sys.opaque_identity (Pqueue.pop_min q));
  Gc.full_major ();
  check_bool "queue still live" true (Pqueue.is_empty q);
  check_bool "popped value collected" true (Weak.get w 0 = None)

(* ------------------------------------------------------------------ *)
(* Memory *)

let test_memory_alloc_aligned () =
  let cfg = Config.default () in
  let mem = Memory.create cfg in
  let a = Memory.alloc mem ~words:3 in
  let b = Memory.alloc mem ~words:1 in
  check_bool "a line aligned" true (a mod Config.line_words cfg = 0);
  check_bool "b line aligned" true (b mod Config.line_words cfg = 0);
  check_bool "no line sharing" true
    (Config.line_of_addr cfg a <> Config.line_of_addr cfg b);
  check_bool "null is 0 and unallocated" true (a > 0 && b > 0)

let test_memory_rw () =
  let cfg = Config.default () in
  let mem = Memory.create cfg in
  let a = Memory.alloc mem ~words:8 in
  check_int "zero initialised" 0 (Memory.get mem (a + 3));
  Memory.set mem (a + 3) 12345;
  check_int "set/get" 12345 (Memory.get mem (a + 3))

let test_memory_bounds () =
  let cfg = Config.default () in
  let mem = Memory.create cfg in
  let _ = Memory.alloc mem ~words:8 in
  Alcotest.check_raises "null deref"
    (Invalid_argument "Memory: address 0 out of bounds") (fun () ->
      ignore (Memory.get mem 0))

let test_memory_growth () =
  let cfg = Config.default () in
  let mem = Memory.create cfg in
  (* Allocate past the initial chunk capacity and touch the far end. *)
  let a = Memory.alloc mem ~words:(1 lsl 20) in
  Memory.set mem (a + (1 lsl 20) - 1) 99;
  check_int "far word" 99 (Memory.get mem (a + (1 lsl 20) - 1))

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_insert_find () =
  let c = Cache.create ~sets_log2:2 ~ways:2 in
  check_bool "initially absent" true (Cache.find c 12 = Cache.I);
  ignore (Cache.insert c 12 Cache.S);
  check_bool "present S" true (Cache.find c 12 = Cache.S);
  Cache.set_state c 12 Cache.M;
  check_bool "upgraded M" true (Cache.find c 12 = Cache.M);
  Cache.remove c 12;
  check_bool "removed" true (Cache.find c 12 = Cache.I)

let test_cache_lru_eviction () =
  (* 1 set (sets_log2 0... use 0), 2 ways: third insert evicts LRU. *)
  let c = Cache.create ~sets_log2:0 ~ways:2 in
  ignore (Cache.insert c 1 Cache.S);
  ignore (Cache.insert c 2 Cache.S);
  Cache.touch c 1;
  (* 2 is now LRU *)
  match Cache.insert c 3 Cache.S with
  | Some (victim, Cache.S) -> check_int "evicts LRU" 2 victim
  | _ -> Alcotest.fail "expected eviction of line 2"

let test_cache_set_isolation () =
  (* Lines mapping to different sets never evict each other. *)
  let c = Cache.create ~sets_log2:1 ~ways:1 in
  ignore (Cache.insert c 2 Cache.S);
  (* set 0 *)
  ignore (Cache.insert c 3 Cache.S);
  (* set 1 *)
  check_bool "both resident" true
    (Cache.find c 2 = Cache.S && Cache.find c 3 = Cache.S)

let test_cache_population () =
  let c = Cache.create ~sets_log2:3 ~ways:4 in
  for i = 0 to 9 do
    ignore (Cache.insert c i Cache.E)
  done;
  check_int "population" 10 (Cache.population c)

(* ------------------------------------------------------------------ *)
(* Directory *)

let test_directory_basics () =
  let d = Directory.create () in
  check_bool "uncached" true (Directory.sharing d 7 = Directory.Uncached);
  Directory.add_sharer d 7 2;
  Directory.add_sharer d 7 5;
  Alcotest.(check (list int)) "others of 2" [ 5 ] (Directory.others d 7 2);
  Directory.drop d 7 5;
  check_bool "shared [2]" true (Directory.sharing d 7 = Directory.Shared [ 2 ]);
  Directory.drop d 7 2;
  check_bool "back to uncached" true (Directory.sharing d 7 = Directory.Uncached)

let test_directory_excl () =
  let d = Directory.create () in
  Directory.set d 9 (Directory.Excl 3);
  Alcotest.(check (list int)) "others excl" [ 3 ] (Directory.others d 9 0);
  Alcotest.(check (list int)) "owner sees none" [] (Directory.others d 9 3);
  Alcotest.check_raises "add_sharer on excl"
    (Invalid_argument "Directory.add_sharer: line is exclusively owned")
    (fun () -> Directory.add_sharer d 9 1)

(* ------------------------------------------------------------------ *)
(* Memtag_unit *)

let test_tags_validate_ok () =
  let u = Memtag_unit.create ~max_tags:4 in
  Memtag_unit.add u 1;
  Memtag_unit.add u 2;
  check_bool "ok" true (Memtag_unit.check u = Memtag_unit.Ok);
  check_int "count" 2 (Memtag_unit.count u)

let test_tags_conflict_fails () =
  let u = Memtag_unit.create ~max_tags:4 in
  Memtag_unit.add u 1;
  Memtag_unit.on_evict u 1 Memtag_unit.Conflict;
  check_bool "conflict" true (Memtag_unit.check u = Memtag_unit.Fail_conflict)

let test_tags_capacity_is_spurious () =
  let u = Memtag_unit.create ~max_tags:4 in
  Memtag_unit.add u 1;
  Memtag_unit.on_evict u 1 Memtag_unit.Capacity;
  check_bool "spurious" true (Memtag_unit.check u = Memtag_unit.Fail_spurious)

let test_tags_conflict_supersedes_capacity () =
  let u = Memtag_unit.create ~max_tags:4 in
  Memtag_unit.add u 1;
  Memtag_unit.on_evict u 1 Memtag_unit.Capacity;
  Memtag_unit.on_evict u 1 Memtag_unit.Conflict;
  check_bool "upgraded to conflict" true
    (Memtag_unit.check u = Memtag_unit.Fail_conflict)

let test_tags_remove_keeps_conflict () =
  let u = Memtag_unit.create ~max_tags:4 in
  Memtag_unit.add u 1;
  Memtag_unit.add u 2;
  Memtag_unit.on_evict u 1 Memtag_unit.Conflict;
  Memtag_unit.remove u 1;
  check_bool "conflict evidence sticky across remove" true
    (Memtag_unit.check u = Memtag_unit.Fail_conflict);
  Memtag_unit.clear u;
  check_bool "clear resets the evidence" true
    (Memtag_unit.check u = Memtag_unit.Ok);
  (* Capacity evidence is not sticky: removing the tag withdraws the
     claim it protected, so the spurious-failure record goes with it. *)
  Memtag_unit.add u 3;
  Memtag_unit.on_evict u 3 Memtag_unit.Capacity;
  Memtag_unit.remove u 3;
  check_bool "capacity evidence dropped by remove" true
    (Memtag_unit.check u = Memtag_unit.Ok)

let test_tags_overflow_latches () =
  let u = Memtag_unit.create ~max_tags:2 in
  Memtag_unit.add u 1;
  Memtag_unit.add u 2;
  Memtag_unit.add u 3;
  check_bool "overflow fails spuriously" true
    (Memtag_unit.check u = Memtag_unit.Fail_spurious);
  Memtag_unit.remove u 3;
  check_bool "overflow latched after remove" true
    (Memtag_unit.check u = Memtag_unit.Fail_spurious);
  Memtag_unit.clear u;
  check_bool "clear resets overflow" true (Memtag_unit.check u = Memtag_unit.Ok)

let test_tags_untagged_eviction_ignored () =
  let u = Memtag_unit.create ~max_tags:4 in
  Memtag_unit.on_evict u 42 Memtag_unit.Conflict;
  check_bool "still ok" true (Memtag_unit.check u = Memtag_unit.Ok)

(* ------------------------------------------------------------------ *)
(* Runtime *)

let test_runtime_interleaving () =
  (* Two fibers stalling different amounts interleave by simulated time. *)
  let order = ref [] in
  let rt = Runtime.create () in
  Runtime.spawn rt (fun () ->
      Runtime.stall 10;
      order := `A10 :: !order;
      Runtime.stall 20;
      order := `A30 :: !order);
  Runtime.spawn rt (fun () ->
      Runtime.stall 15;
      order := `B15 :: !order;
      Runtime.stall 1;
      order := `B16 :: !order);
  Runtime.run rt;
  check_bool "order by simulated time" true
    (List.rev !order = [ `A10; `B15; `B16; `A30 ])

let test_runtime_tie_break_by_tid () =
  let order = ref [] in
  let rt = Runtime.create () in
  Runtime.spawn rt (fun () ->
      Runtime.stall 5;
      order := 0 :: !order);
  Runtime.spawn rt (fun () ->
      Runtime.stall 5;
      order := 1 :: !order);
  Runtime.run rt;
  Alcotest.(check (list int)) "lower tid first on tie" [ 0; 1 ] (List.rev !order)

let test_runtime_now_final () =
  let rt = Runtime.create () in
  Runtime.spawn rt (fun () -> Runtime.stall 123);
  Runtime.run rt;
  check_int "final clock" 123 (Runtime.now ())

(* ISSUE 8 regression: a fiber spawned while the run is live must join the
   schedule (at the current simulated time) instead of being dropped. *)
let test_runtime_spawn_mid_run () =
  let order = ref [] in
  let rt = Runtime.create () in
  Runtime.spawn rt (fun () ->
      order := 0 :: !order;
      Runtime.spawn rt (fun () ->
          order := 1 :: !order;
          Runtime.stall 3;
          order := 2 :: !order);
      Runtime.stall 10;
      order := 3 :: !order);
  Runtime.run rt;
  Alcotest.(check (list int))
    "mid-run fiber runs, interleaved by simulated time" [ 0; 1; 2; 3 ]
    (List.rev !order);
  check_int "clock covers the late spawn" 10 (Runtime.now ())

let test_runtime_exception_propagates () =
  let rt = Runtime.create () in
  Runtime.spawn rt (fun () ->
      Runtime.stall 1;
      failwith "boom");
  Alcotest.check_raises "fiber exception" (Failure "boom") (fun () -> Runtime.run rt);
  (* The runtime must be reusable after a failed run. *)
  let rt2 = Runtime.create () in
  Runtime.spawn rt2 (fun () -> Runtime.stall 1);
  Runtime.run rt2

(* When one fiber raises, every other suspended fiber is discontinued with
   [Runtime.Aborted], so its cleanup handlers (Fun.protect) run instead of
   the continuation being leaked. *)
let test_runtime_abort_runs_finalizers () =
  let cleaned = ref false and resumed = ref false in
  let rt = Runtime.create () in
  Runtime.spawn rt (fun () ->
      Fun.protect
        ~finally:(fun () -> cleaned := true)
        (fun () ->
          Runtime.stall 100;
          resumed := true));
  Runtime.spawn rt (fun () ->
      Runtime.stall 1;
      failwith "boom");
  Alcotest.check_raises "original exception wins" (Failure "boom") (fun () ->
      Runtime.run rt);
  check_bool "finalizer ran via Aborted" true !cleaned;
  check_bool "aborted fiber did not resume normally" false !resumed;
  (* The domain is immediately usable for a fresh run. *)
  let hit = ref false in
  let rt2 = Runtime.create () in
  Runtime.spawn rt2 (fun () ->
      Runtime.stall 1;
      hit := true);
  Runtime.run rt2;
  check_bool "fresh run after teardown" true !hit

(* A fiber that traps Aborted and suspends again is simply aborted again at
   its next stall; teardown still terminates. *)
let test_runtime_abort_trapped_fiber_drains () =
  let aborts = ref 0 in
  let rt = Runtime.create () in
  Runtime.spawn rt (fun () ->
      try Runtime.stall 10
      with Runtime.Aborted -> (
        incr aborts;
        try Runtime.stall 10 with Runtime.Aborted -> incr aborts));
  Runtime.spawn rt (fun () ->
      Runtime.stall 1;
      failwith "boom");
  Alcotest.check_raises "propagates" (Failure "boom") (fun () -> Runtime.run rt);
  check_int "aborted once per suspension" 2 !aborts

let test_runtime_stall_outside_fiber () =
  Alcotest.check_raises "stall outside any run"
    (Invalid_argument "Runtime.stall: not inside a fiber") (fun () ->
      Runtime.stall 5)

let test_runtime_nested_run_rejected () =
  let rt = Runtime.create () in
  Runtime.spawn rt (fun () ->
      let inner = Runtime.create () in
      Alcotest.check_raises "nested run"
        (Invalid_argument "Runtime.run: a run is already active on this domain")
        (fun () -> Runtime.run inner));
  Runtime.run rt

let test_runtime_clock_accessor () =
  let rt = Runtime.create () in
  Runtime.spawn rt (fun () -> Runtime.stall 7);
  Runtime.run rt;
  check_int "per-runtime clock" 7 (Runtime.clock rt)

(* ------------------------------------------------------------------ *)
(* Machine: MESI transitions, latency, tags. *)

let machine ?(cores = 4) () = Machine.create (Config.default ~num_cores:cores ())

let test_machine_read_write_roundtrip () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  Mt_core.Harness.exec1 m (fun ctx ->
      Mt_core.Ctx.write ctx a 77;
      check_int "roundtrip" 77 (Mt_core.Ctx.read ctx a))

let test_machine_cold_then_hot_latency () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let cfg = Machine.cfg m in
  let _ = Machine.read m ~core:0 a in
  let lat_cold = Machine.last_latency m in
  let _ = Machine.read m ~core:0 a in
  let lat_hot = Machine.last_latency m in
  check_int "cold read = dir + mem" (cfg.lat_dir + cfg.lat_mem) lat_cold;
  check_int "hot read = L1 hit" cfg.lat_l1 lat_hot

let test_machine_read_sharing () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let _ = Machine.read m ~core:0 a in
  let _ = Machine.read m ~core:1 a in
  (* Both cores now share; a write by core 2 invalidates both. *)
  let s0 = Machine.stats m ~core:0 and s1 = Machine.stats m ~core:1 in
  let _ = Machine.write m ~core:2 a 5 in
  check_int "core0 invalidated" 1 s0.invalidations_received;
  check_int "core1 invalidated" 1 s1.invalidations_received;
  (* Re-read by core 0 misses again. *)
  let before = s0.l1_misses in
  let v = Machine.read m ~core:0 a in
  check_int "sees new value" 5 v;
  check_int "miss after invalidation" (before + 1) s0.l1_misses

let test_machine_dirty_transfer () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let cfg = Machine.cfg m in
  let _ = Machine.write m ~core:0 a 9 in
  (* Core 1 reads: dirty line is downgraded at core 0, not invalidated. *)
  let v = Machine.read m ~core:1 a in
  let lat = Machine.last_latency m in
  check_int "dirty value visible" 9 v;
  check_int "remote transfer latency" (cfg.lat_dir + cfg.lat_remote) lat;
  check_int "downgrade received" 1 (Machine.stats m ~core:0).downgrades_received;
  (* Core 0 still hits locally afterwards. *)
  let _ = Machine.read m ~core:0 a in
  let lat0 = Machine.last_latency m in
  check_int "still hits after downgrade" cfg.lat_l1 lat0

let test_machine_upgrade_from_shared () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let _ = Machine.read m ~core:0 a in
  let _ = Machine.read m ~core:1 a in
  let lat = Machine.write m ~core:0 a 1 in
  let cfg = Machine.cfg m in
  check_int "upgrade latency (store-buffer capped)"
    (min
       (cfg.lat_l1 + cfg.lat_dir + cfg.lat_inval + cfg.lat_inval_per_sharer)
       cfg.lat_store_buffered)
    lat;
  check_int "sharer invalidated" 1 (Machine.stats m ~core:1).invalidations_received

let test_machine_cas_semantics () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let ok = Machine.cas m ~core:0 a ~expected:0 ~desired:5 in
  check_bool "cas succeeds" true ok;
  let ok = Machine.cas m ~core:1 a ~expected:0 ~desired:6 in
  check_bool "stale cas fails" false ok;
  check_int "value unchanged by failed cas" 5 (Machine.peek m a);
  check_int "failure counted" 1 (Machine.stats m ~core:1).cas_failures

let test_machine_faa () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let v0 = Machine.faa m ~core:0 a 3 in
  let v1 = Machine.faa m ~core:1 a 4 in
  check_int "faa old 0" 0 v0;
  check_int "faa old 3" 3 v1;
  check_int "total" 7 (Machine.peek m a)

let test_machine_tag_validate_conflict () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let _ = Machine.add_tag m ~core:0 a ~words:8 in
  let ok = Machine.validate m ~core:0 in
  check_bool "valid before write" true ok;
  let _ = Machine.write m ~core:1 a 1 in
  let ok = Machine.validate m ~core:0 in
  check_bool "invalid after remote write" false ok;
  check_int "not spurious" 0 (Machine.stats m ~core:0).validate_failures_spurious

let test_machine_tag_read_does_not_invalidate () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let _ = Machine.add_tag m ~core:0 a ~words:8 in
  let _ = Machine.read m ~core:1 a in
  let ok = Machine.validate m ~core:0 in
  check_bool "remote read keeps tag valid" true ok

let test_machine_own_write_keeps_tag () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let _ = Machine.add_tag m ~core:0 a ~words:8 in
  let _ = Machine.write m ~core:0 a 3 in
  let ok = Machine.validate m ~core:0 in
  check_bool "own write keeps own tag" true ok

let test_machine_vas_fail_fast_no_traffic () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let b = Machine.alloc m ~words:8 in
  let _ = Machine.add_tag m ~core:0 a ~words:8 in
  let _ = Machine.write m ~core:1 a 1 in
  let msgs_before = (Machine.stats m ~core:0).coherence_msgs in
  let ok = Machine.vas m ~core:0 b 42 in
  let lat = Machine.last_latency m in
  check_bool "vas fails" false ok;
  check_int "vas fail is local" (Machine.cfg m).lat_validate lat;
  check_int "no coherence traffic" msgs_before (Machine.stats m ~core:0).coherence_msgs;
  check_int "target untouched" 0 (Machine.peek m b)

let test_machine_vas_success_updates () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let _ = Machine.add_tag m ~core:0 a ~words:8 in
  let ok = Machine.vas m ~core:0 a 42 in
  check_bool "vas succeeds" true ok;
  check_int "value stored" 42 (Machine.peek m a)

let test_machine_vas_invalidates_remote_tags () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let _ = Machine.add_tag m ~core:1 a ~words:8 in
  let _ = Machine.add_tag m ~core:0 a ~words:8 in
  let ok = Machine.vas m ~core:0 a 1 in
  check_bool "writer vas ok" true ok;
  let ok1 = Machine.validate m ~core:1 in
  check_bool "victim tag dead" false ok1

let test_machine_ias_invalidates_all_tagged () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let b = Machine.alloc m ~words:8 in
  (* Core 1 tags only [b]; core 0 tags both and IASes a store to [a].
     The IAS must invalidate [b] at core 1 even though the store is to [a]. *)
  let _ = Machine.add_tag m ~core:1 b ~words:8 in
  let _ = Machine.add_tag m ~core:0 a ~words:8 in
  let _ = Machine.add_tag m ~core:0 b ~words:8 in
  let ok = Machine.ias m ~core:0 a 7 in
  check_bool "ias ok" true ok;
  check_int "stored" 7 (Machine.peek m a);
  let ok1 = Machine.validate m ~core:1 in
  check_bool "remote tag on b invalidated" false ok1

let test_machine_vas_does_not_invalidate_unrelated () =
  (* VAS only takes the target line; a remote tag on a different line
     survives — precisely why the HoH list needs IAS (Figure 1). *)
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let b = Machine.alloc m ~words:8 in
  let _ = Machine.add_tag m ~core:1 b ~words:8 in
  let _ = Machine.add_tag m ~core:0 a ~words:8 in
  let _ = Machine.add_tag m ~core:0 b ~words:8 in
  let ok = Machine.vas m ~core:0 a 7 in
  check_bool "vas ok" true ok;
  let ok1 = Machine.validate m ~core:1 in
  check_bool "unrelated remote tag survives vas" true ok1

let test_machine_tag_overflow () =
  let cfg = { (Config.default ~num_cores:2 ()) with max_tags = 3 } in
  let m = Machine.create cfg in
  let addrs = List.init 5 (fun _ -> Machine.alloc m ~words:8) in
  List.iter (fun a -> ignore (Machine.add_tag m ~core:0 a ~words:1)) addrs;
  let ok = Machine.validate m ~core:0 in
  check_bool "overflowed validation fails" false ok;
  check_int "spurious" 1 (Machine.stats m ~core:0).validate_failures_spurious;
  let _ = Machine.clear_tag_set m ~core:0 in
  let ok = Machine.validate m ~core:0 in
  check_bool "clear resets" true ok

let test_machine_capacity_eviction_spurious () =
  (* Tiny L1: touching many lines evicts the tagged one by capacity. *)
  let cfg =
    { (Config.default ~num_cores:1 ()) with l1_sets_log2 = 0; l1_ways = 2 }
  in
  let m = Machine.create cfg in
  let tagged = Machine.alloc m ~words:8 in
  let _ = Machine.add_tag m ~core:0 tagged ~words:1 in
  for _ = 1 to 4 do
    let a = Machine.alloc m ~words:8 in
    ignore (Machine.read m ~core:0 a)
  done;
  let ok = Machine.validate m ~core:0 in
  check_bool "capacity eviction fails validation" false ok;
  check_int "classified spurious" 1
    (Machine.stats m ~core:0).validate_failures_spurious

let test_machine_l2_inclusion_back_invalidates () =
  (* L1 big enough, L2 tiny: L2 eviction must remove the L1 copy too. *)
  let cfg =
    {
      (Config.default ~num_cores:1 ()) with
      l1_sets_log2 = 0;
      l1_ways = 8;
      l2_sets_log2 = 0;
      l2_ways = 2;
    }
  in
  let m = Machine.create cfg in
  let a = Machine.alloc m ~words:8 in
  let _ = Machine.add_tag m ~core:0 a ~words:1 in
  for _ = 1 to 3 do
    let b = Machine.alloc m ~words:8 in
    ignore (Machine.read m ~core:0 b)
  done;
  let ok = Machine.validate m ~core:0 in
  check_bool "inclusion victim kills tag" false ok

let test_machine_remove_tag_then_conflict_ok () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let b = Machine.alloc m ~words:8 in
  let _ = Machine.add_tag m ~core:0 a ~words:1 in
  let _ = Machine.add_tag m ~core:0 b ~words:1 in
  let _ = Machine.remove_tag m ~core:0 a ~words:1 in
  let _ = Machine.write m ~core:1 a 1 in
  let ok = Machine.validate m ~core:0 in
  check_bool "conflict on untagged line ignored" true ok

(* ISSUE 8 regression: a conflict recorded while the tag was held must
   survive a subsequent remove_tag — the reads made under that tag may be
   torn, so validation must still fail (and fail as a real conflict). *)
let test_machine_conflict_survives_remove_tag () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let _ = Machine.add_tag m ~core:0 a ~words:1 in
  let _ = Machine.write m ~core:1 a 1 in
  let _ = Machine.remove_tag m ~core:0 a ~words:1 in
  let ok = Machine.validate m ~core:0 in
  check_bool "conflict evidence survives remove" false ok;
  let s = Machine.stats m ~core:0 in
  check_int "classified real, not spurious" 0 s.validate_failures_spurious;
  check_int "one failed validation" 1 s.validate_failures

(* ISSUE 8 regression: the tag-targeted IAS kill probes every remote
   tagger (that is what the latency formula charges) but only taggers
   still holding a cached copy receive a real invalidation — the two must
   be accounted separately so message and latency books agree. *)
let test_machine_tag_probe_stats () =
  let m = machine ~cores:2 () in
  let a = Machine.alloc m ~words:8 in
  let b = Machine.alloc m ~words:8 in
  let _ = Machine.add_tag m ~core:0 a ~words:1 in
  let _ = Machine.add_tag m ~core:0 b ~words:1 in
  let _ = Machine.add_tag m ~core:1 b ~words:1 in
  (* Kill of the non-target tagged line [b] finds core 1 tagged *and*
     cached: one probe, one real invalidation. *)
  check_bool "first ias commits" true (Machine.ias m ~core:0 a 1);
  let s0 = Machine.stats m ~core:0 and s1 = Machine.stats m ~core:1 in
  check_int "probe sent (cached tagger)" 1 s0.tag_probes_sent;
  check_int "probe received (cached tagger)" 1 s1.tag_probes_received;
  check_int "invalidation sent" 1 s0.invalidations_sent;
  check_int "invalidation received" 1 s1.invalidations_received;
  (* Core 1 lost its copy but keeps the (conflict-evicted) tag entry, so
     a second kill probes it again — with no copy left to invalidate the
     probe must not be booked as an invalidation. *)
  check_bool "second ias commits" true (Machine.ias m ~core:0 a 2);
  let s0 = Machine.stats m ~core:0 and s1 = Machine.stats m ~core:1 in
  check_int "second probe sent (uncached tagger)" 2 s0.tag_probes_sent;
  check_int "second probe received (uncached tagger)" 2 s1.tag_probes_received;
  check_int "no extra invalidation sent" 1 s0.invalidations_sent;
  check_int "no extra invalidation received" 1 s1.invalidations_received

(* Property: a random mix of reads/writes through the machine always
   matches a plain shadow array (the timing model must never corrupt
   functional memory). *)
let prop_machine_matches_shadow =
  QCheck.Test.make ~name:"machine memory matches shadow" ~count:50
    QCheck.(pair small_int (list (tup3 (int_bound 3) (int_bound 63) (int_bound 1000))))
    (fun (seed, ops) ->
      let m = machine () in
      let base = Machine.alloc m ~words:64 in
      let shadow = Array.make 64 0 in
      let g = Prng.create ~seed in
      List.for_all
        (fun (core, off, v) ->
          match Prng.int g 3 with
          | 0 ->
              let got = Machine.read m ~core (base + off) in
              got = shadow.(off)
          | 1 ->
              let _ = Machine.write m ~core (base + off) v in
              shadow.(off) <- v;
              true
          | _ ->
              let expected = shadow.(off) in
              let ok = Machine.cas m ~core (base + off) ~expected ~desired:v in
              if ok then shadow.(off) <- v;
              ok)
        ops)

(* Property: after any access sequence, for every line the directory and the
   cache states agree (single owner for M/E; all sharers actually have it). *)
let prop_machine_coherence_invariant =
  QCheck.Test.make ~name:"directory/cache agreement" ~count:50
    QCheck.(list (tup3 (int_bound 3) (int_bound 31) bool))
    (fun ops ->
      let m = machine () in
      let base = Machine.alloc m ~words:256 in
      List.iter
        (fun (core, line_off, is_write) ->
          let a = base + (8 * line_off) in
          if is_write then ignore (Machine.write m ~core a 1)
          else ignore (Machine.read m ~core a))
        ops;
      (* Cross-check via observable behaviour: every core can read every
         line and sees the functional memory value. *)
      List.for_all
        (fun off ->
          let a = base + (8 * off) in
          let expect = Machine.peek m a in
          List.for_all
            (fun core ->
              let v = Machine.read m ~core a in
              v = expect)
            [ 0; 1; 2; 3 ])
        (List.init 32 (fun i -> i)))

(* ISSUE 8: the flat-array directory/cache rewrite must uphold the MESI
   invariants structurally, not just behaviourally — run the machine's own
   checker (L1 ⊆ L2 inclusion, single M/E owner, exact sharer sets) after
   every operation of a random read/write/tag/untag sequence. *)
let prop_machine_check_coherence =
  QCheck.Test.make ~name:"MESI/directory invariants hold" ~count:100
    QCheck.(list (tup3 (int_bound 3) (int_bound 31) (int_bound 4)))
    (fun ops ->
      let m = machine () in
      let base = Machine.alloc m ~words:256 in
      List.iter
        (fun (core, line_off, kind) ->
          let a = base + (8 * line_off) in
          (match kind with
          | 0 -> ignore (Machine.read m ~core a)
          | 1 -> ignore (Machine.write m ~core a 1)
          | 2 -> ignore (Machine.add_tag m ~core a ~words:1)
          | 3 -> ignore (Machine.remove_tag m ~core a ~words:1)
          | _ -> ignore (Machine.validate m ~core));
          Machine.check_coherence m)
        ops;
      true)

(* ------------------------------------------------------------------ *)
(* Harness / Ctx *)

let test_harness_threads_interleave () =
  let m = machine () in
  let counter = Machine.alloc m ~words:1 in
  let _ =
    Mt_core.Harness.exec m ~threads:4 (fun ctx ->
        for _ = 1 to 100 do
          (* Atomic increments from 4 fibers must not lose updates. *)
          let rec incr () =
            let v = Mt_core.Ctx.read ctx counter in
            if not (Mt_core.Ctx.cas ctx counter ~expected:v ~desired:(v + 1)) then
              incr ()
          in
          incr ()
        done)
  in
  check_int "no lost updates" 400 (Machine.peek m counter)

let test_harness_duration_positive () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let d =
    Mt_core.Harness.exec m ~threads:2 (fun ctx ->
        for _ = 1 to 10 do
          Mt_core.Ctx.write ctx a 1
        done)
  in
  check_bool "duration > 0" true (d > 0)

let test_harness_determinism () =
  let run () =
    let m = machine () in
    let a = Machine.alloc m ~words:8 in
    let d =
      Mt_core.Harness.exec m ~seed:99 ~threads:4 (fun ctx ->
          for _ = 1 to 50 do
            let v = Mt_core.Ctx.read ctx a in
            ignore (Mt_core.Ctx.cas ctx a ~expected:v ~desired:(v + 1))
          done)
    in
    (d, Machine.peek m a, (Machine.total_stats m).l1_misses)
  in
  let r1 = run () and r2 = run () in
  check_bool "identical runs" true (r1 = r2)

let test_mode_line () =
  let m = machine () in
  let mode = Mt_core.Mode.create m in
  Mt_core.Harness.exec1 m (fun ctx ->
      check_bool "starts fast" true (Mt_core.Mode.is_fast ctx mode);
      Mt_core.Mode.set_slow ctx mode;
      check_bool "slow" false (Mt_core.Mode.is_fast ctx mode);
      Mt_core.Mode.set_fast ctx mode;
      check_bool "fast again" true (Mt_core.Mode.is_fast ctx mode))

let test_mode_flip_invalidates_taggers () =
  let m = machine () in
  let mode = Mt_core.Mode.create m in
  let _ = Machine.add_tag m ~core:0 (Mt_core.Mode.addr mode) ~words:1 in
  let _ = Machine.write m ~core:1 (Mt_core.Mode.addr mode) Mt_core.Mode.slow in
  let ok = Machine.validate m ~core:0 in
  check_bool "fast-path tagger aborted by mode flip" false ok

(* ------------------------------------------------------------------ *)
(* Model edge cases. *)

let test_store_buffer_cap () =
  (* A plain store to a widely shared line is capped for the issuer, but a
     CAS to the same situation pays the full serialized latency. *)
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let cfg = Machine.cfg m in
  let share () =
    for core = 0 to 3 do
      ignore (Machine.read m ~core a)
    done
  in
  share ();
  let wlat = Machine.write m ~core:0 a 1 in
  check_bool "store capped" true (wlat <= cfg.lat_store_buffered);
  share ();
  let _ = Machine.cas m ~core:0 a ~expected:1 ~desired:2 in
  let clat = Machine.last_latency m in
  check_bool "cas uncapped" true (clat > cfg.lat_store_buffered)

let test_inval_latency_scales_with_sharers () =
  let lat_with_sharers n =
    let m = machine ~cores:4 () in
    let a = Machine.alloc m ~words:8 in
    for core = 1 to n do
      ignore (Machine.read m ~core a)
    done;
    (* CAS so the latency is not store-buffer capped. *)
    let _ = Machine.cas m ~core:0 a ~expected:0 ~desired:1 in
    let lat = Machine.last_latency m in
    lat
  in
  check_bool "3 sharers cost more than 1" true (lat_with_sharers 3 > lat_with_sharers 1)

let test_downgrade_keeps_tag_but_write_kills_it () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let _ = Machine.write m ~core:0 a 5 in
  (* Line is M at core 0; tag it, then have core 1 read (downgrade). *)
  let _ = Machine.add_tag m ~core:0 a ~words:1 in
  let _ = Machine.read m ~core:1 a in
  let ok = Machine.validate m ~core:0 in
  check_bool "downgrade keeps tag" true ok;
  let _ = Machine.write m ~core:1 a 6 in
  let ok = Machine.validate m ~core:0 in
  check_bool "subsequent write kills it" false ok

let test_ias_self_only_tags () =
  (* IAS with no remote taggers and a hot M line is cheap and succeeds. *)
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  let _ = Machine.write m ~core:0 a 1 in
  let _ = Machine.add_tag m ~core:0 a ~words:1 in
  let ok = Machine.ias m ~core:0 a 2 in
  check_bool "ias ok" true ok;
  check_int "stored" 2 (Machine.peek m a)

let test_add_tag_read_equals_read_plus_tag () =
  let m = machine () in
  let a = Machine.alloc m ~words:8 in
  Machine.poke m a 7;
  let v = Machine.add_tag_read m ~core:0 a ~words:1 in
  check_int "tagged load returns value" 7 v;
  let _ = Machine.write m ~core:1 a 8 in
  let ok = Machine.validate m ~core:0 in
  check_bool "line was really tagged" false ok

let test_lines_of_range_spanning () =
  let cfg = Config.default () in
  Alcotest.(check (list int))
    "straddles two lines" [ 0; 1 ]
    (Config.lines_of_range cfg 6 4);
  Alcotest.check_raises "empty range" (Invalid_argument "Config.lines_of_range: empty range")
    (fun () -> ignore (Config.lines_of_range cfg 6 0))

let test_harness_rejects_oversubscription () =
  let m = machine ~cores:2 () in
  Alcotest.check_raises "too many threads"
    (Invalid_argument "Harness.exec: bad thread count") (fun () ->
      ignore (Mt_core.Harness.exec m ~threads:3 (fun _ -> ())))

let test_ctx_work_advances_time () =
  let m = machine () in
  Mt_core.Harness.exec1 m (fun ctx ->
      let t0 = Mt_core.Ctx.now ctx in
      Mt_core.Ctx.work ctx 123;
      check_int "work advances the clock" (t0 + 123) (Mt_core.Ctx.now ctx))

let prop_prng_int_uniformish =
  QCheck.Test.make ~name:"prng buckets roughly uniform" ~count:20 QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed in
      let buckets = Array.make 8 0 in
      for _ = 1 to 8000 do
        let i = Prng.int g 8 in
        buckets.(i) <- buckets.(i) + 1
      done;
      Array.for_all (fun c -> c > 700 && c < 1300) buckets)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  (* The simulator's internal sanity checks (memory bounds, cache insert
     preconditions) are debug-gated off the hot path; the tests want them. *)
  Debug.set true;
  Alcotest.run "mt_sim"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        ]
        @ qsuite [ prop_prng_float_range ] );
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "pop releases value" `Quick
            test_pqueue_pop_releases_value;
        ]
        @ qsuite [ prop_pqueue_sorted; prop_pqueue_model ] );
      ( "memory",
        [
          Alcotest.test_case "alloc aligned" `Quick test_memory_alloc_aligned;
          Alcotest.test_case "read write" `Quick test_memory_rw;
          Alcotest.test_case "bounds" `Quick test_memory_bounds;
          Alcotest.test_case "growth" `Quick test_memory_growth;
        ] );
      ( "cache",
        [
          Alcotest.test_case "insert/find" `Quick test_cache_insert_find;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "set isolation" `Quick test_cache_set_isolation;
          Alcotest.test_case "population" `Quick test_cache_population;
        ] );
      ( "directory",
        [
          Alcotest.test_case "basics" `Quick test_directory_basics;
          Alcotest.test_case "exclusive" `Quick test_directory_excl;
        ] );
      ( "memtag_unit",
        [
          Alcotest.test_case "validate ok" `Quick test_tags_validate_ok;
          Alcotest.test_case "conflict fails" `Quick test_tags_conflict_fails;
          Alcotest.test_case "capacity spurious" `Quick test_tags_capacity_is_spurious;
          Alcotest.test_case "conflict supersedes" `Quick
            test_tags_conflict_supersedes_capacity;
          Alcotest.test_case "remove keeps conflict" `Quick
            test_tags_remove_keeps_conflict;
          Alcotest.test_case "overflow latches" `Quick test_tags_overflow_latches;
          Alcotest.test_case "untagged ignored" `Quick
            test_tags_untagged_eviction_ignored;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "interleaving" `Quick test_runtime_interleaving;
          Alcotest.test_case "tie break" `Quick test_runtime_tie_break_by_tid;
          Alcotest.test_case "final now" `Quick test_runtime_now_final;
          Alcotest.test_case "spawn mid-run" `Quick test_runtime_spawn_mid_run;
          Alcotest.test_case "exceptions" `Quick test_runtime_exception_propagates;
          Alcotest.test_case "abort runs finalizers" `Quick
            test_runtime_abort_runs_finalizers;
          Alcotest.test_case "abort drains trapped fibers" `Quick
            test_runtime_abort_trapped_fiber_drains;
          Alcotest.test_case "stall outside fiber" `Quick
            test_runtime_stall_outside_fiber;
          Alcotest.test_case "nested run rejected" `Quick
            test_runtime_nested_run_rejected;
          Alcotest.test_case "clock accessor" `Quick test_runtime_clock_accessor;
        ] );
      ( "machine",
        [
          Alcotest.test_case "roundtrip" `Quick test_machine_read_write_roundtrip;
          Alcotest.test_case "cold/hot latency" `Quick test_machine_cold_then_hot_latency;
          Alcotest.test_case "read sharing" `Quick test_machine_read_sharing;
          Alcotest.test_case "dirty transfer" `Quick test_machine_dirty_transfer;
          Alcotest.test_case "upgrade from shared" `Quick test_machine_upgrade_from_shared;
          Alcotest.test_case "cas semantics" `Quick test_machine_cas_semantics;
          Alcotest.test_case "faa" `Quick test_machine_faa;
        ] );
      ( "machine-tags",
        [
          Alcotest.test_case "tag/validate conflict" `Quick
            test_machine_tag_validate_conflict;
          Alcotest.test_case "read keeps tags" `Quick
            test_machine_tag_read_does_not_invalidate;
          Alcotest.test_case "own write keeps tag" `Quick test_machine_own_write_keeps_tag;
          Alcotest.test_case "vas fail fast" `Quick test_machine_vas_fail_fast_no_traffic;
          Alcotest.test_case "vas success" `Quick test_machine_vas_success_updates;
          Alcotest.test_case "vas kills remote tags" `Quick
            test_machine_vas_invalidates_remote_tags;
          Alcotest.test_case "ias invalidates all tagged" `Quick
            test_machine_ias_invalidates_all_tagged;
          Alcotest.test_case "vas spares unrelated" `Quick
            test_machine_vas_does_not_invalidate_unrelated;
          Alcotest.test_case "tag overflow" `Quick test_machine_tag_overflow;
          Alcotest.test_case "capacity spurious" `Quick
            test_machine_capacity_eviction_spurious;
          Alcotest.test_case "L2 inclusion" `Quick
            test_machine_l2_inclusion_back_invalidates;
          Alcotest.test_case "remove then conflict" `Quick
            test_machine_remove_tag_then_conflict_ok;
          Alcotest.test_case "conflict survives remove" `Quick
            test_machine_conflict_survives_remove_tag;
          Alcotest.test_case "tag probe accounting" `Quick
            test_machine_tag_probe_stats;
        ]
        @ qsuite
            [
              prop_machine_matches_shadow;
              prop_machine_coherence_invariant;
              prop_machine_check_coherence;
            ] );
      ( "model-edges",
        [
          Alcotest.test_case "store buffer cap" `Quick test_store_buffer_cap;
          Alcotest.test_case "inval scales with sharers" `Quick
            test_inval_latency_scales_with_sharers;
          Alcotest.test_case "downgrade vs write" `Quick
            test_downgrade_keeps_tag_but_write_kills_it;
          Alcotest.test_case "ias self tags" `Quick test_ias_self_only_tags;
          Alcotest.test_case "tagged load" `Quick test_add_tag_read_equals_read_plus_tag;
          Alcotest.test_case "line ranges" `Quick test_lines_of_range_spanning;
        ]
        @ qsuite [ prop_prng_int_uniformish ] );
      ( "harness",
        [
          Alcotest.test_case "no lost updates" `Quick test_harness_threads_interleave;
          Alcotest.test_case "duration" `Quick test_harness_duration_positive;
          Alcotest.test_case "determinism" `Quick test_harness_determinism;
          Alcotest.test_case "oversubscription" `Quick test_harness_rejects_oversubscription;
          Alcotest.test_case "work advances time" `Quick test_ctx_work_advances_time;
          Alcotest.test_case "mode line" `Quick test_mode_line;
          Alcotest.test_case "mode flip aborts" `Quick test_mode_flip_invalidates_taggers;
        ] );
    ]
