(* Tests for both (a,b)-tree variants: the generic SET battery, structural
   invariants after quiescence (balance, arity, ordering), qcheck
   properties of the pure rebalancing arithmetic, and HoH range
   snapshots. *)

open Mt_sim
open Mt_core
module Node_desc = Mt_abtree.Node_desc

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module Small = struct
  let a = 2
  let b = 4
end

module Mid = struct
  let a = 4
  let b = 8
end

module Hoh_small = Mt_abtree.Abtree_hoh.Make (Small)
module Hoh_mid = Mt_abtree.Abtree_hoh.Make (Mid)
module Llx_small = Mt_abtree.Abtree_llx.Make (Small)
module Llx_mid = Mt_abtree.Abtree_llx.Make (Mid)

module Hoh_battery = Set_battery.Make (Hoh_small)
module Llx_battery = Set_battery.Make (Llx_small)
module Hoh_mid_battery = Set_battery.Make (Hoh_mid)
module Llx_mid_battery = Set_battery.Make (Llx_mid)

let machine ?(cores = 8) () = Machine.create (Config.default ~num_cores:cores ())

(* ------------------------------------------------------------------ *)
(* Structural invariants after sequential and concurrent runs. *)

let assert_report name (r : Mt_abtree.Checker.report) =
  if not r.ok then
    Alcotest.failf "%s: invariant violations: %s" name (String.concat "; " r.errors)

let test_invariants_sequential_hoh () =
  let m = machine () in
  let t =
    Harness.exec1 m (fun ctx ->
        let t = Hoh_small.create ctx in
        let g = Prng.create ~seed:3 in
        for _ = 1 to 3000 do
          let k = Prng.int g 300 in
          if Prng.int g 3 = 0 then ignore (Hoh_small.delete ctx t k)
          else ignore (Hoh_small.insert ctx t k)
        done;
        t)
  in
  let r = Hoh_small.check m t in
  assert_report "hoh sequential" r;
  check_bool "grew some height" true (r.height >= 2)

let test_invariants_sequential_llx () =
  let m = machine () in
  let t =
    Harness.exec1 m (fun ctx ->
        let t = Llx_small.create ctx in
        let g = Prng.create ~seed:3 in
        for _ = 1 to 3000 do
          let k = Prng.int g 300 in
          if Prng.int g 3 = 0 then ignore (Llx_small.delete ctx t k)
          else ignore (Llx_small.insert ctx t k)
        done;
        t)
  in
  assert_report "llx sequential" (Llx_small.check m t)

let test_invariants_grow_then_shrink () =
  let m = machine () in
  let t =
    Harness.exec1 m (fun ctx ->
        let t = Hoh_small.create ctx in
        for k = 0 to 499 do
          ignore (Hoh_small.insert ctx t k)
        done;
        for k = 0 to 479 do
          ignore (Hoh_small.delete ctx t k)
        done;
        t)
  in
  let r = Hoh_small.check m t in
  assert_report "grow/shrink" r;
  check_int "remaining keys" 20 r.n_keys

module type CHECKED_SET = sig
  include Mt_list.Set_intf.SET

  val check : Machine.t -> t -> Mt_abtree.Checker.report
end

let concurrent_invariants name (module T : CHECKED_SET) () =
  let threads = 8 in
  let m = machine ~cores:threads () in
  let t = Harness.exec1 m (fun ctx -> T.create ctx) in
  let (_ : int) =
    Harness.exec m ~seed:11 ~threads (fun ctx ->
        let g = Ctx.prng ctx in
        for _ = 1 to 250 do
          let k = Prng.int g 200 in
          match Prng.int g 3 with
          | 0 -> ignore (T.delete ctx t k)
          | 1 -> ignore (T.insert ctx t k)
          | _ -> ignore (T.contains ctx t k)
        done)
  in
  assert_report name (T.check m t)

let test_concurrent_invariants_hoh =
  concurrent_invariants "hoh concurrent" (module Hoh_small)

let test_concurrent_invariants_llx =
  concurrent_invariants "llx concurrent" (module Llx_small)

let test_concurrent_invariants_hoh_mid =
  concurrent_invariants "hoh(4,8) concurrent" (module Hoh_mid)

let test_concurrent_invariants_llx_mid =
  concurrent_invariants "llx(4,8) concurrent" (module Llx_mid)

(* ------------------------------------------------------------------ *)
(* HoH range snapshots on trees. *)

let test_tree_range_basic () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let t = Hoh_small.create ctx in
      for k = 0 to 99 do
        ignore (Hoh_small.insert ctx t (2 * k))
      done;
      match Hoh_small.range ctx t ~lo:10 ~hi:20 with
      | Some keys -> Alcotest.(check (list int)) "range" [ 10; 12; 14; 16; 18; 20 ] keys
      | None -> Alcotest.fail "range overflow unexpectedly")

(* Writers toggle pairs; every atomic snapshot must see at least one
   element of each pair (same invariant as the list range test, but
   through subtree-tagged tree snapshots). *)
let test_tree_range_snapshot_consistency () =
  let pairs = 6 in
  let m = machine ~cores:4 () in
  let t =
    Harness.exec1 m (fun ctx ->
        let t = Hoh_small.create ctx in
        for p = 0 to pairs - 1 do
          ignore (Hoh_small.insert ctx t (2 * p))
        done;
        t)
  in
  let violations = ref 0 and snapshots = ref 0 in
  let (_ : int) =
    Harness.exec m ~seed:31 ~threads:3 (fun ctx ->
        if Ctx.core ctx < 2 then
          let g = Ctx.prng ctx in
          for _ = 1 to 120 do
            let p = Prng.int g pairs in
            if Hoh_small.insert ctx t ((2 * p) + 1) then
              ignore (Hoh_small.delete ctx t (2 * p))
            else if Hoh_small.insert ctx t (2 * p) then
              ignore (Hoh_small.delete ctx t ((2 * p) + 1))
          done
        else
          for _ = 1 to 60 do
            match Hoh_small.range ctx t ~lo:0 ~hi:(2 * pairs) with
            | None -> ()
            | Some keys ->
                incr snapshots;
                for p = 0 to pairs - 1 do
                  if
                    (not (List.mem (2 * p) keys))
                    && not (List.mem ((2 * p) + 1) keys)
                  then incr violations
                done
          done)
  in
  check_bool "snapshots happened" true (!snapshots > 0);
  check_int "no torn tree snapshots" 0 !violations

let test_tree_range_overflow () =
  (* Small enough that a whole-tree snapshot overflows, but large enough
     that the 3-node locate window of updates still fits. *)
  let cfg = { (Config.default ~num_cores:1 ()) with max_tags = 12 } in
  let m = Machine.create cfg in
  Harness.exec1 m (fun ctx ->
      let t = Hoh_small.create ctx in
      for k = 0 to 199 do
        ignore (Hoh_small.insert ctx t k)
      done;
      match Hoh_small.range ctx t ~lo:0 ~hi:199 with
      | None -> ()
      | Some _ -> Alcotest.fail "expected Max_Tags overflow")

(* ------------------------------------------------------------------ *)
(* qcheck properties of the pure node arithmetic. *)

let keys_gen =
  (* sort_uniq can collapse duplicate draws below split's 2-key minimum;
     pad with keys above the drawn range to keep the array well-formed. *)
  QCheck.Gen.(
    map
      (fun l ->
        let l = List.sort_uniq compare l in
        let l = if List.length l >= 2 then l else l @ [ 1001; 1002 ] in
        Array.of_list l)
      (list_size (int_range 2 9) (int_range 0 1000)))

let leaf_arb =
  QCheck.make
    ~print:(fun d -> Format.asprintf "%a" Node_desc.pp d)
    QCheck.Gen.(
      map
        (fun keys -> { Node_desc.weight = 1; leaf = true; keys; ptrs = [||] })
        keys_gen)

let prop_split_preserves_keys =
  QCheck.Test.make ~name:"split preserves key multiset" ~count:300 leaf_arb (fun d ->
      let l, r, sep = Node_desc.split d in
      let combined = Array.append l.Node_desc.keys r.Node_desc.keys in
      combined = d.Node_desc.keys
      && sep = r.Node_desc.keys.(0)
      && abs (Array.length l.Node_desc.keys - Array.length r.Node_desc.keys) <= 1)

let prop_merge_then_split_roundtrip =
  QCheck.Test.make ~name:"distribute balances leaves" ~count:300
    (QCheck.pair leaf_arb leaf_arb) (fun (l, r) ->
      (* Shift r's keys above l's to keep ordering. *)
      let offset = 2000 in
      let r = { r with Node_desc.keys = Array.map (fun k -> k + offset) r.Node_desc.keys } in
      let l', r', sep = Node_desc.distribute_pair ~sep:0 l r in
      let keys d = Array.to_list d.Node_desc.keys in
      List.sort compare (keys l' @ keys r') = List.sort compare (keys l @ keys r)
      && abs (Array.length l'.Node_desc.keys - Array.length r'.Node_desc.keys) <= 1
      && sep = l'.Node_desc.keys.(Array.length l'.Node_desc.keys - 1) + 1
         || sep = r'.Node_desc.keys.(0))

let prop_leaf_insert_remove_roundtrip =
  QCheck.Test.make ~name:"leaf insert/remove roundtrip" ~count:300
    (QCheck.pair leaf_arb (QCheck.int_range 1001 2000)) (fun (d, k) ->
      let d' = Node_desc.leaf_remove (Node_desc.leaf_insert d k) k in
      d'.Node_desc.keys = d.Node_desc.keys)

let prop_absorb_preserves_children =
  QCheck.Test.make ~name:"absorb preserves children and keys" ~count:300
    (QCheck.pair (QCheck.int_range 0 3) QCheck.unit) (fun (ix, ()) ->
      let parent =
        {
          Node_desc.weight = 1;
          leaf = false;
          keys = [| 100; 200; 300 |];
          ptrs = [| 1; 2; 3; 4 |];
        }
      in
      let child =
        {
          Node_desc.weight = 0;
          leaf = false;
          keys = [| 10; 20 |];
          ptrs = [| 11; 12; 13 |];
        }
      in
      let comb = Node_desc.absorb ~parent ~ix ~child in
      Array.length comb.Node_desc.ptrs = 6
      && Array.length comb.Node_desc.keys = 5
      && comb.Node_desc.weight = 1
      && Array.to_list comb.Node_desc.ptrs
         = (let l = [ 1; 2; 3; 4 ] in
            List.concat
              [
                List.filteri (fun i _ -> i < ix) l;
                [ 11; 12; 13 ];
                List.filteri (fun i _ -> i > ix) l;
              ]))

(* Randomized sequential oracle against stdlib Set, at both parameter
   choices, exercising deep splits and merges. *)
let test_deep_oracle (module T : Mt_list.Set_intf.SET) () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let t = T.create ctx in
      let g = Prng.create ~seed:99 in
      let module O = Set.Make (Int) in
      let oracle = ref O.empty in
      for _ = 1 to 4000 do
        let k = Prng.int g 1000 in
        match Prng.int g 5 with
        | 0 | 1 | 2 ->
            check_bool "ins" (not (O.mem k !oracle)) (T.insert ctx t k);
            oracle := O.add k !oracle
        | 3 ->
            check_bool "del" (O.mem k !oracle) (T.delete ctx t k);
            oracle := O.remove k !oracle
        | _ -> check_bool "mem" (O.mem k !oracle) (T.contains ctx t k)
      done;
      check_bool "final" true (T.to_list_unsafe (Ctx.machine ctx) t = O.elements !oracle))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mt_abtree"
    [
      ("hoh(2,4) battery", Hoh_battery.cases);
      ("llx(2,4) battery", Llx_battery.cases);
      ("hoh(4,8) battery", Hoh_mid_battery.cases);
      ("llx(4,8) battery", Llx_mid_battery.cases);
      ( "invariants",
        [
          Alcotest.test_case "hoh sequential" `Quick test_invariants_sequential_hoh;
          Alcotest.test_case "llx sequential" `Quick test_invariants_sequential_llx;
          Alcotest.test_case "grow then shrink" `Quick test_invariants_grow_then_shrink;
          Alcotest.test_case "hoh concurrent" `Quick test_concurrent_invariants_hoh;
          Alcotest.test_case "llx concurrent" `Quick test_concurrent_invariants_llx;
          Alcotest.test_case "hoh(4,8) concurrent" `Quick
            test_concurrent_invariants_hoh_mid;
          Alcotest.test_case "llx(4,8) concurrent" `Quick
            test_concurrent_invariants_llx_mid;
          Alcotest.test_case "deep oracle hoh" `Slow (test_deep_oracle (module Hoh_mid));
          Alcotest.test_case "deep oracle llx" `Slow (test_deep_oracle (module Llx_mid));
        ] );
      ( "range",
        [
          Alcotest.test_case "basic" `Quick test_tree_range_basic;
          Alcotest.test_case "overflow" `Quick test_tree_range_overflow;
          Alcotest.test_case "snapshot consistency" `Quick
            test_tree_range_snapshot_consistency;
        ] );
      ( "node_desc",
        qsuite
          [
            prop_split_preserves_keys;
            prop_merge_then_split_roundtrip;
            prop_leaf_insert_remove_roundtrip;
            prop_absorb_preserves_children;
          ] );
    ]
