(* Unit and integration tests for the open-loop service layer (lib/serve):
   queue FIFO/capacity behaviour, arrival-process statistics and
   determinism, request conservation (generated = completed + dropped +
   still-queued) across admission/queue configurations, per-queue FIFO
   dequeue order, same-seed byte-identical replay (with tracing on or
   off), and the two macroscopic sanity properties of an open-loop system:
   at low load end-to-end latency is dominated by service time, and past
   saturation goodput plateaus while requests get dropped. Plus the
   heat-rate admission shedding introduced with the contention layer
   (DESIGN §14). *)

open Mt_core
module Serve = Mt_serve.Server
module Arrival = Mt_serve.Arrival
module Queue = Mt_serve.Queue
module Hist = Mt_obs.Hist
module Json = Mt_obs.Json
module Obs = Mt_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Queue. *)

let test_queue_fifo () =
  let q = Queue.create ~id:3 ~capacity:4 in
  check_int "id" 3 (Queue.id q);
  check_int "capacity" 4 (Queue.capacity q);
  check_bool "empty" true (Queue.is_empty q);
  List.iter
    (fun v -> check_bool "enqueue" true (Queue.try_enqueue q v))
    [ 10; 11; 12; 13 ];
  check_bool "full enqueue rejected" false (Queue.try_enqueue q 14);
  check_int "rejects" 1 (Queue.rejects q);
  check_int "length" 4 (Queue.length q);
  check_int "max_depth" 4 (Queue.max_depth q);
  (* FIFO, including across wraparound. *)
  check_bool "deq 10" true (Queue.dequeue q = Some 10);
  check_bool "deq 11" true (Queue.dequeue q = Some 11);
  check_bool "refill" true (Queue.try_enqueue q 14);
  List.iter
    (fun v -> check_bool "order" true (Queue.dequeue q = Some v))
    [ 12; 13; 14 ];
  check_bool "drained" true (Queue.dequeue q = None);
  check_int "enqueues" 5 (Queue.enqueues q);
  check_int "max_depth sticks" 4 (Queue.max_depth q)

(* ------------------------------------------------------------------ *)
(* Arrival processes. *)

let times n arr = List.init n (fun _ -> Arrival.next arr)

let test_arrival_fixed () =
  let arr = Arrival.create ~process:Arrival.Fixed ~rate_per_kcycle:10.0 ~seed:1 in
  check_bool "evenly spaced" true
    (times 5 arr = [ 100; 200; 300; 400; 500 ])

let test_arrival_poisson () =
  let mk seed =
    Arrival.create ~process:Arrival.Poisson ~rate_per_kcycle:5.0 ~seed
  in
  let ts = times 10_000 (mk 42) in
  (* Monotone, and the empirical rate matches the offered rate. *)
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  check_bool "monotone" true (mono ts);
  let last = List.nth ts 9_999 in
  let mean_gap = float_of_int last /. 10_000.0 in
  check_bool "mean gap ~ 200"
    (abs_float (mean_gap -. 200.0) < 20.0)
    true;
  check_bool "same seed replays" true (ts = times 10_000 (mk 42));
  check_bool "different seed differs" false (ts = times 10_000 (mk 43))

let test_arrival_bursty () =
  let arr =
    Arrival.create
      ~process:(Arrival.Bursty { on_cycles = 1000; off_cycles = 3000 })
      ~rate_per_kcycle:4.0 ~seed:7
  in
  let ts = times 5_000 arr in
  (* Arrivals land only inside the on-window of each 4000-cycle period. *)
  List.iter
    (fun t ->
      if t mod 4000 >= 1000 then
        Alcotest.failf "arrival at %d is inside the off window" t)
    ts;
  (* The long-run average still matches the offered rate (within 15%). *)
  let last = List.nth ts 4_999 in
  let rate = 5_000.0 /. float_of_int last *. 1000.0 in
  check_bool "average rate ~ 4/kcycle" true (abs_float (rate -. 4.0) < 0.6)

(* ------------------------------------------------------------------ *)
(* Service runs against a synthetic fixed-cost backend: service time is
   exactly [work] cycles, so capacity = workers / work and every latency
   number is predictable. *)

let synthetic ?(work = 100) ?obs c =
  Serve.run ?obs ~name:"synthetic"
    ~setup:(fun _ctx -> ())
    ~op:(fun ctx () _payload -> Ctx.work ctx work)
    c

let conserved (r : Serve.result) =
  check_int "conservation" r.generated (r.completed + r.dropped + r.still_queued);
  check_int "drained" 0 r.still_queued

let test_conservation_drop () =
  (* Overloaded (capacity ~20/kcycle at work=100, offered 60), tiny queue:
     drops must appear and the accounting must balance. *)
  let c =
    Serve.config ~workers:2 ~rate_per_kcycle:60.0 ~queue_capacity:8
      ~horizon:30_000 ()
  in
  let r = synthetic c in
  conserved r;
  check_bool "generated some load" true (r.generated > 1_000);
  check_bool "dropped under overload" true (r.dropped > 0);
  check_bool "rejects >= drops" true (r.rejects >= r.dropped)

let test_conservation_retry () =
  let c =
    Serve.config ~workers:2 ~rate_per_kcycle:60.0 ~queue_capacity:8
      ~admission:(Serve.Retry { max_retries = 3; backoff_base = 32; backoff_cap = 256 })
      ~horizon:30_000 ()
  in
  let r = synthetic c in
  conserved r;
  check_bool "dropped even with retries" true (r.dropped > 0);
  (* Retried attempts bounce more often than requests are dropped. *)
  check_bool "retries add rejects" true (r.rejects > r.dropped)

let test_conservation_steal_and_batch () =
  List.iter
    (fun steal ->
      let c =
        Serve.config ~workers:4 ~rate_per_kcycle:50.0 ~queue_capacity:16
          ~queues:(Serve.Per_worker { steal }) ~batch:4 ~horizon:30_000 ()
      in
      let r = synthetic c in
      conserved r;
      check_bool "completed some" true (r.completed > 0);
      if not steal then check_int "no steals without stealing" 0 r.steals)
    [ false; true ]

let test_fifo_order () =
  (* Per-worker queues without stealing: each queue's dequeues must come
     out in arrival order (ids assigned round-robin, so ascending per
     queue). *)
  let c =
    Serve.config ~workers:2 ~rate_per_kcycle:20.0 ~queue_capacity:32
      ~queues:(Serve.Per_worker { steal = false }) ~horizon:20_000
      ~record_dequeues:true ()
  in
  let r = synthetic c in
  let last = Hashtbl.create 4 in
  List.iter
    (fun (qid, id) ->
      (match Hashtbl.find_opt last qid with
      | Some prev ->
          if id <= prev then
            Alcotest.failf "queue %d dequeued id %d after %d" qid id prev
      | None -> ());
      Hashtbl.replace last qid id;
      check_int "round-robin assignment" qid (id mod 2))
    r.dequeue_log;
  check_int "log covers completions" r.completed (List.length r.dequeue_log);
  (* Shared queue: dequeue order is globally FIFO. *)
  let c = Serve.config ~workers:3 ~rate_per_kcycle:20.0 ~horizon:20_000
      ~record_dequeues:true () in
  let r = synthetic c in
  let ids = List.map snd r.dequeue_log in
  check_bool "globally FIFO" true (List.sort compare ids = ids)

let test_same_seed_replay () =
  let c =
    Serve.config ~workers:3 ~rate_per_kcycle:40.0 ~queue_capacity:16 ~batch:2
      ~horizon:25_000 ~seed:5 ()
  in
  let j r = Json.to_string (Serve.result_to_json r) in
  let r1 = synthetic c and r2 = synthetic c in
  check_string "same seed, byte-identical result" (j r1) (j r2);
  (* Tracing must not perturb anything the result reports. *)
  let obs = Obs.create ~num_cores:4 () in
  let r3 = synthetic ~obs c in
  check_string "tracing changes nothing" (j r1) (j r3);
  (* A different seed gives a genuinely different run. *)
  let c' = { c with Serve.seed = 6 } in
  check_bool "different seed differs" false (j r1 = j (synthetic c'))

let test_events_match_counters () =
  let c =
    Serve.config ~workers:2 ~rate_per_kcycle:60.0 ~queue_capacity:8 ~batch:2
      ~horizon:15_000 ()
  in
  let obs = Obs.create ~num_cores:3 () in
  let r = synthetic ~obs c in
  let enq = ref 0 and deq = ref 0 and drop = ref 0 and batches = ref 0 in
  List.iter
    (fun (e : Obs.event) ->
      match e.kind with
      | Obs.Req_enqueue _ -> incr enq
      | Obs.Req_dequeue _ -> incr deq
      | Obs.Req_drop _ -> incr drop
      | Obs.Batch _ -> incr batches
      | _ -> ())
    (Obs.events obs);
  check_int "enqueue events" (r.generated - r.dropped) !enq;
  check_int "dequeue events" r.completed !deq;
  check_int "drop events" r.dropped !drop;
  check_bool "batch events" true (!batches > 0);
  check_int "nothing lost to ring wraparound" 0 (Obs.dropped obs)

let test_low_load_latency () =
  (* At 10% of capacity the queue is almost always empty: end-to-end p50
     is the service time plus dispatch overhead, not queueing. *)
  let c =
    Serve.config ~workers:2 ~rate_per_kcycle:2.0 ~horizon:100_000 ()
  in
  let r = synthetic c in
  check_int "no drops at low load" 0 r.dropped;
  let s50 = Hist.percentile r.service 50.0 in
  let e50 = Hist.percentile r.e2e 50.0 in
  check_bool "service p50 ~ work cycles" true (s50 >= 100 && s50 <= 115);
  check_bool "e2e p50 dominated by service" true (e50 < 2 * s50);
  check_bool "median wait is tiny" true (Hist.percentile r.queue_wait 50.0 < s50)

let test_overload_saturation () =
  (* Past the knee: goodput plateaus (2x vs 4x offered changes goodput by
     <15%), drops appear, and the end-to-end tail explodes relative to a
     low-load run. *)
  let run rate =
    synthetic
      (Serve.config ~workers:2 ~rate_per_kcycle:rate ~queue_capacity:32
         ~horizon:60_000 ())
  in
  let low = run 4.0 and over1 = run 40.0 and over2 = run 80.0 in
  check_int "low load drops nothing" 0 low.dropped;
  check_bool "overload drops" true (over1.dropped > 0 && over2.dropped > 0);
  check_bool "goodput grew to saturation" true (over1.goodput > 2.0 *. low.goodput);
  let plateau =
    abs_float (over2.goodput -. over1.goodput) /. over1.goodput
  in
  check_bool "goodput plateaus past the knee" true (plateau < 0.15);
  let p99 r = Hist.percentile r.Serve.e2e 99.0 in
  check_bool "tail explodes past the knee" true (p99 over1 > 5 * p99 low);
  check_bool "drop rate grows with offered load" true
    (over2.drop_rate > over1.drop_rate)

let test_batching_amortizes_dispatch () =
  (* With a large per-dequeue dispatch cost, batching must lift goodput
     under overload (that is the point of batching). *)
  let run batch =
    synthetic ~work:50
      (Serve.config ~workers:2 ~rate_per_kcycle:40.0 ~queue_capacity:64 ~batch
         ~dispatch_cycles:100 ~horizon:60_000 ())
  in
  let b1 = run 1 and b8 = run 8 in
  check_bool "batching lifts goodput" true (b8.goodput > b1.goodput *. 1.2);
  check_bool "batches actually fill" true (Hist.mean b8.batch_fill > 2.0)

(* ------------------------------------------------------------------ *)
(* Integration: a real structure as the backend. *)

let test_real_backend () =
  let c =
    Serve.config ~workers:2 ~rate_per_kcycle:4.0 ~horizon:40_000
      ~queues:(Serve.Per_worker { steal = true }) ()
  in
  let r = Serve.run_set (module Mt_list.Hoh_list) ~key_range:128 c in
  conserved r;
  check_string "backend name" "hoh-list" r.backend;
  check_bool "completed requests" true (r.completed > 50);
  check_bool "latency recorded" true (Hist.count r.e2e = r.completed)

(* Heat-rate admission shedding: a hot workload (two workers ping-pong
   one shared line, so inbound invalidations accrue heat every sample
   window) against an absurdly low heat bound must shed arrivals at
   admission; the accounting still balances, sheds are a subset of
   drops, and switching shedding off restores shed_drops = 0. *)
let test_shed () =
  let run shed =
    let c =
      Serve.config ~workers:2 ~rate_per_kcycle:30.0 ~queue_capacity:64
        ~horizon:30_000 ?shed ()
    in
    Serve.run ~name:"hot-synthetic"
      ~setup:(fun ctx -> Ctx.alloc ~label:"shed-hot" ctx ~words:1)
      ~op:(fun ctx addr payload ->
        Ctx.write ctx addr payload;
        Ctx.work ctx 50)
      c
  in
  let r =
    run (Some { Serve.heat_per_kcycle = 0.001; sample_cycles = 1_000 })
  in
  conserved r;
  check_bool "shed fired" true (r.shed_drops > 0);
  check_bool "sheds are drops" true (r.shed_drops <= r.dropped);
  let r2 =
    run (Some { Serve.heat_per_kcycle = 0.001; sample_cycles = 1_000 })
  in
  check_bool "shedding deterministic" true (r = r2);
  let quiet = run None in
  conserved quiet;
  check_int "no shed when off" 0 quiet.shed_drops

let () =
  Alcotest.run "serve"
    [
      ( "queue",
        [ Alcotest.test_case "fifo, capacity, counters" `Quick test_queue_fifo ] );
      ( "arrival",
        [
          Alcotest.test_case "fixed spacing" `Quick test_arrival_fixed;
          Alcotest.test_case "poisson rate + determinism" `Quick test_arrival_poisson;
          Alcotest.test_case "bursty windows" `Quick test_arrival_bursty;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "drop admission" `Quick test_conservation_drop;
          Alcotest.test_case "retry admission" `Quick test_conservation_retry;
          Alcotest.test_case "per-worker + steal + batch" `Quick
            test_conservation_steal_and_batch;
        ] );
      ( "ordering",
        [ Alcotest.test_case "per-queue FIFO dequeues" `Quick test_fifo_order ] );
      ( "determinism",
        [
          Alcotest.test_case "same-seed replay, tracing-invariant" `Quick
            test_same_seed_replay;
          Alcotest.test_case "events match counters" `Quick
            test_events_match_counters;
        ] );
      ( "latency",
        [
          Alcotest.test_case "low load: e2e ~ service" `Quick test_low_load_latency;
          Alcotest.test_case "overload: plateau + drops + tail" `Quick
            test_overload_saturation;
          Alcotest.test_case "batching amortizes dispatch" `Quick
            test_batching_amortizes_dispatch;
        ] );
      ( "integration",
        [ Alcotest.test_case "hoh-list backend" `Quick test_real_backend ] );
      ( "shed",
        [ Alcotest.test_case "heat-rate admission shedding" `Quick test_shed ] );
    ]
