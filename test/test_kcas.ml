(* Tests for the HFP multi-word CAS and its tag-accelerated variants. *)

open Mt_sim
open Mt_core
module Kcas = Mt_kcas.Kcas

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine ?(cores = 8) () = Machine.create (Config.default ~num_cores:cores ())

let cells ctx n v0 =
  let base = Ctx.alloc ctx ~words:n in
  for i = 0 to n - 1 do
    Kcas.init ctx (base + i) v0
  done;
  base

let test_basic_success_failure kcas () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let base = cells ctx 3 10 in
      let up i e d = { Kcas.addr = base + i; expected = e; desired = d } in
      check_bool "3-cas succeeds" true (kcas ctx [ up 0 10 11; up 1 10 12; up 2 10 13 ]);
      check_int "cell0" 11 (Kcas.get ctx base);
      check_int "cell1" 12 (Kcas.get ctx (base + 1));
      check_int "cell2" 13 (Kcas.get ctx (base + 2));
      check_bool "stale expected fails" false
        (kcas ctx [ up 0 11 99; up 1 10 99 ]);
      check_int "cell0 untouched" 11 (Kcas.get ctx base);
      check_int "cell1 untouched" 12 (Kcas.get ctx (base + 1)))

let test_value_bounds () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let base = cells ctx 1 0 in
      Alcotest.check_raises "negative rejected"
        (Invalid_argument "Kcas: value out of range") (fun () ->
          ignore
            (Kcas.kcas ctx [ { Kcas.addr = base; expected = 0; desired = -1 } ])))

let test_wide_kcas () =
  (* An 8-word kcas straddling several cache lines. *)
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let base = cells ctx 8 3 in
      let ups = List.init 8 (fun i -> { Kcas.addr = base + i; expected = 3; desired = i }) in
      check_bool "8-cas" true (Kcas.kcas ctx ups);
      for i = 0 to 7 do
        check_int "slot" i (Kcas.get ctx (base + i))
      done)

let test_duplicate_addresses () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let base = cells ctx 1 0 in
      Alcotest.check_raises "duplicates rejected"
        (Invalid_argument "Kcas.kcas: duplicate addresses") (fun () ->
          ignore
            (Kcas.kcas ctx
               [
                 { Kcas.addr = base; expected = 0; desired = 1 };
                 { Kcas.addr = base; expected = 0; desired = 2 };
               ])))

(* Concurrent 2-word transfers between counters: the sum is conserved and
   every cell stays within the transferred bounds. *)
let concurrent_transfers kcas () =
  let threads = 6 in
  let n = 8 in
  let m = machine ~cores:threads () in
  let base = Harness.exec1 m (fun ctx -> cells ctx n 100) in
  let (_ : int) =
    Harness.exec m ~seed:3 ~threads (fun ctx ->
        let g = Ctx.prng ctx in
        for _ = 1 to 150 do
          let i = Prng.int g n in
          let j = Prng.int g n in
          if i <> j then begin
            let vi = Kcas.get ctx (base + i) in
            let vj = Kcas.get ctx (base + j) in
            if vi > 0 then
              ignore
                (kcas ctx
                   [
                     { Kcas.addr = base + i; expected = vi; desired = vi - 1 };
                     { Kcas.addr = base + j; expected = vj; desired = vj + 1 };
                   ])
          end
        done)
  in
  let total = ref 0 in
  Harness.exec1 m (fun ctx ->
      for i = 0 to n - 1 do
        total := !total + Kcas.get ctx (base + i)
      done);
  check_int "sum conserved" (100 * n) !total

(* All threads fight over the same 4 words with the same expected values:
   exactly one round can win each generation. *)
let test_contended_generations kcas () =
  let threads = 8 in
  let m = machine ~cores:threads () in
  let base = Harness.exec1 m (fun ctx -> cells ctx 4 0) in
  let wins = Array.make threads 0 in
  let (_ : int) =
    Harness.exec m ~seed:8 ~threads (fun ctx ->
        for g = 0 to 19 do
          let ups =
            List.init 4 (fun i ->
                { Kcas.addr = base + i; expected = g; desired = g + 1 })
          in
          if kcas ctx ups then wins.(Ctx.core ctx) <- wins.(Ctx.core ctx) + 1;
          (* Wait for the generation to advance before the next round. *)
          while Kcas.get ctx base < g + 1 do
            Ctx.work ctx 10
          done
        done)
  in
  check_int "one winner per generation" 20 (Array.fold_left ( + ) 0 wins);
  Harness.exec1 m (fun ctx ->
      check_int "final generation" 20 (Kcas.get ctx base))

let test_snapshot_consistency () =
  (* Writers move (a,b) together via kcas keeping a = b; snapshots must
     never observe a <> b. *)
  let threads = 4 in
  let m = machine ~cores:threads () in
  let base = Harness.exec1 m (fun ctx -> cells ctx 2 0) in
  let torn = ref 0 in
  let (_ : int) =
    Harness.exec m ~seed:11 ~threads (fun ctx ->
        if Ctx.core ctx < 2 then
          for _ = 1 to 100 do
            let a = Kcas.get ctx base in
            let b = Kcas.get ctx (base + 1) in
            if a = b then
              ignore
                (Kcas.kcas ctx
                   [
                     { Kcas.addr = base; expected = a; desired = a + 1 };
                     { Kcas.addr = base + 1; expected = b; desired = b + 1 };
                   ])
          done
        else
          for _ = 1 to 100 do
            match Kcas.snapshot ctx [ base; base + 1 ] with
            | Some [ a; b ] -> if a <> b then incr torn
            | Some _ -> Alcotest.fail "arity"
            | None -> Alcotest.fail "snapshot overflow"
          done)
  in
  check_int "no torn snapshots" 0 !torn

let test_snapshot_overflow () =
  let cfg = { (Config.default ~num_cores:1 ()) with max_tags = 4 } in
  let m = Machine.create cfg in
  Harness.exec1 m (fun ctx ->
      let base = cells ctx 8 0 in
      match Kcas.snapshot ctx (List.init 8 (fun i -> base + i)) with
      | None -> ()
      | Some _ -> Alcotest.fail "expected None on overflow")

let count_kind obs pred =
  List.length
    (List.filter (fun (e : Mt_obs.Obs.event) -> pred e.kind) (Mt_obs.Obs.events obs))

let test_snapshot_events () =
  (* Every snapshot call announces each attempt through Obs, and each
     failed validation is reported before the retry — so, for any run,
     attempts = calls + invalidations. *)
  let open Mt_obs in
  let is_attempt = function Obs.Snap_attempt _ -> true | _ -> false in
  let is_invalid = function Obs.Snap_invalid _ -> true | _ -> false in
  (* Quiescent: exactly one attempt over 3 cells and no invalidation. *)
  let obs = Obs.create ~num_cores:1 () in
  let m = Machine.create ~obs (Config.default ~num_cores:1 ()) in
  Harness.exec1 m (fun ctx ->
      let base = cells ctx 3 7 in
      match Kcas.snapshot ctx [ base; base + 1; base + 2 ] with
      | Some [ 7; 7; 7 ] -> ()
      | _ -> Alcotest.fail "quiescent snapshot wrong");
  check_int "one attempt, cells=3" 1
    (count_kind obs (function Obs.Snap_attempt { cells } -> cells = 3 | _ -> false));
  check_int "no invalidation" 0 (count_kind obs is_invalid);
  (* Contended: writers keep flipping (a,b); snapshotters retry. *)
  let threads = 4 in
  let obs = Obs.create ~num_cores:threads () in
  let m = Machine.create ~obs (Config.default ~num_cores:threads ()) in
  let base = Harness.exec1 m (fun ctx -> cells ctx 2 0) in
  let calls = ref 0 in
  let (_ : int) =
    Harness.exec m ~seed:11 ~threads (fun ctx ->
        if Ctx.core ctx < 2 then
          for _ = 1 to 100 do
            let a = Kcas.get ctx base in
            let b = Kcas.get ctx (base + 1) in
            if a = b then
              ignore
                (Kcas.kcas ctx
                   [
                     { Kcas.addr = base; expected = a; desired = a + 1 };
                     { Kcas.addr = base + 1; expected = b; desired = b + 1 };
                   ])
          done
        else
          for _ = 1 to 100 do
            (match Kcas.snapshot ctx [ base; base + 1 ] with
            | Some [ a; b ] when a = b -> ()
            | _ -> Alcotest.fail "torn or overflowed snapshot");
            incr calls
          done)
  in
  let attempts = count_kind obs is_attempt in
  let invalids = count_kind obs is_invalid in
  check_int "attempts = calls + invalidations" (!calls + invalids) attempts;
  check_bool "contention produced validate-fail events" true (invalids > 0)

let test_get_helps () =
  (* A reader encountering a descriptor must complete it and return a
     consistent value. Orchestrated: writer parks mid-operation is not
     possible (ops are atomic per event), so we just hammer reads during
     heavy kcas traffic and check monotonic generations. *)
  let threads = 4 in
  let m = machine ~cores:threads () in
  let base = Harness.exec1 m (fun ctx -> cells ctx 2 0) in
  let non_monotonic = ref 0 in
  let (_ : int) =
    Harness.exec m ~seed:13 ~threads (fun ctx ->
        if Ctx.core ctx < 3 then
          for _ = 1 to 100 do
            let a = Kcas.get ctx base in
            ignore
              (Kcas.kcas ctx
                 [
                   { Kcas.addr = base; expected = a; desired = a + 1 };
                   { Kcas.addr = base + 1; expected = a; desired = a + 1 };
                 ])
          done
        else begin
          let last = ref 0 in
          for _ = 1 to 200 do
            let v = Kcas.get ctx base in
            if v < !last then incr non_monotonic;
            last := v
          done
        end)
  in
  check_int "reads monotonic" 0 !non_monotonic

(* Multi-seed schedule exploration: concurrent 2-word transfers must
   conserve the total under every explorer interleaving (for both kcas
   variants), and each seed must replay to the identical final cells. *)
let multi_seed_transfers kcas () =
  let threads = 4 and n = 6 in
  let run seed =
    let m = machine ~cores:threads () in
    let base = Harness.exec1 m (fun ctx -> cells ctx n 100) in
    let policy = Runtime.random_policy ~seed () in
    let (_ : int) =
      Harness.exec m ~seed ~policy ~threads (fun ctx ->
          let g = Ctx.prng ctx in
          for _ = 1 to 60 do
            let i = Prng.int g n in
            let j = Prng.int g n in
            if i <> j then begin
              let vi = Kcas.get ctx (base + i) in
              let vj = Kcas.get ctx (base + j) in
              if vi > 0 then
                ignore
                  (kcas ctx
                     [
                       { Kcas.addr = base + i; expected = vi; desired = vi - 1 };
                       { Kcas.addr = base + j; expected = vj; desired = vj + 1 };
                     ])
            end
          done)
    in
    Harness.exec1 m (fun ctx -> List.init n (fun i -> Kcas.get ctx (base + i)))
  in
  for seed = 1 to 10 do
    let final = run seed in
    check_int
      (Printf.sprintf "seed %d: sum conserved" seed)
      (100 * n)
      (List.fold_left ( + ) 0 final);
    check_bool
      (Printf.sprintf "seed %d: replay gives identical final state" seed)
      true
      (run seed = final)
  done

let suite kcas name =
  [
    Alcotest.test_case (name ^ " basic") `Quick (test_basic_success_failure kcas);
    Alcotest.test_case (name ^ " transfers") `Quick (concurrent_transfers kcas);
    Alcotest.test_case (name ^ " generations") `Quick (test_contended_generations kcas);
  ]

let () =
  Alcotest.run "mt_kcas"
    [
      ( "kcas",
        suite Kcas.kcas "plain"
        @ [
            Alcotest.test_case "duplicates" `Quick test_duplicate_addresses;
            Alcotest.test_case "value bounds" `Quick test_value_bounds;
            Alcotest.test_case "wide kcas" `Quick test_wide_kcas;
          ] );
      ("kcas-tagged", suite Kcas.kcas_tagged "tagged");
      ( "snapshot",
        [
          Alcotest.test_case "consistency" `Quick test_snapshot_consistency;
          Alcotest.test_case "overflow" `Quick test_snapshot_overflow;
          Alcotest.test_case "obs events" `Quick test_snapshot_events;
          Alcotest.test_case "reads help" `Quick test_get_helps;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "plain transfers under 10 seeds" `Quick
            (multi_seed_transfers Kcas.kcas);
          Alcotest.test_case "tagged transfers under 10 seeds" `Quick
            (multi_seed_transfers Kcas.kcas_tagged);
        ] );
    ]
