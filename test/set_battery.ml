(* Generic correctness battery applicable to any Set_intf.SET
   implementation (lists, trees, skip lists). Shared by all test
   executables in this directory. *)

open Mt_sim
open Mt_core

let check_bool = Alcotest.(check bool)

let machine ?(cores = 8) () = Machine.create (Config.default ~num_cores:cores ())

module Oracle = Set.Make (Int)

module Make (S : Mt_list.Set_intf.SET) = struct
  let test_empty () =
    let m = machine () in
    Harness.exec1 m (fun ctx ->
        let s = S.create ctx in
        check_bool "empty contains" false (S.contains ctx s 5);
        check_bool "empty delete" false (S.delete ctx s 5))

  let test_insert_delete_contains () =
    let m = machine () in
    Harness.exec1 m (fun ctx ->
        let s = S.create ctx in
        check_bool "insert new" true (S.insert ctx s 10);
        check_bool "insert dup" false (S.insert ctx s 10);
        check_bool "contains" true (S.contains ctx s 10);
        check_bool "contains absent" false (S.contains ctx s 11);
        check_bool "delete" true (S.delete ctx s 10);
        check_bool "delete again" false (S.delete ctx s 10);
        check_bool "gone" false (S.contains ctx s 10))

  let test_ordering () =
    let m = machine () in
    let s =
      Harness.exec1 m (fun ctx ->
          let s = S.create ctx in
          List.iter (fun k -> ignore (S.insert ctx s k)) [ 5; 1; 9; 3; 7; 2; 8; 4; 6; 0 ];
          ignore (S.delete ctx s 5);
          ignore (S.delete ctx s 0);
          s)
    in
    Alcotest.(check (list int))
      "sorted contents" [ 1; 2; 3; 4; 6; 7; 8; 9 ]
      (S.to_list_unsafe m s)

  (* Randomized single-thread run against the stdlib Set oracle: every
     operation's return value and the final contents must agree. *)
  let sequential_oracle ~ops ~range () =
    let m = machine () in
    Harness.exec1 m (fun ctx ->
        let s = S.create ctx in
        let g = Prng.create ~seed:2024 in
        let oracle = ref Oracle.empty in
        for _ = 1 to ops do
          let k = Prng.int g range in
          match Prng.int g 3 with
          | 0 ->
              let expected = not (Oracle.mem k !oracle) in
              check_bool "insert result" expected (S.insert ctx s k);
              oracle := Oracle.add k !oracle
          | 1 ->
              let expected = Oracle.mem k !oracle in
              check_bool "delete result" expected (S.delete ctx s k);
              oracle := Oracle.remove k !oracle
          | _ ->
              check_bool "contains result" (Oracle.mem k !oracle) (S.contains ctx s k)
        done;
        check_bool "final contents" true
          (S.to_list_unsafe (Ctx.machine ctx) s = Oracle.elements !oracle))

  let test_sequential_oracle () = sequential_oracle ~ops:2000 ~range:50 ()

  (* Concurrent accounting check. Because insert/delete return true exactly
     when they change membership, for every key the net count of successful
     inserts minus deletes must be 0 or 1 and equal final membership.
     Returns the machine and structure for variant-specific follow-ups. *)
  let concurrent_accounting ~threads ~range ~ops () =
    let m = machine ~cores:threads () in
    let s = Harness.exec1 m (fun ctx -> S.create ctx) in
    let ins = Array.make range 0 and del = Array.make range 0 in
    let (_ : int) =
      Harness.exec m ~seed:7 ~threads (fun ctx ->
          let g = Ctx.prng ctx in
          for _ = 1 to ops do
            let k = Prng.int g range in
            if Prng.bool g then begin
              if S.insert ctx s k then ins.(k) <- ins.(k) + 1
            end
            else if S.delete ctx s k then del.(k) <- del.(k) + 1
          done)
    in
    let final = S.to_list_unsafe m s in
    List.iter (fun k -> check_bool "final key in range" true (k >= 0 && k < range)) final;
    let sorted_unique l = List.sort_uniq compare l = l in
    check_bool "final sorted unique" true (sorted_unique final);
    for k = 0 to range - 1 do
      let net = ins.(k) - del.(k) in
      check_bool "net in {0,1}" true (net = 0 || net = 1);
      check_bool "membership matches net" true (List.mem k final = (net = 1))
    done;
    (m, s)

  let test_concurrent_small () =
    ignore (concurrent_accounting ~threads:4 ~range:16 ~ops:300 ())

  let test_concurrent_large () =
    ignore (concurrent_accounting ~threads:8 ~range:128 ~ops:400 ())

  let test_determinism () =
    let run () =
      let m = machine ~cores:4 () in
      let s = Harness.exec1 m (fun ctx -> S.create ctx) in
      let d =
        Harness.exec m ~seed:13 ~threads:4 (fun ctx ->
            let g = Ctx.prng ctx in
            for _ = 1 to 200 do
              let k = Prng.int g 32 in
              if Prng.bool g then ignore (S.insert ctx s k)
              else ignore (S.delete ctx s k)
            done)
      in
      (d, S.to_list_unsafe m s, (Machine.total_stats m).Stats.l1_misses)
    in
    check_bool "bit-identical reruns" true (run () = run ())

  (* qcheck model-based property: arbitrary op sequences over a small key
     space, every return value and the final contents cross-checked
     against Set.Make(Int). Complements [sequential_oracle] (one fixed
     seed) with shrinking counterexamples. *)
  let qcheck_model =
    QCheck.Test.make ~count:50 ~name:"qcheck model vs Set.Make(Int)"
      QCheck.(list (pair (int_bound 2) (int_bound 11)))
      (fun ops ->
        let m = machine () in
        Harness.exec1 m (fun ctx ->
            let s = S.create ctx in
            let oracle = ref Oracle.empty in
            let step (kind, k) =
              match kind with
              | 0 ->
                  let expected = not (Oracle.mem k !oracle) in
                  oracle := Oracle.add k !oracle;
                  S.insert ctx s k = expected
              | 1 ->
                  let expected = Oracle.mem k !oracle in
                  oracle := Oracle.remove k !oracle;
                  S.delete ctx s k = expected
              | _ -> S.contains ctx s k = Oracle.mem k !oracle
            in
            List.for_all step ops
            && S.to_list_unsafe (Ctx.machine ctx) s = Oracle.elements !oracle))

  let cases =
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "insert/delete/contains" `Quick test_insert_delete_contains;
      Alcotest.test_case "ordering" `Quick test_ordering;
      Alcotest.test_case "sequential oracle" `Quick test_sequential_oracle;
      Alcotest.test_case "concurrent 4x16" `Quick test_concurrent_small;
      Alcotest.test_case "concurrent 8x128" `Slow test_concurrent_large;
      Alcotest.test_case "determinism" `Quick test_determinism;
      QCheck_alcotest.to_alcotest qcheck_model;
    ]
end

(* ------------------------------------------------------------------ *)
(* Ranged structures: anything exposing point membership ops plus an
   atomic range query (the sharded store, its backends). The sequential
   model cross-checks every point return value AND every range result
   against Set.Make(Int) restricted to [lo, hi]. *)

module type RANGED = sig
  type t

  val name : string
  val key_range : int
  (** keys are drawn from [0, key_range) *)

  val create : Ctx.t -> t
  val insert : Ctx.t -> t -> int -> bool
  val delete : Ctx.t -> t -> int -> bool
  val contains : Ctx.t -> t -> int -> bool
  val range : Ctx.t -> t -> lo:int -> hi:int -> int list
end

module Make_ranged (R : RANGED) = struct
  let oracle_range oracle ~lo ~hi =
    Oracle.elements (Oracle.filter (fun k -> k >= lo && k <= hi) oracle)

  (* One op against both the structure and the oracle; false on divergence. *)
  let step ctx s oracle (kind, k, k2) =
    match kind with
    | 0 ->
        let expected = not (Oracle.mem k !oracle) in
        oracle := Oracle.add k !oracle;
        R.insert ctx s k = expected
    | 1 ->
        let expected = Oracle.mem k !oracle in
        oracle := Oracle.remove k !oracle;
        R.delete ctx s k = expected
    | 2 -> R.contains ctx s k = Oracle.mem k !oracle
    | _ ->
        let lo = min k k2 and hi = max k k2 in
        R.range ctx s ~lo ~hi = oracle_range !oracle ~lo ~hi

  let test_sequential_ranged () =
    let m = machine () in
    Harness.exec1 m (fun ctx ->
        let s = R.create ctx in
        let g = Prng.create ~seed:4243 in
        let oracle = ref Oracle.empty in
        for i = 1 to 800 do
          let kind = Prng.int g 4 in
          let k = Prng.int g R.key_range in
          let k2 = Prng.int g R.key_range in
          check_bool
            (Printf.sprintf "%s op %d (kind %d)" R.name i kind)
            true
            (step ctx s oracle (kind, k, k2))
        done)

  let qcheck_ranged =
    QCheck.Test.make ~count:50
      ~name:(R.name ^ " qcheck ranged model vs Set.Make(Int)")
      QCheck.(
        list
          (triple (int_bound 3)
             (int_bound (R.key_range - 1))
             (int_bound (R.key_range - 1))))
      (fun ops ->
        let m = machine () in
        Harness.exec1 m (fun ctx ->
            let s = R.create ctx in
            let oracle = ref Oracle.empty in
            List.for_all (step ctx s oracle) ops))

  let cases =
    [
      Alcotest.test_case (R.name ^ " sequential ranged oracle") `Quick
        test_sequential_ranged;
      QCheck_alcotest.to_alcotest qcheck_ranged;
    ]
end
