(* Allocation-budget gate (ISSUE 8): the simulator hot path is
   allocation-free per simulated memory access, so a contended hoh-list
   set operation — dozens of simulated accesses, tag ops and fiber
   suspensions — must fit a small fixed byte budget. The workload is
   deterministic and [Gc.allocated_bytes] counts exact allocation, so the
   gate is wall-clock-free and stable on shared CI runners.

   The steady-state budget pays for the op itself (locate's result tuple,
   simulated node allocations) and ~2 words per suspending stall (the
   effect continuation, ~110 of them per contended op) — about 2.2 kB/op
   measured. What it must NOT pay for: per-access closures or hash
   probes, boxed scheduler-queue entries, per-line list building in the
   tag units — each of those regressions costs several hundred bytes per
   op and trips the gate. Machine construction (~2.7 MB of flat arrays)
   happens once, outside the measured window. *)

open Mt_sim
open Mt_core
module L = Mt_list.Hoh_list

let threads = 4
let ops_per_thread = 500
let budget_bytes_per_op = 3000.0

let workload s ctx =
  let g = Ctx.prng ctx in
  for _ = 1 to ops_per_thread do
    let k = Prng.int g 64 in
    match Prng.int g 3 with
    | 0 -> ignore (L.insert ctx s k)
    | 1 -> ignore (L.delete ctx s k)
    | _ -> ignore (L.contains ctx s k)
  done

let () =
  let m = Machine.create (Config.default ~num_cores:threads ()) in
  let s = Harness.exec1 m (fun ctx -> L.create ctx) in
  Harness.exec1 m (fun ctx ->
      for k = 0 to 31 do
        ignore (L.insert ctx s (2 * k))
      done);
  (* Warmup run: pays one-time growth (simulated-memory chunks, tag-table
     sizing, code paths); the measured run is steady-state. *)
  ignore (Harness.exec m ~threads (workload s));
  let before = Gc.allocated_bytes () in
  ignore (Harness.exec m ~threads (workload s));
  let per_op =
    (Gc.allocated_bytes () -. before) /. float_of_int (threads * ops_per_thread)
  in
  Printf.printf "hoh-list allocation: %.1f bytes/op (budget %.0f)\n" per_op
    budget_bytes_per_op;
  if per_op > budget_bytes_per_op then begin
    Printf.eprintf
      "FAIL: %.1f bytes/op exceeds the %.0f-byte hot-path budget\n" per_op
      budget_bytes_per_op;
    exit 1
  end
