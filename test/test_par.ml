(* Tests for the domain pool (lib/par) and the cross-domain determinism
   contract: simulation points fanned out with Pool.map come back in input
   order with results byte-identical to a sequential run, exceptions
   propagate, and two full simulations can run concurrently on two domains
   without perturbing each other. *)

module Pool = Mt_par.Pool
module Spec = Mt_workload.Spec
module Driver = Mt_workload.Driver
module Json = Mt_obs.Json

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Pool.map as a plain map. *)

let test_map_identity_order () =
  let xs = List.init 100 (fun i -> i) in
  let expect = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expect
        (Pool.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 3; 8 ]

let test_map_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "single" [ 9 ] (Pool.map ~jobs:4 (fun x -> x * x) [ 3 ])

let test_map_invalid_jobs () =
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Pool.map: jobs must be positive") (fun () ->
      ignore (Pool.map ~jobs:0 (fun x -> x) [ 1 ]))

let test_map_exception_propagates () =
  match
    Pool.map ~jobs:2
      (fun x -> if x = 5 then failwith "point failed" else x)
      (List.init 10 (fun i -> i))
  with
  | exception Failure msg -> check_string "message preserved" "point failed" msg
  | _ -> Alcotest.fail "expected the point's exception to propagate"

let test_default_jobs_positive () =
  check_bool "default_jobs > 0" true (Pool.default_jobs () > 0)

(* ------------------------------------------------------------------ *)
(* Determinism across domains. *)

(* One full benchmark point rendered to its JSON bytes — the exact
   artifact bench/main.exe and memtag_bench commit to disk. *)
let point_bytes (threads, seed) =
  let spec =
    Spec.make ~key_range:64 ~insert_pct:35 ~delete_pct:35 ~threads
      ~warmup_cycles:1_000 ~measure_cycles:8_000 ~seed ()
  in
  Json.to_string
    (Driver.result_to_json (Driver.run_set (module Mt_list.Hoh_list) spec))

let test_parallel_bytes_identical () =
  let points = [ (1, 1); (2, 1); (4, 2); (4, 3) ] in
  let seq = List.map point_bytes points in
  let par = Pool.map ~jobs:2 point_bytes points in
  List.iter2 (check_string "sequential vs jobs=2 bytes") seq par

let test_two_domains_concurrent_runs () =
  (* Two complete simulations at once, each with its own machine and
     runtime: per-runtime scheduler state plus the domain-local current
     pointer must keep them fully independent. *)
  let run _i =
    let m = Mt_sim.Machine.create (Mt_sim.Config.default ~num_cores:4 ()) in
    let a = Mt_sim.Machine.alloc m ~words:1 in
    let d =
      Mt_core.Harness.exec m ~seed:5 ~threads:4 (fun ctx ->
          for _ = 1 to 200 do
            let v = Mt_core.Ctx.read ctx a in
            ignore (Mt_core.Ctx.cas ctx a ~expected:v ~desired:(v + 1))
          done)
    in
    (d, Mt_sim.Machine.peek m a)
  in
  match Pool.map ~jobs:2 run [ 0; 1 ] with
  | [ r1; r2 ] ->
      check_bool "identical across domains" true (r1 = r2);
      check_bool "matches a sequential run" true (run 2 = r1)
  | _ -> Alcotest.fail "wrong result arity"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mt_par"
    [
      ( "pool",
        [
          Alcotest.test_case "identity and order" `Quick test_map_identity_order;
          Alcotest.test_case "empty and single" `Quick test_map_empty_and_single;
          Alcotest.test_case "invalid jobs" `Quick test_map_invalid_jobs;
          Alcotest.test_case "exception propagates" `Quick
            test_map_exception_propagates;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel bytes identical" `Quick
            test_parallel_bytes_identical;
          Alcotest.test_case "two domains concurrent" `Quick
            test_two_domains_concurrent_runs;
        ] );
    ]
