(* Unit tests for the observability layer: histogram bucket/percentile
   math (including the empty and single-sample edge cases), ring-buffer
   wraparound ordering, well-formedness of the exported trace JSON, and
   the end-to-end determinism guarantee — two identically-seeded traced
   runs produce byte-identical Perfetto files, and tracing never changes
   the simulated metrics. *)

module Obs = Mt_obs.Obs
module Hist = Mt_obs.Hist
module Json = Mt_obs.Json
module Trace = Mt_obs.Trace
module Spec = Mt_workload.Spec
module Driver = Mt_workload.Driver

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Histogram bucket math. *)

let test_hist_buckets_exact_small () =
  (* Values below 16 get one bucket each, exactly. *)
  for v = 0 to 15 do
    check_int (Printf.sprintf "bucket_of %d" v) v (Hist.bucket_of v);
    check_int (Printf.sprintf "bucket_low %d" v) v (Hist.bucket_low v)
  done

let test_hist_buckets_monotone () =
  (* bucket_of is monotone and bucket_low is a lower inverse:
     bucket_low (bucket_of v) <= v, within 12.5%. *)
  let prev = ref (-1) in
  let v = ref 1 in
  while !v < 1 lsl 40 do
    let b = Hist.bucket_of !v in
    check_bool "monotone" true (b >= !prev);
    prev := b;
    let low = Hist.bucket_low b in
    check_bool "low <= v" true (low <= !v);
    check_bool "within 12.5%" true (float_of_int (!v - low) <= 0.125 *. float_of_int !v);
    v := !v + 1 + (!v / 3)
  done

let test_hist_empty () =
  let h = Hist.create () in
  check_int "count" 0 (Hist.count h);
  check_int "p50" 0 (Hist.percentile h 50.0);
  check_int "p99.9" 0 (Hist.percentile h 99.9);
  check_int "max" 0 (Hist.max_value h);
  check_bool "mean" true (Hist.mean h = 0.0)

let test_hist_single_sample () =
  let h = Hist.create () in
  Hist.add h 1234;
  (* With one sample every percentile is exactly that sample: the
     clamp-to-[min,max] rule makes quantisation invisible here. *)
  List.iter
    (fun p -> check_int (Printf.sprintf "p%g" p) 1234 (Hist.percentile h p))
    [ 0.0; 1.0; 50.0; 90.0; 99.0; 100.0 ];
  check_int "min" 1234 (Hist.min_value h);
  check_int "max" 1234 (Hist.max_value h)

let test_hist_percentiles () =
  let h = Hist.create () in
  for v = 1 to 1000 do
    Hist.add h v
  done;
  check_int "count" 1000 (Hist.count h);
  (* 12.5% relative quantisation error bound. *)
  let near p expect =
    let got = Hist.percentile h p in
    let err = abs (got - expect) in
    if float_of_int err > 0.125 *. float_of_int expect then
      Alcotest.failf "p%g: got %d, want ~%d" p got expect
  in
  near 50.0 500;
  near 90.0 900;
  near 99.0 990;
  check_int "p100 exact" 1000 (Hist.percentile h 100.0);
  check_int "min exact" 1 (Hist.min_value h)

let test_hist_p999 () =
  (* The 12.5% bucket-quantisation bound documented in hist.mli must hold
     for the p99.9 tail quantile too, and the "p999" summary field must
     report it. *)
  let h = Hist.create () in
  for v = 1 to 100_000 do
    Hist.add h v
  done;
  let got = Hist.percentile h 99.9 in
  let expect = 99_900 in
  if float_of_int (abs (got - expect)) > 0.125 *. float_of_int expect then
    Alcotest.failf "p99.9: got %d, want ~%d (12.5%% bound)" got expect;
  (match Json.member "p999" (Hist.to_json h) with
  | Some (Json.Int v) -> check_int "p999 field matches percentile" got v
  | _ -> Alcotest.fail "Hist.to_json lacks p999");
  (* A spike in the last 0.1%: p99.9 must land inside the spike (again
     within quantisation), p99 must not. *)
  let spike = Hist.create () in
  for _ = 1 to 9_990 do
    Hist.add spike 100
  done;
  for _ = 1 to 10 do
    Hist.add spike 50_000
  done;
  check_bool "p99 misses the spike" true (Hist.percentile spike 99.0 = 100);
  let p999 = Hist.percentile spike 99.9 in
  check_bool "p99.9 catches the spike" true
    (float_of_int (abs (p999 - 50_000)) <= 0.125 *. 50_000.0)

let test_hist_negative_clamps () =
  let h = Hist.create () in
  Hist.add h (-5);
  check_int "clamped to 0" 0 (Hist.percentile h 50.0);
  check_int "count" 1 (Hist.count h)

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  for v = 1 to 100 do Hist.add a v done;
  for v = 901 to 1000 do Hist.add b v done;
  Hist.merge ~into:a b;
  check_int "count" 200 (Hist.count a);
  check_int "min" 1 (Hist.min_value a);
  check_int "max" 1000 (Hist.max_value a)

(* ------------------------------------------------------------------ *)
(* Ring buffer semantics. *)

let test_ring_wraparound () =
  (* Capacity 8, 20 events on one core: the 12 oldest are dropped and the
     survivors keep emission order. *)
  let obs = Obs.create ~ring_capacity:8 ~num_cores:1 () in
  for i = 0 to 19 do
    Obs.emit obs ~core:0 ~time:(100 + i) (Obs.L1_miss { line = i })
  done;
  check_int "dropped" 12 (Obs.dropped obs);
  let evs = Obs.events obs in
  check_int "retained" 8 (List.length evs);
  List.iteri
    (fun i (e : Obs.event) ->
      check_int "seq order" (12 + i) e.Obs.seq;
      check_int "time order" (112 + i) e.Obs.time)
    evs

let test_ring_merge_across_cores () =
  (* Events interleaved across cores come back globally seq-sorted. *)
  let obs = Obs.create ~num_cores:3 () in
  for i = 0 to 29 do
    Obs.emit obs ~core:(i mod 3) ~time:i (Obs.Fiber_resume)
  done;
  let evs = Obs.events obs in
  check_int "all retained" 30 (List.length evs);
  List.iteri (fun i (e : Obs.event) -> check_int "global order" i e.Obs.seq) evs

let test_null_sink () =
  check_bool "null disabled" false (Obs.enabled Obs.null);
  (* emit on null is a no-op, not an error. *)
  Obs.emit Obs.null ~core:0 ~time:0 Obs.Fiber_resume;
  check_int "no events" 0 (List.length (Obs.events Obs.null))

let test_hot_lines () =
  let obs = Obs.create ~num_cores:2 () in
  Obs.label_lines obs ~line_lo:7 ~line_hi:7 "victim-node";
  for _ = 1 to 5 do
    Obs.emit obs ~core:0 ~time:0 (Obs.Inval_sent { line = 7; victim = 1 })
  done;
  Obs.emit obs ~core:0 ~time:0 (Obs.Inval_sent { line = 3; victim = 1 });
  match Obs.hot_lines ~top:2 obs with
  | { Obs.hl_line = 7; hl_invals = 5; hl_label = Some "victim-node"; _ } :: rest
    ->
      check_int "second line" 3
        (match rest with [ h ] -> h.Obs.hl_line | _ -> -1)
  | _ -> Alcotest.fail "hot line ranking wrong"

(* ------------------------------------------------------------------ *)
(* JSON round-trips and trace export well-formedness. *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Null; Json.Bool true; Json.Float 1.5 ]);
        ("c", Json.String "x\"y\n\\z");
      ]
  in
  let s = Json.to_string j in
  check_bool "parses back equal" true (Json.of_string s = j);
  check_string "stable bytes" s (Json.to_string (Json.of_string s))

(* Floats must round-trip exactly through the emitted text (shortest
   representation that parses back to the same double), otherwise
   re-emitting a parsed artifact would not be byte-identical. *)
let prop_json_float_roundtrip =
  QCheck.Test.make ~name:"json float emit/parse round-trip" ~count:1000
    QCheck.float (fun x ->
      QCheck.assume (Float.is_finite x);
      match Json.of_string (Json.to_string (Json.Float x)) with
      | Json.Float y -> Float.equal y x || (x = 0.0 && y = 0.0)
      | _ -> false)

let test_json_float_repr () =
  let s x = Json.to_string (Json.Float x) in
  check_string "short decimal stays short" "0.1" (s 0.1);
  check_string "integral float keeps a point" "3.0" (s 3.0);
  (* 0.1 +. 0.2 needs all 17 digits to round-trip. *)
  check_string "17 digits when required" "0.30000000000000004" (s (0.1 +. 0.2));
  check_string "non-finite maps to null" "null" (s Float.nan)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":1} x"; "nul"; "\"unterminated" ]

let traced_run seed =
  let obs = Obs.create ~num_cores:4 () in
  let spec =
    Spec.make ~key_range:64 ~insert_pct:35 ~delete_pct:35 ~threads:4
      ~warmup_cycles:2_000 ~measure_cycles:10_000 ~seed ()
  in
  let r = Driver.run_set ~obs (module Mt_list.Hoh_list) spec in
  (r, Trace.to_string ~num_cores:4 obs)

let test_trace_well_formed () =
  let _, s = traced_run 7 in
  let j = Json.of_string s in
  match Json.member "traceEvents" j with
  | Some (Json.List evs) ->
      check_bool "nonempty" true (List.length evs > 0);
      List.iter
        (fun ev ->
          check_bool "has ph" true (Json.member "ph" ev <> None);
          check_bool "has pid" true (Json.member "pid" ev <> None);
          (match Json.member "ph" ev with
          | Some (Json.String "M") -> ()
          | _ -> check_bool "has ts" true (Json.member "ts" ev <> None)))
        evs
  | _ -> Alcotest.fail "no traceEvents array"

let test_trace_deterministic () =
  let r1, s1 = traced_run 42 in
  let r2, s2 = traced_run 42 in
  check_string "byte-identical traces" s1 s2;
  check_int "same ops" r1.Driver.ops r2.Driver.ops

let test_tracing_does_not_perturb () =
  (* The whole zero-overhead-off story: a traced run and an untraced run
     of the same seed report identical simulated metrics. *)
  let spec =
    Spec.make ~key_range:64 ~insert_pct:35 ~delete_pct:35 ~threads:4
      ~warmup_cycles:2_000 ~measure_cycles:10_000 ~seed:42 ()
  in
  let traced =
    Driver.run_set
      ~obs:(Obs.create ~num_cores:4 ())
      (module Mt_list.Hoh_list)
      spec
  in
  let plain = Driver.run_set (module Mt_list.Hoh_list) spec in
  check_int "ops" plain.Driver.ops traced.Driver.ops;
  check_int "duration" plain.Driver.duration traced.Driver.duration;
  check_bool "throughput" true
    (plain.Driver.throughput = traced.Driver.throughput);
  check_int "validate failures" plain.Driver.validate_failures
    traced.Driver.validate_failures

let test_driver_json_schema () =
  let r, _ = traced_run 3 in
  let j = Json.of_string (Json.to_string (Driver.result_to_json r)) in
  List.iter
    (fun field -> check_bool field true (Json.member field j <> None))
    [
      "impl"; "workload"; "threads"; "seed"; "spec"; "ops"; "duration_cycles";
      "throughput_per_kcycle"; "l1_miss_rate"; "energy_per_op";
      "latency_cycles"; "aborts"; "counters";
    ];
  (* The spec object must be fully self-describing (replayable point). *)
  (match Json.member "spec" j with
  | Some spec ->
      List.iter
        (fun field -> check_bool ("spec." ^ field) true (Json.member field spec <> None))
        [
          "key_range"; "init_fill"; "insert_pct"; "delete_pct"; "threads";
          "warmup_cycles"; "measure_cycles"; "seed";
        ]
  | None -> Alcotest.fail "no spec");
  match Json.member "latency_cycles" j with
  | Some lat ->
      check_bool "latency count positive" true
        (match Json.member "count" lat with
        | Some (Json.Int n) -> n > 0
        | _ -> false);
      check_bool "latency has p999" true (Json.member "p999" lat <> None)
  | None -> Alcotest.fail "no latency_cycles"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "hist",
        [
          Alcotest.test_case "small buckets exact" `Quick test_hist_buckets_exact_small;
          Alcotest.test_case "buckets monotone, 12.5%" `Quick test_hist_buckets_monotone;
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single sample" `Quick test_hist_single_sample;
          Alcotest.test_case "percentiles 1..1000" `Quick test_hist_percentiles;
          Alcotest.test_case "p99.9 within 12.5%" `Quick test_hist_p999;
          Alcotest.test_case "negative clamps" `Quick test_hist_negative_clamps;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wraparound ordering" `Quick test_ring_wraparound;
          Alcotest.test_case "merge across cores" `Quick test_ring_merge_across_cores;
          Alcotest.test_case "null sink" `Quick test_null_sink;
          Alcotest.test_case "hot lines" `Quick test_hot_lines;
        ] );
      ( "trace",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "json float repr" `Quick test_json_float_repr;
          QCheck_alcotest.to_alcotest prop_json_float_roundtrip;
          Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "trace well-formed" `Quick test_trace_well_formed;
          Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
          Alcotest.test_case "tracing does not perturb" `Quick test_tracing_does_not_perturb;
          Alcotest.test_case "driver json schema" `Quick test_driver_json_schema;
        ] );
    ]
