(* Tests for the NOrec STMs (baseline and tagged): atomicity, isolation,
   opacity-style invariants, abort accounting, and the tagged variant's
   fallback under tag-set overflow. *)

open Mt_sim
open Mt_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine ?(cores = 8) ?cfg () =
  match cfg with Some c -> Machine.create c | None -> Machine.create (Config.default ~num_cores:cores ())

module Battery (S : sig
  include Mt_stm.Stm_intf.S

  (* Whether commit-time aborts are expected under the counter workload.
     The tagged variant detects conflicts at read time and repairs the
     read in place, so it can legitimately finish with zero aborts. *)
  val expect_aborts : bool
end) =
struct
  let test_read_write_roundtrip () =
    let m = machine () in
    Harness.exec1 m (fun ctx ->
        let stm = S.create ctx in
        let a = Ctx.alloc ctx ~words:4 in
        S.atomically ctx stm (fun tx ->
            S.write tx a 7;
            S.write tx (a + 1) 8);
        let x, y = S.atomically ctx stm (fun tx -> (S.read tx a, S.read tx (a + 1))) in
        check_int "x" 7 x;
        check_int "y" 8 y;
        check_int "committed twice" 2 (S.commits stm))

  let test_read_own_writes () =
    let m = machine () in
    Harness.exec1 m (fun ctx ->
        let stm = S.create ctx in
        let a = Ctx.alloc ctx ~words:1 in
        let v =
          S.atomically ctx stm (fun tx ->
              S.write tx a 41;
              S.read tx a + 1)
        in
        check_int "reads own write" 42 v)

  (* Classic bank test: concurrent transfers conserve the total. *)
  let test_bank_transfers () =
    let threads = 6 in
    let accounts = 10 in
    let m = machine ~cores:threads () in
    let stm, base =
      Harness.exec1 m (fun ctx ->
          let stm = S.create ctx in
          let base = Ctx.alloc ctx ~words:accounts in
          S.atomically ctx stm (fun tx ->
              for i = 0 to accounts - 1 do
                S.write tx (base + i) 100
              done);
          (stm, base))
    in
    let (_ : int) =
      Harness.exec m ~seed:3 ~threads (fun ctx ->
          let g = Ctx.prng ctx in
          for _ = 1 to 120 do
            let src = Prng.int g accounts in
            let dst = Prng.int g accounts in
            let amount = Prng.int g 20 in
            S.atomically ctx stm (fun tx ->
                let s = S.read tx (base + src) in
                let d = S.read tx (base + dst) in
                if s >= amount && src <> dst then begin
                  S.write tx (base + src) (s - amount);
                  S.write tx (base + dst) (d + amount)
                end)
          done)
    in
    let total = ref 0 in
    for i = 0 to accounts - 1 do
      total := !total + Machine.peek m (base + i)
    done;
    check_int "total conserved" (100 * accounts) !total

  (* Opacity-flavoured test: writers keep x = y; readers must never observe
     x <> y inside a transaction. *)
  let test_consistent_snapshots () =
    let threads = 6 in
    let m = machine ~cores:threads () in
    let stm, base =
      Harness.exec1 m (fun ctx ->
          let stm = S.create ctx in
          (stm, Ctx.alloc ctx ~words:2))
    in
    let violations = ref 0 in
    let (_ : int) =
      Harness.exec m ~seed:5 ~threads (fun ctx ->
          let g = Ctx.prng ctx in
          for _ = 1 to 100 do
            if Ctx.core ctx < 3 then
              S.atomically ctx stm (fun tx ->
                  let n = Prng.int g 1000 in
                  S.write tx base n;
                  S.write tx (base + 1) n)
            else
              S.atomically ctx stm (fun tx ->
                  let x = S.read tx base in
                  let y = S.read tx (base + 1) in
                  if x <> y then incr violations)
          done)
    in
    check_int "no torn snapshots" 0 !violations

  (* Concurrent counter: final value equals the number of committed
     increment transactions. *)
  let test_counter () =
    let threads = 8 in
    let m = machine ~cores:threads () in
    let stm, cell =
      Harness.exec1 m (fun ctx ->
          let stm = S.create ctx in
          (stm, Ctx.alloc ctx ~words:1))
    in
    S.reset_stats stm;
    let (_ : int) =
      Harness.exec m ~seed:2 ~threads (fun ctx ->
          for _ = 1 to 50 do
            S.atomically ctx stm (fun tx -> S.write tx cell (S.read tx cell + 1))
          done)
    in
    check_int "all increments applied" (threads * 50) (Machine.peek m cell);
    check_int "commit count" (threads * 50) (S.commits stm);
    if S.expect_aborts then
      check_bool "aborts happened under contention" true (S.aborts stm > 0)

  let test_user_abort_retries () =
    let m = machine () in
    Harness.exec1 m (fun ctx ->
        let stm = S.create ctx in
        let cell = Ctx.alloc ctx ~words:1 in
        let tries = ref 0 in
        S.atomically ctx stm (fun tx ->
            incr tries;
            S.write tx cell !tries;
            (* Force two retries through the Abort exception. *)
            if !tries < 3 then raise Mt_stm.Stm_intf.Abort);
        check_int "retried" 3 !tries;
        check_int "only final attempt committed" 3 (Machine.peek m cell))

  let cases =
    [
      Alcotest.test_case "roundtrip" `Quick test_read_write_roundtrip;
      Alcotest.test_case "read own writes" `Quick test_read_own_writes;
      Alcotest.test_case "bank transfers" `Quick test_bank_transfers;
      Alcotest.test_case "consistent snapshots" `Quick test_consistent_snapshots;
      Alcotest.test_case "counter" `Quick test_counter;
      Alcotest.test_case "user abort" `Quick test_user_abort_retries;
    ]
end

module Norec_battery = Battery (struct
  include Mt_stm.Norec

  let expect_aborts = true
end)

module Tagged_battery = Battery (struct
  include Mt_stm.Norec_tagged

  let expect_aborts = false
end)

(* Tag-set overflow: with a tiny Max_Tags, big-read-set transactions must
   fall back to value validation and still commit correctly. *)
let test_tagged_overflow_fallback () =
  let cfg = { (Config.default ~num_cores:4 ()) with max_tags = 8 } in
  let m = machine ~cfg () in
  let words = 64 in
  let stm, base =
    Harness.exec1 m (fun ctx ->
        let stm = Mt_stm.Norec_tagged.create ctx in
        let base = Ctx.alloc ctx ~words in
        Mt_stm.Norec_tagged.atomically ctx stm (fun tx ->
            for i = 0 to words - 1 do
              Mt_stm.Norec_tagged.write tx (base + i) 1
            done);
        (stm, base))
  in
  let (_ : int) =
    Harness.exec m ~seed:9 ~threads:4 (fun ctx ->
        for _ = 1 to 25 do
          (* Read all words (overflowing the tag set), then increment one. *)
          Mt_stm.Norec_tagged.atomically ctx stm (fun tx ->
              let sum = ref 0 in
              for i = 0 to words - 1 do
                sum := !sum + Mt_stm.Norec_tagged.read tx (base + i)
              done;
              let slot = base + Ctx.core ctx in
              Mt_stm.Norec_tagged.write tx slot (!sum mod 97))
        done)
  in
  check_bool "committed through fallback" true (Mt_stm.Norec_tagged.commits stm > 0)

(* A reader parked mid-transaction must abort (via failed validation) when
   a writer commits — detected locally through the tagged lock. *)
let test_tagged_reader_sees_writer () =
  let m = machine ~cores:2 () in
  let stm, cell =
    Harness.exec1 m (fun ctx ->
        let stm = Mt_stm.Norec_tagged.create ctx in
        (stm, Ctx.alloc ctx ~words:1))
  in
  let observed = ref [] in
  let rt = Runtime.create () in
  Runtime.spawn rt (fun () ->
      let ctx = Ctx.make m ~rt ~core:0 ~prng:(Prng.create ~seed:1) in
      Mt_stm.Norec_tagged.atomically ctx stm (fun tx ->
          let v1 = Mt_stm.Norec_tagged.read tx cell in
          Runtime.stall 50_000;
          let v2 = Mt_stm.Norec_tagged.read tx cell in
          observed := (v1, v2) :: !observed));
  Runtime.spawn rt (fun () ->
      let ctx = Ctx.make m ~rt ~core:1 ~prng:(Prng.create ~seed:2) in
      Runtime.stall 20_000;
      Mt_stm.Norec_tagged.atomically ctx stm (fun tx ->
          Mt_stm.Norec_tagged.write tx cell 99));
  Runtime.run rt;
  (* Whatever attempt finally committed must have seen consistent values. *)
  List.iter
    (fun (v1, v2) -> check_int "reader never saw a torn pair" v1 v2)
    !observed;
  check_bool "reader observed the final write eventually" true
    (match !observed with (99, 99) :: _ -> true | _ -> false)

(* Multi-seed schedule exploration: the same workloads must satisfy their
   oracles under every explorer interleaving, and each seed must replay to
   the identical final state. *)

let test_tagged_counter_multi_seed () =
  let threads = 4 and per_thread = 30 in
  for seed = 1 to 12 do
    let m = machine ~cores:threads () in
    let stm, cell =
      Harness.exec1 m (fun ctx ->
          let stm = Mt_stm.Norec_tagged.create ctx in
          (stm, Ctx.alloc ctx ~words:1))
    in
    let policy = Runtime.random_policy ~seed () in
    let (_ : int) =
      Harness.exec m ~seed ~policy ~threads (fun ctx ->
          for _ = 1 to per_thread do
            Mt_stm.Norec_tagged.atomically ctx stm (fun tx ->
                Mt_stm.Norec_tagged.write tx cell
                  (Mt_stm.Norec_tagged.read tx cell + 1))
          done)
    in
    check_int
      (Printf.sprintf "seed %d: every increment committed" seed)
      (threads * per_thread)
      (Machine.peek m cell)
  done

let test_tagged_bank_multi_seed () =
  let threads = 4 and accounts = 6 in
  let run seed =
    let m = machine ~cores:threads () in
    let stm, base =
      Harness.exec1 m (fun ctx ->
          let stm = Mt_stm.Norec_tagged.create ctx in
          let base = Ctx.alloc ctx ~words:accounts in
          Mt_stm.Norec_tagged.atomically ctx stm (fun tx ->
              for i = 0 to accounts - 1 do
                Mt_stm.Norec_tagged.write tx (base + i) 100
              done);
          (stm, base))
    in
    let policy = Runtime.random_policy ~seed () in
    let (_ : int) =
      Harness.exec m ~seed ~policy ~threads (fun ctx ->
          let g = Ctx.prng ctx in
          for _ = 1 to 40 do
            let src = Prng.int g accounts and dst = Prng.int g accounts in
            let amount = Prng.int g 20 in
            Mt_stm.Norec_tagged.atomically ctx stm (fun tx ->
                let s = Mt_stm.Norec_tagged.read tx (base + src) in
                let d = Mt_stm.Norec_tagged.read tx (base + dst) in
                if s >= amount && src <> dst then begin
                  Mt_stm.Norec_tagged.write tx (base + src) (s - amount);
                  Mt_stm.Norec_tagged.write tx (base + dst) (d + amount)
                end)
          done)
    in
    List.init accounts (fun i -> Machine.peek m (base + i))
  in
  for seed = 1 to 10 do
    let balances = run seed in
    check_int
      (Printf.sprintf "seed %d: total conserved" seed)
      (100 * accounts)
      (List.fold_left ( + ) 0 balances);
    check_bool
      (Printf.sprintf "seed %d: replay gives identical final state" seed)
      true
      (run seed = balances)
  done

let () =
  Alcotest.run "mt_stm"
    [
      ("norec", Norec_battery.cases);
      ("norec-tagged", Tagged_battery.cases);
      ( "tagged-specific",
        [
          Alcotest.test_case "overflow fallback" `Quick test_tagged_overflow_fallback;
          Alcotest.test_case "parked reader aborts" `Quick test_tagged_reader_sees_writer;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "counter exact under 12 seeds" `Quick
            test_tagged_counter_multi_seed;
          Alcotest.test_case "bank conserved + deterministic under 10 seeds"
            `Quick test_tagged_bank_multi_seed;
        ] );
    ]
