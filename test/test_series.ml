(* Tests for the time-series telemetry layer and the regression
   sentinel: window partition identities (the series is a partition of
   the run, not a resample), the determinism contract (byte-identical
   with trace retention on or off, for any --jobs value, across repeated
   runs), squeeze-pulse visibility (an injected Max_Tags squeeze shows
   up as an overflow/abort spike exactly in the windows overlapping the
   pulse, with quiet windows on both sides), request conservation
   between the serve layer's result counters and the per-window series,
   Perfetto flow events for per-request causal chains, hot-line profiler
   determinism, and the Bench_compare tolerance-band engine. *)

module Obs = Mt_obs.Obs
module Series = Mt_obs.Series
module Json = Mt_obs.Json
module Hist = Mt_obs.Hist
module Trace = Mt_obs.Trace
module Spec = Mt_workload.Spec
module Driver = Mt_workload.Driver
module BC = Mt_workload.Bench_compare
module Serve = Mt_serve.Server
module Inject = Mt_adversary.Inject
module Scenario = Mt_adversary.Scenario
module Pool = Mt_par.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let window = 5_000
let threads = 4

let spec () =
  Spec.make ~key_range:128 ~insert_pct:35 ~delete_pct:35 ~threads
    ~measure_cycles:30_000 ()

(* One closed-loop HoH-list point with a series attached; returns the
   series and the driver result. *)
let run_point ?make_policy ?(retain = false) () =
  let obs = Obs.create ~retain ~num_cores:threads () in
  let series = Series.create ~window () in
  let r =
    Driver.run_set ~obs ?make_policy ~series (module Mt_list.Hoh_list)
      (spec ())
  in
  (series, r)

let series_str s = Json.to_string (Series.to_json s)

(* ------------------------------------------------------------------ *)
(* Partition identities. *)

let test_series_partitions_ops () =
  let series, r = run_point () in
  let ws = Series.windows series in
  check_bool "several windows" true (Array.length ws > 3);
  let sum = Array.fold_left (fun a w -> a + w.Series.w_ops) 0 ws in
  check_int "window ops sum to run ops" r.Driver.ops sum;
  (* The merged per-window latency histogram is the run's histogram. *)
  check_int "latency summary count" (Hist.count r.Driver.latency)
    (Hist.count (Series.latency_summary series));
  check_string "latency summary percentiles"
    (Json.to_string (Hist.to_json r.Driver.latency))
    (Json.to_string (Hist.to_json (Series.latency_summary series)))

(* ------------------------------------------------------------------ *)
(* Determinism contract. *)

let test_series_deterministic () =
  let s1, _ = run_point () and s2, _ = run_point () in
  check_string "byte-identical across runs" (series_str s1) (series_str s2)

let test_series_retain_invariant () =
  (* The series reads the live stream, not the rings: retaining a full
     trace alongside must not change a byte of the series. *)
  let s_off, r_off = run_point ~retain:false () in
  let s_on, r_on = run_point ~retain:true () in
  check_string "retain on/off identical" (series_str s_off) (series_str s_on);
  check_int "ops unchanged" r_off.Driver.ops r_on.Driver.ops

let test_series_jobs_invariant () =
  let thunk () = series_str (fst (run_point ())) in
  let seq = Pool.map ~jobs:1 (fun f -> f ()) [ thunk; thunk ] in
  let par = Pool.map ~jobs:2 (fun f -> f ()) [ thunk; thunk ] in
  List.iter2 (check_string "jobs 1 vs 2") seq par

(* ------------------------------------------------------------------ *)
(* Squeeze-pulse visibility. *)

let test_series_squeeze_spike () =
  (* Squeeze Max_Tags to 1 over [10000, 22000): a hand-over-hand locate
     needs two live tags, so every traversal in the pulse overflows. *)
  let at = 10_000 and hold = 12_000 in
  let inj =
    match Inject.of_string (Printf.sprintf "squeeze=%d,1,%d" at hold) with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let make_policy m =
    Scenario.make_policy inj ~machine:m ~seed:7 ~max_delay:0
  in
  let series, r = run_point ~make_policy () in
  (match Series.marks series with
  | [ (t1, l1); (t2, l2) ] ->
      check_string "apply mark" "squeeze(max_tags=1)" l1;
      check_string "restore mark" "squeeze-restore" l2;
      check_bool "marks ordered" true (at <= t1 && t1 < t2)
  | ms -> Alcotest.failf "expected 2 marks, got %d" (List.length ms));
  let ws = Series.windows series in
  let overflows i = ws.(i).Series.w_snap.Series.c_tag_overflows in
  let spurious i = ws.(i).Series.w_validate_spurious in
  (* Window 0 and 1 precede the pulse: clean. *)
  check_int "no overflows before pulse" 0 (overflows 0 + overflows 1);
  check_int "no spurious aborts before pulse" 0 (spurious 0 + spurious 1);
  (* Windows overlapping [at, at+hold) carry the spike. *)
  let in_pulse = ref 0 in
  Array.iteri
    (fun i w ->
      if w.Series.w_t0 < at + hold && w.Series.w_t0 + window > at then
        in_pulse := !in_pulse + overflows i)
    ws;
  check_bool "overflow spike inside pulse" true (!in_pulse > 0);
  (* The run recovers: the squeeze is spurious pressure, not damage, and
     ops still complete overall. *)
  check_bool "run still completes ops" true (r.Driver.ops > 0);
  check_bool "spurious aborts recorded" true
    (r.Driver.validate_failures_spurious > 0)

(* ------------------------------------------------------------------ *)
(* Serve-layer conservation: result counters vs series sums. *)

let test_serve_series_conservation () =
  let obs = Obs.create ~retain:false ~num_cores:3 () in
  let series = Series.create ~window () in
  let c =
    Serve.config ~workers:2 ~batch:2 ~queue_capacity:8 ~rate_per_kcycle:40.0
      ~horizon:30_000 ()
  in
  let r =
    Serve.run_set ~obs ~series (module Mt_list.Hoh_list) ~key_range:128 c
  in
  let sum f =
    Array.fold_left (fun a w -> a + f w) 0 (Series.windows series)
  in
  check_int "commits = completed" r.Serve.completed
    (sum (fun w -> w.Series.w_commits));
  check_int "dequeues = completed" r.Serve.completed
    (sum (fun w -> w.Series.w_dequeues));
  check_int "drops = dropped" r.Serve.dropped
    (sum (fun w -> w.Series.w_drops));
  (* Overload at 40 req/kcycle on 2 workers: admission must bite. *)
  check_bool "overload drops requests" true (r.Serve.dropped > 0);
  check_int "enqueues = completed (every dequeue was enqueued)"
    r.Serve.completed
    (sum (fun w -> w.Series.w_enqueues))

(* ------------------------------------------------------------------ *)
(* Perfetto flow events: each request's causal chain in the trace. *)

let test_serve_flow_events () =
  let obs = Obs.create ~num_cores:3 () in
  let c =
    Serve.config ~workers:2 ~queue_capacity:8 ~rate_per_kcycle:40.0
      ~horizon:10_000 ()
  in
  let r = Serve.run_set ~obs (module Mt_list.Hoh_list) ~key_range:128 c in
  check_bool "some requests served" true (r.Serve.completed > 0);
  let s = Json.to_string (Trace.to_json obs) in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "flow start (arrive)" true (contains {|"ph":"s"|});
  check_bool "flow step (enqueue/dequeue)" true (contains {|"ph":"t"|});
  check_bool "flow finish (commit/drop)" true (contains {|"ph":"f"|});
  check_bool "binding point on finish" true (contains {|"bp":"e"|});
  check_bool "req category" true (contains {|"cat":"req"|});
  check_bool "per-core drop counters exported" true
    (contains {|"dropped_per_core"|})

(* ------------------------------------------------------------------ *)
(* Hist.merge bucket exactness. *)

let test_hist_merge_bucket_exact () =
  (* Merging histograms is exactly histogramming the concatenation:
     same buckets, same counts, same percentiles, byte-identical JSON. *)
  let a = Hist.create () and b = Hist.create () and all = Hist.create () in
  let v = ref 1 in
  for i = 0 to 499 do
    v := 1 + (!v * 7919 mod 100_000);
    Hist.add (if i mod 2 = 0 then a else b) !v;
    Hist.add all !v
  done;
  Hist.merge ~into:a b;
  check_string "merged = concatenated"
    (Json.to_string (Hist.to_json all))
    (Json.to_string (Hist.to_json a));
  (* Merging an empty histogram is the identity. *)
  let before = Json.to_string (Hist.to_json a) in
  Hist.merge ~into:a (Hist.create ());
  check_string "merge empty = identity" before (Json.to_string (Hist.to_json a))

(* ------------------------------------------------------------------ *)
(* Hot-line contention profiler: determinism and top-K stability. *)

let hot_run () =
  let obs = Obs.create ~retain:false ~num_cores:threads () in
  let r = Driver.run_set ~obs (module Mt_list.Hoh_list) (spec ()) in
  check_bool "ops" true (r.Driver.ops > 0);
  obs

let test_hot_lines_deterministic () =
  let lines obs = Json.to_string (Trace.hot_lines_json ~top:8 obs) in
  let seq = Pool.map ~jobs:1 (fun f -> lines (f ())) [ hot_run; hot_run ] in
  let par = Pool.map ~jobs:2 (fun f -> lines (f ())) [ hot_run; hot_run ] in
  (match seq with
  | [ x; y ] -> check_string "repeated runs identical" x y
  | _ -> assert false);
  List.iter2 (check_string "jobs 1 vs 2") seq par

let test_hot_lines_topk_prefix () =
  (* top-3 must be exactly the first three of top-8 (stable ranking,
     ties broken by line number — no resort across cutoffs). *)
  let obs = hot_run () in
  let top8 = Obs.hot_lines ~top:8 obs in
  let top3 = Obs.hot_lines ~top:3 obs in
  check_int "top3 size" 3 (List.length top3);
  List.iteri
    (fun i (h : Obs.hot_line) ->
      let h8 = List.nth top8 i in
      check_int (Printf.sprintf "line %d" i) h8.Obs.hl_line h.Obs.hl_line;
      check_int (Printf.sprintf "invals %d" i) h8.Obs.hl_invals h.Obs.hl_invals)
    top3

(* ------------------------------------------------------------------ *)
(* Bench_compare: the regression sentinel's tolerance-band engine. *)

let doc ?(thr = 10.0) ?(p99 = 400) ?(impl = "hoh-list") ?(extra = []) () =
  Json.Obj
    ([
       ("schema_version", Json.Int 3);
       ("impl", Json.String impl);
       ("throughput_per_kcycle", Json.Float thr);
       ("latency", Json.Obj [ ("p99", Json.Int p99) ]);
     ]
    @ extra)

let test_compare_self () =
  let r = BC.compare_docs ~baseline:(doc ()) ~current:(doc ()) () in
  check_bool "ok" true (BC.ok r);
  check_int "metrics compared" 2 r.BC.compared;
  check_int "no regressions" 0 (List.length r.BC.regressed)

let test_compare_within_band () =
  (* -20% throughput and +30% p99 are inside the default bands. *)
  let r =
    BC.compare_docs ~baseline:(doc ()) ~current:(doc ~thr:8.0 ~p99:520 ()) ()
  in
  check_bool "ok" true (BC.ok r)

let test_compare_regression () =
  let r = BC.compare_docs ~baseline:(doc ()) ~current:(doc ~thr:5.0 ()) () in
  check_bool "not ok" false (BC.ok r);
  (match r.BC.regressed with
  | [ f ] ->
      check_string "metric" "throughput_per_kcycle" f.BC.metric;
      check_bool "band edge" true (f.BC.allowed > 5.0 && f.BC.allowed < 10.0)
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* A latency explosion past rel+abs slack regresses too. *)
  let r = BC.compare_docs ~baseline:(doc ()) ~current:(doc ~p99:2000 ()) () in
  check_int "p99 regression" 1 (List.length r.BC.regressed)

let test_compare_improvement_not_fatal () =
  let r = BC.compare_docs ~baseline:(doc ()) ~current:(doc ~thr:20.0 ()) () in
  check_bool "ok despite change" true (BC.ok r);
  check_int "reported as improvement" 1 (List.length r.BC.improved)

let test_compare_structural () =
  (* Missing key. *)
  let current =
    Json.Obj
      [
        ("schema_version", Json.Int 3);
        ("impl", Json.String "hoh-list");
        ("latency", Json.Obj [ ("p99", Json.Int 400) ]);
      ]
  in
  let r = BC.compare_docs ~baseline:(doc ()) ~current () in
  check_bool "missing key fails" false (BC.ok r);
  check_int "structural" 1 (List.length r.BC.structural);
  (* Identity mismatch. *)
  let r =
    BC.compare_docs ~baseline:(doc ()) ~current:(doc ~impl:"vas-list" ()) ()
  in
  check_bool "identity change fails" false (BC.ok r);
  (* Changed list length. *)
  let with_list l = doc ~extra:[ ("rows", Json.List l) ] () in
  let r =
    BC.compare_docs
      ~baseline:(with_list [ Json.Int 1; Json.Int 2 ])
      ~current:(with_list [ Json.Int 1 ]) ()
  in
  check_bool "length change fails" false (BC.ok r)

let test_compare_band_override () =
  (* Tightening the band to zero makes any drift a regression. *)
  let bands =
    ("throughput_per_kcycle",
     { BC.dir = BC.Higher_better; rel = 0.0; abs = 0.0 })
    :: BC.default_bands
  in
  let r =
    BC.compare_docs ~bands ~baseline:(doc ()) ~current:(doc ~thr:9.99 ()) ()
  in
  check_int "zero band regresses" 1 (List.length r.BC.regressed)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "series"
    [
      ( "series",
        [
          Alcotest.test_case "partitions ops + latency" `Quick
            test_series_partitions_ops;
          Alcotest.test_case "deterministic" `Quick test_series_deterministic;
          Alcotest.test_case "retain on/off invariant" `Quick
            test_series_retain_invariant;
          Alcotest.test_case "jobs invariant" `Quick test_series_jobs_invariant;
          Alcotest.test_case "squeeze spike visible" `Quick
            test_series_squeeze_spike;
        ] );
      ( "serve",
        [
          Alcotest.test_case "series conservation" `Quick
            test_serve_series_conservation;
          Alcotest.test_case "perfetto flow events" `Quick
            test_serve_flow_events;
        ] );
      ( "hist",
        [
          Alcotest.test_case "merge bucket-exact" `Quick
            test_hist_merge_bucket_exact;
        ] );
      ( "hot",
        [
          Alcotest.test_case "deterministic across jobs" `Quick
            test_hot_lines_deterministic;
          Alcotest.test_case "top-K prefix stable" `Quick
            test_hot_lines_topk_prefix;
        ] );
      ( "compare",
        [
          Alcotest.test_case "self compare ok" `Quick test_compare_self;
          Alcotest.test_case "within band ok" `Quick test_compare_within_band;
          Alcotest.test_case "regression detected" `Quick
            test_compare_regression;
          Alcotest.test_case "improvement not fatal" `Quick
            test_compare_improvement_not_fatal;
          Alcotest.test_case "structural mismatches" `Quick
            test_compare_structural;
          Alcotest.test_case "band override" `Quick test_compare_band_override;
        ] );
    ]
