(* Unit tests for the linearizability checker itself (hand-written
   histories with known verdicts), the schedule explorer's determinism,
   and the end-to-end fuzz loop: every real structure must survive a seed
   sweep, and the deliberately broken list must be caught. *)

open Mt_check

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ev ?(core = 0) op result t_inv t_res =
  { History.core; op; result; t_inv; t_res }

let accepts ?init ?final name events =
  match Linearize.check_set ?init ?final (Array.of_list events) with
  | Ok () -> ()
  | Error v -> Alcotest.failf "%s: expected accept, got %a" name Linearize.pp_violation v

let rejects ?init ?final ?key name events =
  match Linearize.check_set ?init ?final (Array.of_list events) with
  | Ok () -> Alcotest.failf "%s: expected reject, accepted" name
  | Error v -> (
      match key with
      | Some k -> check_int (name ^ ": violating key") k v.key
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Known-linearizable histories. *)

let test_accept_sequential () =
  accepts "sequential"
    [
      ev (Insert 5) true 0 10;
      ev (Contains 5) true 20 30;
      ev (Delete 5) true 40 50;
      ev (Contains 5) false 60 70;
      ev (Delete 5) false 80 90;
    ]

let test_accept_needs_reorder () =
  (* contains(5)=true is invoked after insert(5) but responds inside its
     interval: the only legal order puts the insert's linearization point
     first even though the intervals overlap. *)
  accepts "reorder"
    [
      ev ~core:0 (Insert 5) true 0 100;
      ev ~core:1 (Contains 5) true 10 20;
    ]

let test_accept_concurrent_insert_delete () =
  (* Overlapping insert=true / delete=true from an initially-present key:
     only delete-then-insert is legal; the checker must find it. *)
  accepts ~init:[ 5 ] "ins/del overlap"
    [
      ev ~core:0 (Insert 5) true 0 100;
      ev ~core:1 (Delete 5) true 0 100;
    ]

let test_accept_init () =
  accepts ~init:[ 7 ] "init contents" [ ev (Delete 7) true 0 10 ]

let test_accept_keys_independent () =
  (* Interleaved ops on different keys check independently. *)
  accepts "independent keys"
    [
      ev ~core:0 (Insert 1) true 0 50;
      ev ~core:1 (Insert 2) true 10 60;
      ev ~core:0 (Delete 1) true 60 90;
      ev ~core:1 (Contains 2) true 70 95;
    ]

(* ------------------------------------------------------------------ *)
(* Known-non-linearizable histories. *)

let test_reject_double_insert () =
  rejects ~key:5 "double insert"
    [ ev (Insert 5) true 0 10; ev (Insert 5) true 20 30 ]

let test_reject_stale_contains () =
  rejects ~key:5 "stale contains"
    [ ev (Insert 5) true 0 10; ev (Contains 5) false 20 30 ]

let test_reject_contains_from_nowhere () =
  rejects ~key:9 "phantom contains" [ ev (Contains 9) true 0 10 ]

let test_reject_across_quiescent_gap () =
  (* Segments split at the gap must still thread oracle state: the second
     segment's duplicate insert is illegal given the first. *)
  rejects ~key:5 "state threads across gap"
    [
      ev (Insert 5) true 0 10;
      ev ~core:1 (Contains 5) true 5 12;
      ev (Insert 5) true 1_000 1_010;
    ]

let test_reject_final_mismatch () =
  rejects ~key:3 "lost update vs memory"
    ~final:[] [ ev (Insert 3) true 0 10 ]

let test_reject_phantom_final_key () =
  rejects ~key:4 "phantom final key" ~final:[ 4 ] []

let test_reject_reports_offending_key () =
  rejects ~key:7 "key attribution"
    [
      ev (Insert 1) true 0 10;
      ev (Contains 7) true 20 30;
      ev (Delete 1) true 40 50;
    ]

(* ------------------------------------------------------------------ *)
(* The generic core: reachable final states. *)

let test_final_states_forced_order () =
  let model = Linearize.{ apply = (fun present op ->
      match op with
      | `Ins -> (not present, true)
      | `Del -> (present, false)) }
  in
  let entries =
    [|
      Linearize.{ op = `Ins; result = true; t_inv = 0; t_res = 100 };
      Linearize.{ op = `Del; result = true; t_inv = 0; t_res = 100 };
    |]
  in
  (* From present: only delete-then-insert validates, so the final state
     is forced to [true]. *)
  Alcotest.(check (list bool))
    "forced final" [ true ]
    (Linearize.final_states model ~init:true entries);
  (* From absent: only insert-then-delete validates. *)
  Alcotest.(check (list bool))
    "forced final 2" [ false ]
    (Linearize.final_states model ~init:false entries)

(* ------------------------------------------------------------------ *)
(* Explorer: determinism and end-to-end sweeps. *)

let params ?(threads = 4) ?(ops = 40) () =
  { Explore.default_params with threads; ops }

let test_explorer_replay_identical () =
  let run () =
    Explore.run (module Mt_list.Vas_list) ~params:(params ()) ~seed:3
  in
  let a = run () and b = run () in
  check_bool "byte-identical histories" true
    (History.to_string a.history = History.to_string b.history);
  check_bool "identical final contents" true (a.final = b.final);
  check_int "identical duration" a.duration b.duration

let test_explorer_seeds_differ () =
  (* Distinct seeds must actually explore distinct schedules. *)
  let h seed =
    History.to_string
      (Explore.run (module Mt_list.Vas_list) ~params:(params ()) ~seed).history
  in
  check_bool "seed 1 and 2 give different histories" true (h 1 <> h 2)

let sweep_clean name (module S : Mt_list.Set_intf.SET) =
  let _, failure = Explore.sweep (module S) ~params:(params ()) ~seeds:15 in
  match failure with
  | None -> ()
  | Some o ->
      let v = match o.verdict with Error v -> v | Ok () -> assert false in
      Alcotest.failf "%s: seed %d not linearizable: %a" name o.seed
        Linearize.pp_violation v

let test_sweep_vas () = sweep_clean "vas" (module Mt_list.Vas_list)
let test_sweep_hoh () = sweep_clean "hoh" (module Mt_list.Hoh_list)
let test_sweep_elided () = sweep_clean "elided" (module Mt_list.Elided_list)

let test_buggy_list_caught () =
  (* The canary: the marking-disabled list must be caught within 100
     seeds (acceptance criterion; in practice the first few). *)
  let _, failure =
    Explore.sweep (module Buggy_list) ~params:(params ()) ~seeds:100
  in
  match failure with
  | Some o ->
      check_bool "caught well within budget" true (o.seed < 100);
      (* and its failing seed replays identically *)
      let replay = Explore.run (module Buggy_list) ~params:(params ()) ~seed:o.seed in
      check_bool "failure replays byte-identically" true
        (History.to_string replay.history = History.to_string o.history)
  | None -> Alcotest.fail "broken list survived 100 seeds"

let () =
  Alcotest.run "mt_check"
    [
      ( "accept",
        [
          Alcotest.test_case "sequential" `Quick test_accept_sequential;
          Alcotest.test_case "needs reorder" `Quick test_accept_needs_reorder;
          Alcotest.test_case "ins/del overlap" `Quick test_accept_concurrent_insert_delete;
          Alcotest.test_case "init contents" `Quick test_accept_init;
          Alcotest.test_case "independent keys" `Quick test_accept_keys_independent;
        ] );
      ( "reject",
        [
          Alcotest.test_case "double insert" `Quick test_reject_double_insert;
          Alcotest.test_case "stale contains" `Quick test_reject_stale_contains;
          Alcotest.test_case "phantom contains" `Quick test_reject_contains_from_nowhere;
          Alcotest.test_case "state threads across gap" `Quick test_reject_across_quiescent_gap;
          Alcotest.test_case "final mismatch" `Quick test_reject_final_mismatch;
          Alcotest.test_case "phantom final key" `Quick test_reject_phantom_final_key;
          Alcotest.test_case "offending key reported" `Quick test_reject_reports_offending_key;
        ] );
      ( "core",
        [ Alcotest.test_case "forced final states" `Quick test_final_states_forced_order ] );
      ( "explorer",
        [
          Alcotest.test_case "replay identical" `Quick test_explorer_replay_identical;
          Alcotest.test_case "seeds differ" `Quick test_explorer_seeds_differ;
          Alcotest.test_case "vas sweep clean" `Quick test_sweep_vas;
          Alcotest.test_case "hoh sweep clean" `Quick test_sweep_hoh;
          Alcotest.test_case "elided sweep clean" `Quick test_sweep_elided;
          Alcotest.test_case "buggy list caught" `Quick test_buggy_list_caught;
        ] );
    ]
