(* Correctness tests for the three linked-list variants: the generic SET
   battery (sequential oracle, concurrent accounting, determinism), the
   Figure 1 counterexample, and HoH range snapshots. *)

open Mt_sim
open Mt_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine ?(cores = 8) () = Machine.create (Config.default ~num_cores:cores ())

module Harris_battery = Set_battery.Make (Mt_list.Harris_list)
module Vas_battery = Set_battery.Make (Mt_list.Vas_list)
module Hoh_battery = Set_battery.Make (Mt_list.Hoh_list)
module Elided_battery = Set_battery.Make (Mt_list.Elided_list)

(* ------------------------------------------------------------------ *)
(* The HLE-style fallback path (paper Section 3): with Max_Tags too small
   for even the HoH window, the fast path can never validate — operations
   must stay live and correct through the global-lock slow path. *)

let test_fallback_under_tiny_max_tags () =
  let cfg = { (Config.default ~num_cores:4 ()) with max_tags = 2 } in
  let m = Machine.create cfg in
  let s = Harness.exec1 m (fun ctx -> Mt_list.Elided_list.create ctx) in
  let ins = Array.make 32 0 and del = Array.make 32 0 in
  let (_ : int) =
    Harness.exec m ~seed:19 ~threads:4 (fun ctx ->
        let g = Ctx.prng ctx in
        for _ = 1 to 40 do
          let k = Prng.int g 32 in
          if Prng.bool g then begin
            if Mt_list.Elided_list.insert ctx s k then ins.(k) <- ins.(k) + 1
          end
          else if Mt_list.Elided_list.delete ctx s k then del.(k) <- del.(k) + 1
        done)
  in
  let final = Mt_list.Elided_list.to_list_unsafe m s in
  for k = 0 to 31 do
    let net = ins.(k) - del.(k) in
    check_bool "net in {0,1}" true (net = 0 || net = 1);
    check_bool "membership matches net" true (List.mem k final = (net = 1))
  done;
  check_bool "the slow path actually ran" true
    (Mt_list.Elided_list.slow_path_count m s > 0)

let test_fallback_rare_on_normal_config () =
  (* Moderate contention: the fast path should carry (almost) everything. *)
  let m = machine ~cores:4 () in
  let s = Harness.exec1 m (fun ctx -> Mt_list.Elided_list.create ctx) in
  let ops = 400 in
  let (_ : int) =
    Harness.exec m ~seed:23 ~threads:4 (fun ctx ->
        let g = Ctx.prng ctx in
        for _ = 1 to ops / 4 do
          let k = Prng.int g 256 in
          match Prng.int g 10 with
          | 0 | 1 -> ignore (Mt_list.Elided_list.insert ctx s k)
          | 2 -> ignore (Mt_list.Elided_list.delete ctx s k)
          | _ -> ignore (Mt_list.Elided_list.contains ctx s k)
        done)
  in
  let slow = Mt_list.Elided_list.slow_path_count m s in
  check_bool
    (Printf.sprintf "fast path carries a sane machine (%d/%d slow)" slow ops)
    true
    (slow * 100 <= ops)

(* ------------------------------------------------------------------ *)
(* The Figure 1 counterexample: a traversal parked on a node must be
   aborted when that node is deleted. With IAS deletes (HoH list), the
   parked traversal's validation fails. *)

let test_figure1_ias_aborts_parked_traversal () =
  let m = machine ~cores:2 () in
  let s =
    Harness.exec1 m (fun ctx ->
        let s = Mt_list.Hoh_list.create ctx in
        List.iter (fun k -> ignore (Mt_list.Hoh_list.insert ctx s k)) [ 10; 20; 30 ];
        s)
  in
  let parked_validation = ref None in
  let rt = Runtime.create () in
  (* Fiber 0: locate key 20 (leaves tags on its pred and curr = nodes 10 and
     20), park for a long time, then validate. *)
  Runtime.spawn rt (fun () ->
      let ctx = Ctx.make m ~rt ~core:0 ~prng:(Prng.create ~seed:1) in
      let _pred, _curr, ck = Mt_list.Hoh_list.For_testing.locate ctx s 20 in
      check_int "found 20" 20 ck;
      Runtime.stall 100_000;
      parked_validation := Some (Ctx.validate ctx);
      Ctx.clear_tag_set ctx);
  (* Fiber 1: wait until fiber 0 is parked, then delete key 20. *)
  Runtime.spawn rt (fun () ->
      let ctx = Ctx.make m ~rt ~core:1 ~prng:(Prng.create ~seed:2) in
      Runtime.stall 50_000;
      check_bool "delete succeeded" true (Mt_list.Hoh_list.delete ctx s 20));
  Runtime.run rt;
  Alcotest.(check (option bool))
    "parked traversal aborted by IAS" (Some false) !parked_validation

let test_figure1_vas_would_miss_it () =
  (* Control experiment: a plain remote VAS to a *different* line (the
     predecessor) does not invalidate the parked thread's tag on the deleted
     node itself — demonstrating why Algorithm 2 needs IAS. *)
  let m = machine ~cores:2 () in
  let a = Machine.alloc m ~words:8 in
  let b = Machine.alloc m ~words:8 in
  (* Parked thread tags only b (the node being deleted). *)
  let _ = Machine.add_tag m ~core:0 b ~words:1 in
  (* Deleter swings the pointer in a (the predecessor) via VAS. *)
  let _ = Machine.add_tag m ~core:1 a ~words:1 in
  let ok = Machine.vas m ~core:1 a 42 in
  check_bool "vas ok" true ok;
  let still_valid = Machine.validate m ~core:0 in
  check_bool "parked tag NOT invalidated by remote VAS elsewhere" true still_valid

(* ------------------------------------------------------------------ *)
(* Tagged SEARCH (Algorithm 2 verbatim) agrees with the plain one. *)

let test_contains_tagged_agrees () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let s = Mt_list.Hoh_list.create ctx in
      List.iter (fun k -> ignore (Mt_list.Hoh_list.insert ctx s k)) [ 2; 4; 6; 8 ];
      for k = 0 to 9 do
        check_bool "agreement" (Mt_list.Hoh_list.contains ctx s k)
          (Mt_list.Hoh_list.contains_tagged ctx s k)
      done)

(* ------------------------------------------------------------------ *)
(* HoH range snapshots. *)

let test_range_basic () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let s = Mt_list.Hoh_list.create ctx in
      List.iter (fun k -> ignore (Mt_list.Hoh_list.insert ctx s k)) [ 1; 3; 5; 7; 9 ];
      (match Mt_list.Hoh_list.range ctx s ~lo:3 ~hi:7 with
      | Some keys -> Alcotest.(check (list int)) "range [3,7]" [ 3; 5; 7 ] keys
      | None -> Alcotest.fail "range failed");
      match Mt_list.Hoh_list.range ctx s ~lo:10 ~hi:20 with
      | Some keys -> Alcotest.(check (list int)) "empty range" [] keys
      | None -> Alcotest.fail "range failed")

let test_range_overflow_returns_none () =
  let cfg = { (Config.default ~num_cores:1 ()) with max_tags = 4 } in
  let m = Machine.create cfg in
  Harness.exec1 m (fun ctx ->
      let s = Mt_list.Hoh_list.create ctx in
      for k = 1 to 20 do
        ignore (Mt_list.Hoh_list.insert ctx s k)
      done;
      match Mt_list.Hoh_list.range ctx s ~lo:1 ~hi:20 with
      | None -> ()
      | Some _ -> Alcotest.fail "range should overflow Max_Tags")

let test_range_snapshots_are_consistent_under_updates () =
  (* Writers toggle pairs (2k, 2k+1) by inserting the missing sibling
     before deleting the present one, so "at least one of each pair
     present" holds at every instant; each atomic snapshot must see it. *)
  let pairs = 8 in
  let m = machine ~cores:4 () in
  let s =
    Harness.exec1 m (fun ctx ->
        let s = Mt_list.Hoh_list.create ctx in
        for p = 0 to pairs - 1 do
          ignore (Mt_list.Hoh_list.insert ctx s (2 * p))
        done;
        s)
  in
  let violations = ref 0 and snapshots = ref 0 in
  let (_ : int) =
    Harness.exec m ~seed:5 ~threads:3 (fun ctx ->
        let id = Ctx.core ctx in
        if id < 2 then
          let g = Ctx.prng ctx in
          for _ = 1 to 150 do
            let p = Prng.int g pairs in
            if Mt_list.Hoh_list.insert ctx s ((2 * p) + 1) then
              ignore (Mt_list.Hoh_list.delete ctx s (2 * p))
            else if Mt_list.Hoh_list.insert ctx s (2 * p) then
              ignore (Mt_list.Hoh_list.delete ctx s ((2 * p) + 1))
          done
        else
          for _ = 1 to 60 do
            match Mt_list.Hoh_list.range ctx s ~lo:0 ~hi:(2 * pairs) with
            | None -> ()
            | Some keys ->
                incr snapshots;
                for p = 0 to pairs - 1 do
                  let has_even = List.mem (2 * p) keys in
                  let has_odd = List.mem ((2 * p) + 1) keys in
                  if not (has_even || has_odd) then incr violations
                done
          done)
  in
  check_bool "took snapshots" true (!snapshots > 0);
  check_int "no atomicity violations" 0 !violations

let () =
  Alcotest.run "mt_list"
    [
      ("harris", Harris_battery.cases);
      ("vas", Vas_battery.cases);
      ("hoh", Hoh_battery.cases);
      ("elided", Elided_battery.cases);
      ( "fallback",
        [
          Alcotest.test_case "tiny Max_Tags stays live" `Quick
            test_fallback_under_tiny_max_tags;
          Alcotest.test_case "rare on normal config" `Quick
            test_fallback_rare_on_normal_config;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "IAS aborts parked traversal" `Quick
            test_figure1_ias_aborts_parked_traversal;
          Alcotest.test_case "VAS alone would miss it" `Quick
            test_figure1_vas_would_miss_it;
          Alcotest.test_case "tagged search agrees" `Quick test_contains_tagged_agrees;
        ] );
      ( "range",
        [
          Alcotest.test_case "basic" `Quick test_range_basic;
          Alcotest.test_case "overflow -> None" `Quick test_range_overflow_returns_none;
          Alcotest.test_case "snapshot consistency" `Quick
            test_range_snapshots_are_consistent_under_updates;
        ] );
    ]
