(* Tests for the sharded multi-structure store (lib/store): routing
   determinism, the sequential map+range-query model per backend
   (set_battery's ranged battery), transaction atomicity under fuzzed
   schedules with the coherence audit on, point/txn/scan linearizability
   via the generic Wing-Gong checker, serve-layer conservation, and the
   house invariants (byte-identical across --jobs and with tracing on or
   off). *)

open Mt_sim
open Mt_core
module Store = Mt_store.Store
module Backend = Mt_store.Backend
module Store_serve = Mt_store.Store_serve
module Serve = Mt_serve.Server
module Linearize = Mt_check.Linearize
module Obs = Mt_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine ?(cores = 8) () =
  Machine.create (Config.default ~num_cores:cores ())

let backend name =
  match Backend.by_name name with
  | Some b -> b
  | None -> Alcotest.failf "unknown backend %s" name

(* Every registered backend, exercised by the cross-backend tests. *)
let backend_names = List.map fst Backend.all

(* ------------------------------------------------------------------ *)
(* Routing: pure hash partitioning, deterministic reruns. *)

let test_routing () =
  let m = machine () in
  Harness.exec1 m (fun ctx ->
      let s = Store.create (backend "hoh-list") ctx ~shards:4 ~key_space:64 in
      check_int "shards" 4 (Store.num_shards s);
      check_int "key space" 64 (Store.key_space s);
      for k = 0 to 63 do
        check_int "shard_of is k mod shards" (k mod 4) (Store.shard_of s k)
      done;
      (* Each point op lands on exactly its key's shard counter. *)
      for k = 0 to 15 do
        ignore (Store.insert ctx s k)
      done;
      let st = Store.stats s in
      Array.iteri (fun _ n -> check_int "4 ops per shard" 4 n) st.shard_ops;
      check_int "point ops counted" 16 st.point_ops)

let test_determinism () =
  (* Two identical concurrent runs must agree bit-for-bit: duration, final
     contents, stats, and machine counters. *)
  List.iter
    (fun bname ->
      let run () =
        let m = machine ~cores:4 () in
        let s =
          Harness.exec1 m (fun ctx ->
              Store.create (backend bname) ctx ~shards:4 ~key_space:32)
        in
        let d =
          Harness.exec m ~seed:17 ~threads:4 (fun ctx ->
              let g = Ctx.prng ctx in
              for _ = 1 to 60 do
                let k = Prng.int g 32 in
                match Prng.int g 4 with
                | 0 -> ignore (Store.insert ctx s k)
                | 1 -> ignore (Store.delete ctx s k)
                | 2 -> ignore (Store.get ctx s k)
                | _ -> ignore (Store.txn ctx s [ (k, Store.Insert); ((k + 7) mod 32, Store.Delete) ])
              done)
        in
        ( d,
          Store.to_list_unsafe m s,
          Store.stats s,
          (Machine.total_stats m).Stats.l1_misses )
      in
      check_bool (bname ^ " bit-identical reruns") true (run () = run ()))
    backend_names

(* ------------------------------------------------------------------ *)
(* Sequential map + range-query model (set_battery's ranged battery). *)

let ranged_battery bname =
  let module R = struct
    type t = Store.t

    let name = "store-" ^ bname
    let key_range = 48

    let create ctx =
      Store.create (backend bname) ctx ~shards:4 ~key_space:key_range

    let insert = Store.insert
    let delete = Store.delete
    let contains = Store.get
    let range ctx t ~lo ~hi = Store.scan ctx t ~lo ~hi
  end in
  let module B = Set_battery.Make_ranged (R) in
  B.cases

(* ------------------------------------------------------------------ *)
(* Transaction atomicity under fuzzed schedules.

   Writers keep the pair (k, k+half) — two different shards — together:
   both inserted or both deleted in one txn. Readers observe each pair
   through a Get txn. Any observation of a half-pair is a torn commit.
   Swept over seeds with a fresh exploration policy per run and the MESI
   coherence audit after each. *)

let test_txn_atomicity () =
  let shards = 4 and key_space = 16 in
  let half = key_space / 2 in
  List.iter
    (fun bname ->
      for seed = 0 to 9 do
        let threads = 4 in
        let m = machine ~cores:threads () in
        let s =
          Harness.exec1 m (fun ctx ->
              Store.create (backend bname) ctx ~shards ~key_space)
        in
        let torn = ref 0 and committed = ref 0 and aborted = ref 0 in
        let (_ : int) =
          Harness.exec m ~seed
            ~policy:(Runtime.random_policy ~seed:(seed + 100) ())
            ~threads
            (fun ctx ->
              let g = Ctx.prng ctx in
              for _ = 1 to 40 do
                let k = Prng.int g half in
                if Ctx.core ctx < threads - 1 then begin
                  let op = if Prng.bool g then Store.Insert else Store.Delete in
                  match Store.txn ctx s [ (k, op); (k + half, op) ] with
                  | Store.Committed _ -> incr committed
                  | Store.Aborted { cause; retries } ->
                      incr aborted;
                      check_bool "abort cause named" true
                        (cause = "shard-locked" || cause = "version-changed");
                      check_bool "abort after full retry budget" true
                        (retries > 0)
                end
                else begin
                  match
                    Store.txn ctx s [ (k, Store.Get); (k + half, Store.Get) ]
                  with
                  | Store.Committed [ a; b ] ->
                      incr committed;
                      if a <> b then incr torn
                  | Store.Committed _ -> Alcotest.fail "txn arity"
                  | Store.Aborted _ -> incr aborted
                end
              done)
        in
        Machine.check_coherence m;
        check_int
          (Printf.sprintf "%s seed %d: no torn pair observed" bname seed)
          0 !torn;
        (* The final contents keep pairs whole too. *)
        let final = Store.to_list_unsafe m s in
        List.iter
          (fun k ->
            let mate = if k < half then k + half else k - half in
            check_bool "final pairs whole" true (List.mem mate final))
          final;
        check_bool "some txns committed" true (!committed > 0);
        let st = Store.stats s in
        check_int "txn accounting" (!committed + !aborted)
          (st.txn_commits + st.txn_aborts)
      done)
    backend_names

(* ------------------------------------------------------------------ *)
(* Linearizability of the full mixed history (point + txn + scan).

   A scan or a multi-key txn is not per-key decomposable, so instead of
   Linearize.check_set we drive the generic Wing-Gong checker with a
   whole-store oracle: the state is the sorted key list, and each
   operation carries its observed result — apply returns whether the
   oracle agrees, so a history linearizes iff some ordering makes every
   observation consistent. Aborted txns ran no sub-op and are excluded. *)

type whole_op =
  | Point of Store.op * int * bool
  | Txn of (int * Store.op) list * bool list
  | Scan of int * int * int list

let apply_sub state (k, op) =
  match op with
  | Store.Get -> (List.mem k state, state)
  | Store.Insert ->
      if List.mem k state then (false, state)
      else (true, List.sort compare (k :: state))
  | Store.Delete ->
      if List.mem k state then (true, List.filter (fun x -> x <> k) state)
      else (false, state)

let whole_model : (int list, whole_op) Linearize.model =
  {
    apply =
      (fun state op ->
        match op with
        | Point (o, k, observed) ->
            let r, state' = apply_sub state (k, o) in
            (r = observed, state')
        | Txn (ops, observed) ->
            let rs, state' =
              List.fold_left
                (fun (acc, st) sub ->
                  let r, st' = apply_sub st sub in
                  (r :: acc, st'))
                ([], state) ops
            in
            (List.rev rs = observed, state')
        | Scan (lo, hi, observed) ->
            (List.filter (fun k -> k >= lo && k <= hi) state = observed, state));
  }

let test_mixed_linearizable () =
  List.iter
    (fun bname ->
      for seed = 0 to 4 do
        let threads = 3 in
        let m = machine ~cores:threads () in
        let s =
          Harness.exec1 m (fun ctx ->
              Store.create (backend bname) ctx ~shards:4 ~key_space:12)
        in
        let log : whole_op Linearize.entry list ref = ref [] in
        let record t_inv t_res op =
          log := { Linearize.op; result = true; t_inv; t_res } :: !log
        in
        let (_ : int) =
          Harness.exec m ~seed
            ~policy:(Runtime.random_policy ~seed:(seed + 50) ())
            ~threads
            (fun ctx ->
              let g = Ctx.prng ctx in
              for _ = 1 to 12 do
                let k = Prng.int g 12 in
                let t0 = Ctx.now ctx in
                match Prng.int g 5 with
                | 0 | 1 ->
                    let o =
                      match Prng.int g 3 with
                      | 0 -> Store.Insert
                      | 1 -> Store.Delete
                      | _ -> Store.Get
                    in
                    let r =
                      match o with
                      | Store.Insert -> Store.insert ctx s k
                      | Store.Delete -> Store.delete ctx s k
                      | Store.Get -> Store.get ctx s k
                    in
                    record t0 (Ctx.now ctx) (Point (o, k, r))
                | 2 | 3 ->
                    let k2 = (k + 5) mod 12 in
                    let ops = [ (k, Store.Insert); (k2, Store.Delete) ] in
                    (match Store.txn ctx s ops with
                    | Store.Committed rs -> record t0 (Ctx.now ctx) (Txn (ops, rs))
                    | Store.Aborted _ -> ())
                | _ ->
                    let lo = Prng.int g 8 in
                    let hi = lo + Prng.int g (12 - lo) in
                    let got = Store.scan ctx s ~lo ~hi in
                    record t0 (Ctx.now ctx) (Scan (lo, hi, got))
              done)
        in
        Machine.check_coherence m;
        let entries = Array.of_list !log in
        match Linearize.check whole_model ~init:[] entries with
        | Ok states ->
            (* The memory the run left behind must be a reachable state. *)
            let final = Store.to_list_unsafe m s in
            check_bool
              (Printf.sprintf "%s seed %d: final contents reachable" bname seed)
              true
              (List.mem final states)
        | Error window ->
            Alcotest.failf "%s seed %d: history not linearizable (%d-op window)"
              bname seed (Array.length window)
      done)
    backend_names

(* ------------------------------------------------------------------ *)
(* Serve integration: conservation, per-class accounting, and the
   jobs/tracing invariance contract. *)

let store_spec bname =
  Store_serve.spec ~shards:4 ~key_space:4096 ~prefill:128 ~scan_width:256
    ~backend:(backend bname)
    ~mix:(Store_serve.mix ~point_pct:70 ~txn_pct:20)
    ()

let serve_config () =
  Serve.config ~workers:3 ~batch:2 ~queue_capacity:32 ~rate_per_kcycle:4.0
    ~horizon:30_000 ()

let test_serve_conservation () =
  List.iter
    (fun bname ->
      let r, st = Store_serve.run (store_spec bname) (serve_config ()) in
      check_int (bname ^ " conservation") r.Serve.generated
        (r.Serve.completed + r.Serve.dropped + r.Serve.still_queued);
      check_int (bname ^ " queues drained") 0 r.Serve.still_queued;
      (* Per-class completions partition the total. *)
      check_int (bname ^ " class partition") r.Serve.completed
        (Array.fold_left ( + ) 0 r.Serve.class_counts);
      check_bool (bname ^ " class labels") true
        (r.Serve.class_names = Store_serve.classes);
      (* The store saw every completed request exactly once. *)
      check_int
        (bname ^ " completions = store ops")
        r.Serve.completed
        (st.Store.point_ops + st.Store.txn_commits + st.Store.txn_aborts
       + st.Store.scans))
    backend_names

let test_serve_tracing_invariance () =
  (* A full recording sink must not perturb the run: every deterministic
     result field identical, with and without tracing. *)
  List.iter
    (fun bname ->
      let bare, st1 = Store_serve.run (store_spec bname) (serve_config ()) in
      let obs = Obs.create ~num_cores:4 () in
      let traced, st2 =
        Store_serve.run ~obs (store_spec bname) (serve_config ())
      in
      check_bool (bname ^ " tracing non-perturbing") true
        ({ bare with Serve.backend = "" } = { traced with Serve.backend = "" }
        && bare.Serve.backend = traced.Serve.backend);
      check_bool (bname ^ " store stats identical") true (st1 = st2);
      (* And the trace actually recorded store activity. *)
      let kinds = List.map (fun (e : Obs.event) -> e.kind) (Obs.events obs) in
      check_bool (bname ^ " store events present") true
        (List.exists (function Obs.Store_op _ -> true | _ -> false) kinds))
    backend_names

let test_serve_jobs_invariance () =
  (* The sweep contract: mapping the same points over 1 and 2 domains must
     produce identical results in identical order. *)
  let points =
    List.concat_map
      (fun bname -> [ (bname, 3.0); (bname, 8.0) ])
      [ "hoh-list"; "hoh-abtree" ]
  in
  let sweep jobs =
    Mt_par.Pool.map ~jobs
      (fun (bname, rate) ->
        let c = { (serve_config ()) with Serve.rate_per_kcycle = rate } in
        let r, st = Store_serve.run (store_spec bname) c in
        (r.Serve.generated, r.Serve.completed, r.Serve.duration, st))
      points
  in
  check_bool "jobs=1 equals jobs=2" true (sweep 1 = sweep 2)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mt_store"
    ([
       ( "routing",
         [
           Alcotest.test_case "hash partitioning" `Quick test_routing;
           Alcotest.test_case "determinism" `Quick test_determinism;
         ] );
       ( "txn",
         [ Alcotest.test_case "atomicity under fuzz" `Slow test_txn_atomicity ] );
       ( "linearizability",
         [
           Alcotest.test_case "mixed point/txn/scan histories" `Slow
             test_mixed_linearizable;
         ] );
       ( "serve",
         [
           Alcotest.test_case "conservation" `Quick test_serve_conservation;
           Alcotest.test_case "tracing invariance" `Quick
             test_serve_tracing_invariance;
           Alcotest.test_case "jobs invariance" `Quick test_serve_jobs_invariance;
         ] );
     ]
    @ List.map (fun bname -> ("ranged-" ^ bname, ranged_battery bname))
        backend_names)
