(* Tests for the adversarial scenario engine: fault plans must be pure
   functions of the seed (byte-identical replay, tracing changes nothing,
   spec strings round-trip), the injectors must actually perturb runs,
   and the shrinker must reduce both canaries to small, still-failing,
   idempotently-stable repros. *)

open Mt_check
open Mt_adversary

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let params ?(threads = 4) ?(ops = 50) ?(range = 12) ?(prefill = 4)
    ?(max_delay = 64) () =
  { Explore.threads; ops; range; prefill; max_delay }

(* An aggressive plan exercising every injector at once. *)
let full_spec =
  {
    Inject.squeeze = Some { at = 800; max_tags = 4; hold = 4000 };
    straggler = Some { prob = 0.1; pause = 2000 };
    distribution = Zipfian { theta = 1.1 };
    geometry = Some Inject.small_geometry;
    adaptive = true;
  }

(* ------------------------------------------------------------------ *)
(* Determinism under injection. *)

let test_injected_replay_identical () =
  let run () =
    Scenario.run (module Mt_list.Vas_list) ~params:(params ())
      ~spec:full_spec ~seed:7
  in
  let a = run () and b = run () in
  check_bool "byte-identical histories" true
    (History.to_string a.history = History.to_string b.history);
  check_bool "identical final contents" true (a.final = b.final);
  check_int "identical duration" a.duration b.duration

let test_tracing_changes_nothing_injected () =
  (* Recording a full event trace during an injected run must not perturb
     the schedule, the injections, or the history. *)
  let bare =
    Scenario.run (module Mt_list.Vas_list) ~params:(params ())
      ~spec:full_spec ~seed:11
  in
  let obs = Mt_obs.Obs.create ~num_cores:4 () in
  let traced =
    Scenario.run ~obs (module Mt_list.Vas_list) ~params:(params ())
      ~spec:full_spec ~seed:11
  in
  check_bool "traced history identical" true
    (History.to_string bare.history = History.to_string traced.history);
  check_int "traced duration identical" bare.duration traced.duration

let test_injection_has_effect () =
  (* The plan must actually change the run — otherwise the adversary is a
     no-op and every "survives --adversary" claim is vacuous. *)
  let plain =
    Scenario.run (module Mt_list.Vas_list) ~params:(params ())
      ~spec:Inject.none ~seed:7
  in
  let injected =
    Scenario.run (module Mt_list.Vas_list) ~params:(params ())
      ~spec:full_spec ~seed:7
  in
  check_bool "injected schedule differs from plain" true
    (History.to_string plain.history <> History.to_string injected.history
    || plain.duration <> injected.duration)

let test_none_spec_matches_explore () =
  (* Inject.none must route through the exact historical Explore path. *)
  let a =
    Scenario.run (module Mt_list.Vas_list) ~params:(params ())
      ~spec:Inject.none ~seed:3
  in
  let b = Explore.run (module Mt_list.Vas_list) ~params:(params ()) ~seed:3 in
  check_bool "none-spec run equals Explore.run" true
    (History.to_string a.history = History.to_string b.history
    && a.duration = b.duration)

(* ------------------------------------------------------------------ *)
(* Fault-plan derivation and the spec string syntax. *)

let test_of_seed_deterministic () =
  for seed = 0 to 49 do
    let a = Inject.of_seed ~seed and b = Inject.of_seed ~seed in
    check_bool "of_seed is a function of the seed" true (a = b)
  done

let test_of_seed_varies () =
  let distinct =
    List.init 50 (fun seed -> Inject.to_string (Inject.of_seed ~seed))
    |> List.sort_uniq compare |> List.length
  in
  check_bool "seeds draw many distinct plans" true (distinct > 10)

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"spec string round-trip" ~count:200 QCheck.small_int
    (fun seed ->
      let spec = Inject.of_seed ~seed in
      match Inject.of_string (Inject.to_string spec) with
      | Ok spec' -> spec' = spec
      | Error _ -> false)

let prop_shard_hot_roundtrip =
  (* of_seed never draws Shard_hot (CI adversarial expectations are pinned
     to the historical plan space), so round-trip it directly: any
     shards/theta combination must survive to_string >> of_string, alone
     and alongside the other groups. *)
  QCheck.Test.make ~name:"shard-hot spec round-trip" ~count:200
    QCheck.(triple (int_range 1 64) (int_bound 30) bool)
    (fun (shards, t10, adaptive) ->
      let spec =
        {
          Inject.none with
          distribution = Shard_hot { shards; theta = float_of_int t10 /. 10.0 };
          adaptive;
        }
      in
      match Inject.of_string (Inject.to_string spec) with
      | Ok spec' -> spec' = spec
      | Error _ -> false)

let test_shard_hot_syntax () =
  check_bool "dist=shard parses" true
    (Inject.of_string "dist=shard,8,1.1"
    = Ok { Inject.none with distribution = Shard_hot { shards = 8; theta = 1.1 } });
  check_bool "zero shards rejected" true
    (match Inject.of_string "dist=shard,0,1.1" with
    | Error _ -> true
    | Ok _ -> false);
  check_bool "negative theta rejected" true
    (match Inject.of_string "dist=shard,8,-0.5" with
    | Error _ -> true
    | Ok _ -> false)

let test_shard_hot_draws_skewed () =
  (* The draw hook must (a) stay in range, (b) actually heat shard 0:
     with theta=1.5 over 4 shards, keys = 0 (mod 4) must dominate. *)
  let spec =
    { Inject.none with distribution = Shard_hot { shards = 4; theta = 1.5 } }
  in
  let range = 64 in
  let hooks = Scenario.hooks spec ~range in
  let g = Mt_sim.Prng.create ~seed:42 in
  let per_shard = Array.make 4 0 in
  for nth = 0 to 999 do
    let k = hooks.Explore.draw_key ~prng:g ~nth ~range in
    check_bool "key in range" true (k >= 0 && k < range);
    per_shard.(k mod 4) <- per_shard.(k mod 4) + 1
  done;
  check_bool "shard 0 hottest" true
    (per_shard.(0) > per_shard.(1)
    && per_shard.(1) > per_shard.(3)
    && per_shard.(0) > 250 (* above the uniform share *))

let test_spec_plain () =
  check_bool "none prints as plain" true (Inject.to_string Inject.none = "plain");
  check_bool "plain parses as none" true
    (Inject.of_string "plain" = Ok Inject.none);
  check_bool "garbage rejected" true
    (match Inject.of_string "squeeze=oops" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Zipfian sampler. *)

let prop_zipf_deterministic =
  QCheck.Test.make ~name:"zipf sampling deterministic per seed" ~count:100
    QCheck.small_int (fun seed ->
      let z = Zipf.create ~n:64 ~theta:1.2 in
      let draw () =
        let g = Mt_sim.Prng.create ~seed in
        List.init 100 (fun _ -> Zipf.sample z g)
      in
      draw () = draw ())

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf samples in [0,n)" ~count:100 QCheck.small_int
    (fun seed ->
      let z = Zipf.create ~n:13 ~theta:0.9 in
      let g = Mt_sim.Prng.create ~seed in
      List.init 200 (fun _ -> Zipf.sample z g)
      |> List.for_all (fun k -> k >= 0 && k < 13))

let test_zipf_rank_ordering () =
  (* pmf must be non-increasing in rank: rank 0 is the hottest key. *)
  let z = Zipf.create ~n:32 ~theta:1.1 in
  for r = 0 to 30 do
    check_bool "pmf non-increasing" true (Zipf.pmf z r >= Zipf.pmf z (r + 1))
  done;
  check_bool "skewed: rank 0 beats uniform share" true
    (Zipf.pmf z 0 > 1.0 /. 32.0)

(* ------------------------------------------------------------------ *)
(* The Max_Tags squeeze hook at the unit level. *)

let test_set_max_tags_latches_overflow () =
  let u = Mt_sim.Memtag_unit.create ~max_tags:8 in
  for i = 0 to 5 do
    Mt_sim.Memtag_unit.add u i
  done;
  check_bool "no overflow before squeeze" false (Mt_sim.Memtag_unit.overflowed u);
  Mt_sim.Memtag_unit.set_max_tags u 4;
  check_int "ceiling retargeted" 4 (Mt_sim.Memtag_unit.max_tags u);
  check_bool "overflow latches when tracked > new ceiling" true
    (Mt_sim.Memtag_unit.overflowed u);
  check_bool "validation now fails spuriously" true
    (Mt_sim.Memtag_unit.check u = Mt_sim.Memtag_unit.Fail_spurious);
  Mt_sim.Memtag_unit.clear u;
  check_bool "clear resets the latch" false (Mt_sim.Memtag_unit.overflowed u);
  (* Shrinking below the live count is what latches; growing never does. *)
  Mt_sim.Memtag_unit.set_max_tags u 16;
  check_bool "growing the ceiling is benign" false
    (Mt_sim.Memtag_unit.overflowed u)

(* ------------------------------------------------------------------ *)
(* Adversarial sweeps: correct structures survive, canaries die. *)

let test_adversarial_sweep_clean () =
  let _, failure =
    Scenario.sweep (module Mt_list.Vas_list) ~params:(params ())
      ~spec_of:(fun seed -> Inject.of_seed ~seed)
      ~seeds:10
  in
  match failure with
  | None -> ()
  | Some o ->
      let v = match o.verdict with Error v -> v | Ok () -> assert false in
      Alcotest.failf "vas_list failed adversarial seed %d: %a" o.seed
        Linearize.pp_violation v

let test_buggy_abtree_caught () =
  (* The new canary: hand-over-hand a-b tree with the insert commit's
     validation dropped must be caught within 100 adversarial seeds. *)
  let _, failure =
    Scenario.sweep (module Buggy_abtree) ~params:(params ())
      ~spec_of:(fun seed -> Inject.of_seed ~seed)
      ~seeds:100
  in
  match failure with
  | Some o ->
      check_bool "caught well within budget" true (o.seed < 100);
      let replay =
        Scenario.run (module Buggy_abtree) ~params:(params ())
          ~spec:(Inject.of_seed ~seed:o.seed) ~seed:o.seed
      in
      check_bool "failure replays byte-identically" true
        (History.to_string replay.history = History.to_string o.history)
  | None -> Alcotest.fail "broken a-b tree survived 100 adversarial seeds"

let test_sweep_jobs_invariant () =
  (* First reported adversarial failure must not depend on --jobs. *)
  let sweep jobs =
    Scenario.sweep ~jobs (module Buggy_list) ~params:(params ())
      ~spec_of:(fun seed -> Inject.of_seed ~seed)
      ~seeds:40
  in
  let i1, f1 = sweep 1 and i2, f2 = sweep 2 in
  check_int "same failing index" i1 i2;
  match (f1, f2) with
  | Some a, Some b ->
      check_int "same failing seed" a.seed b.seed;
      check_bool "same history" true
        (History.to_string a.history = History.to_string b.history)
  | None, None -> ()
  | _ -> Alcotest.fail "jobs=1 and jobs=2 disagree on failure existence"

(* ------------------------------------------------------------------ *)
(* The shrinker. *)

let find_failure (module S : Mt_list.Set_intf.SET) =
  let p = params () in
  let _, failure =
    Scenario.sweep (module S) ~params:p
      ~spec_of:(fun seed -> Inject.of_seed ~seed)
      ~seeds:100
  in
  match failure with
  | Some o -> { Shrink.params = p; spec = Inject.of_seed ~seed:o.seed; seed = o.seed }
  | None -> Alcotest.fail "expected a failure to shrink"

let test_shrink_buggy_list () =
  let initial = find_failure (module Buggy_list) in
  let r = Shrink.shrink (module Buggy_list) initial in
  let c = r.config in
  check_bool "threads shrunk to <= 2" true (c.params.Explore.threads <= 2);
  check_bool "ops bounded" true (c.params.Explore.ops <= 16);
  check_bool "shrunk config still fails" true
    (match r.outcome.verdict with Error _ -> true | Ok () -> false);
  (* and the minimal repro replays byte-identically *)
  let replay =
    Scenario.run (module Buggy_list) ~params:c.params ~spec:c.spec ~seed:c.seed
  in
  check_bool "minimal repro replays byte-identically" true
    (History.to_string replay.history = History.to_string r.outcome.history
    && (match replay.verdict with Error _ -> true | Ok () -> false))

let test_shrink_idempotent () =
  let initial = find_failure (module Buggy_list) in
  let r1 = Shrink.shrink (module Buggy_list) initial in
  let r2 = Shrink.shrink (module Buggy_list) r1.config in
  check_bool "re-shrinking is a fixpoint" true (r2.config = r1.config)

let test_shrink_rejects_passing_config () =
  let c =
    { Shrink.params = params (); spec = Inject.none; seed = 0 }
  in
  check_bool "non-failing initial raises" true
    (match Shrink.shrink (module Mt_list.Vas_list) c with
    | exception Invalid_argument _ -> true
    | _ -> false)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mt_adversary"
    [
      ( "determinism",
        [
          Alcotest.test_case "injected replay identical" `Quick
            test_injected_replay_identical;
          Alcotest.test_case "tracing changes nothing" `Quick
            test_tracing_changes_nothing_injected;
          Alcotest.test_case "injection has effect" `Quick
            test_injection_has_effect;
          Alcotest.test_case "none spec = Explore.run" `Quick
            test_none_spec_matches_explore;
        ] );
      ( "spec",
        Alcotest.test_case "of_seed deterministic" `Quick
          test_of_seed_deterministic
        :: Alcotest.test_case "of_seed varies" `Quick test_of_seed_varies
        :: Alcotest.test_case "plain round-trip" `Quick test_spec_plain
        :: Alcotest.test_case "shard-hot syntax" `Quick test_shard_hot_syntax
        :: Alcotest.test_case "shard-hot draw skewed" `Quick
             test_shard_hot_draws_skewed
        :: qsuite [ prop_spec_roundtrip; prop_shard_hot_roundtrip ] );
      ( "zipf",
        Alcotest.test_case "rank ordering" `Quick test_zipf_rank_ordering
        :: qsuite [ prop_zipf_deterministic; prop_zipf_in_range ] );
      ( "squeeze",
        [
          Alcotest.test_case "set_max_tags latches overflow" `Quick
            test_set_max_tags_latches_overflow;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "vas survives adversary" `Quick
            test_adversarial_sweep_clean;
          Alcotest.test_case "buggy abtree caught" `Quick
            test_buggy_abtree_caught;
          Alcotest.test_case "jobs invariant" `Quick test_sweep_jobs_invariant;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "buggy list minimal repro" `Slow
            test_shrink_buggy_list;
          Alcotest.test_case "idempotent" `Slow test_shrink_idempotent;
          Alcotest.test_case "rejects passing config" `Quick
            test_shrink_rejects_passing_config;
        ] );
    ]
