(* Quickstart: the MemTags primitives, hands on.

   Builds a 4-core simulated machine, demonstrates tag / validate / VAS /
   IAS semantics directly, then runs a contended shared counter where the
   losers fail *locally* (no coherence traffic), and finally a small
   HoH-tagged set shared by all cores.

   Run with:  dune exec examples/quickstart.exe *)

open Mt_sim
open Mt_core

let () =
  let machine = Machine.create (Config.default ~num_cores:4 ()) in

  (* --- 1. Raw primitive semantics, single thread ------------------- *)
  let cell = Machine.alloc machine ~words:1 in
  Harness.exec1 machine (fun ctx ->
      Ctx.write ctx cell 10;
      (* Tag the line, then validate: nothing touched it, so it holds. *)
      Ctx.add_tag ctx cell ~words:1;
      Printf.printf "validate after tagging: %b\n" (Ctx.validate ctx);
      (* VAS = validate-and-swap: succeeds while the tag is intact. *)
      let swapped = Ctx.vas ctx cell 11 in
      Printf.printf "vas -> 11: %b (cell=%d)\n" swapped (Ctx.read ctx cell);
      Ctx.clear_tag_set ctx);

  (* --- 2. A remote write kills the tag ----------------------------- *)
  let t0 = ref true and t1 = ref true in
  let rt = Runtime.create () in
  Runtime.spawn rt (fun () ->
      let ctx = Ctx.make machine ~rt ~core:0 ~prng:(Prng.create ~seed:1) in
      Ctx.add_tag ctx cell ~words:1;
      Runtime.stall 1000;
      (* core 1 wrote meanwhile *)
      t0 := Ctx.validate ctx;
      t1 := Ctx.vas ctx cell 99;
      Ctx.clear_tag_set ctx);
  Runtime.spawn rt (fun () ->
      let ctx = Ctx.make machine ~rt ~core:1 ~prng:(Prng.create ~seed:2) in
      Runtime.stall 500;
      Ctx.write ctx cell 42);
  Runtime.run rt;
  Printf.printf "after a remote write: validate=%b vas=%b (cell=%d) — conflict detected locally\n"
    !t0 !t1 (Machine.peek machine cell);

  (* --- 3. A shared HoH-tagged set across 4 cores ------------------- *)
  let set = Harness.exec1 machine (fun ctx -> Mt_list.Hoh_list.create ctx) in
  let duration =
    Harness.exec machine ~threads:4 (fun ctx ->
        let g = Ctx.prng ctx in
        for _ = 1 to 100 do
          let k = Prng.int g 64 in
          if Prng.bool g then ignore (Mt_list.Hoh_list.insert ctx set k)
          else ignore (Mt_list.Hoh_list.delete ctx set k)
        done)
  in
  let contents = Mt_list.Hoh_list.to_list_unsafe machine set in
  Printf.printf "4 cores x 100 ops in %d simulated cycles; set has %d keys\n" duration
    (List.length contents);
  let stats = Machine.total_stats machine in
  Printf.printf "validations: %d (failed %d), IAS: %d, L1 miss rate %.2f%%\n"
    stats.Stats.validates stats.Stats.validate_failures stats.Stats.ias_ops
    (100.0 *. Stats.l1_miss_rate stats)
